//! Experiment runners that regenerate every table and figure of the
//! paper's evaluation (§8), shared by the `figures` binary and the
//! criterion benches.
//!
//! Each `figN` function reproduces one figure's sweep and returns the same
//! rows/series the paper plots. The datasets are the synthetic Porto/Jakarta
//! analogues (DESIGN.md §2, substitution 1); absolute numbers differ from
//! the paper's testbed, but the comparative shape — who wins, by what
//! factor, where the crossovers fall — is the reproduction target
//! (EXPERIMENTS.md records paper-vs-measured for every figure).

#![warn(missing_docs)]

pub mod loadgen;
pub mod svg;

use kamel::{GridKind, KamelConfig, KamelConfigBuilder, MultipointStrategy, SpeedMode};
use kamel_baselines::{LinearImputer, MapMatcher, TrajectoryImputer, TrImputeConfig};
use kamel_eval::harness::{evaluate_technique, format_table, train_kamel, train_trimpute};
use kamel_eval::roadtype::evaluate_by_road_type;
use kamel_eval::{EvalContext, TechniqueResult};
use kamel_roadsim::{Dataset, DatasetScale};
use serde::{Deserialize, Serialize};

/// Which dataset analogue an experiment runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum City {
    /// Porto analogue: many short trajectories.
    Porto,
    /// Jakarta analogue: few long 1 Hz trajectories.
    Jakarta,
}

impl City {
    /// Generates the dataset at the given scale.
    pub fn dataset(self, scale: DatasetScale) -> Dataset {
        match self {
            City::Porto => Dataset::porto_like(scale),
            City::Jakarta => Dataset::jakarta_like(scale),
        }
    }

    /// The paper's default δ per dataset (§8: 50 m Porto, 25 m Jakarta).
    pub fn default_delta_m(self) -> f64 {
        match self {
            City::Porto => 50.0,
            City::Jakarta => 25.0,
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            City::Porto => "porto-like",
            City::Jakarta => "jakarta-like",
        }
    }
}

/// Caps evaluation cost: test trajectories scored per configuration point.
pub const EVAL_LIMIT: usize = 60;

/// A scaled-down pyramid configuration matched to the simulator's data
/// volume (same semantics as the paper's H=10/L=3/k=20K over world-scale
/// data; see DESIGN.md).
pub fn default_kamel_config() -> KamelConfigBuilder {
    // The paper roots its pyramid at the whole world and maintains the
    // lowest 3 levels — cells of 70–280 km, i.e. city-to-region scale. Our
    // pyramid is rooted at the dataset's own extent, so the faithful
    // analogue maintains every level including the root (a "city model"
    // always exists) with leaf cells a few blocks wide.
    KamelConfig::builder()
        .pyramid_height(3)
        .pyramid_maintained(3)
        .model_threshold_k(500)
}

/// One point of a sweep: the x-value plus every technique's scores.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepPoint {
    /// The varied parameter (sparseness meters, δ meters, % size, …).
    pub x: f64,
    /// Scores per technique at this x.
    pub results: Vec<TechniqueResult>,
}

/// A full figure: its id, the dataset, and the sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Figure {
    /// Paper figure id ("fig9-porto", "fig12-ablation", …).
    pub id: String,
    /// What the x axis is.
    pub x_label: String,
    /// The series.
    pub points: Vec<SweepPoint>,
}

impl Figure {
    /// Renders all sweep points as fixed-width tables.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for p in &self.points {
            out.push_str(&format_table(
                &format!("{} | {} = {}", self.id, self.x_label, p.x),
                &p.results,
            ));
        }
        out
    }
}

/// Builds the four standard §8 techniques over a dataset: KAMEL, TrImpute,
/// Linear, and the MapMatch reference. Returns them with their training
/// times `(kamel_s, trimpute_s)`.
pub fn standard_techniques(
    dataset: &Dataset,
    config: KamelConfig,
) -> (Vec<Box<dyn TrajectoryImputer>>, f64, f64) {
    let (kamel, kamel_train_s) = train_kamel(dataset, config);
    let (trimpute, tr_train_s) = train_trimpute(dataset, TrImputeConfig::default());
    let mapmatch = MapMatcher::new(dataset.network.clone(), dataset.projection());
    let techniques: Vec<Box<dyn TrajectoryImputer>> = vec![
        Box::new(kamel),
        Box::new(trimpute),
        Box::new(LinearImputer::default()),
        Box::new(mapmatch),
    ];
    (techniques, kamel_train_s, tr_train_s)
}

/// Figure 9: impact of data sparseness (500–4000 m) on recall, precision,
/// and failure rate, all techniques.
pub fn fig9(city: City, scale: DatasetScale) -> Figure {
    let dataset = city.dataset(scale);
    let (techniques, _, _) = standard_techniques(&dataset, default_kamel_config().build());
    let mut points = Vec::new();
    for sparse_m in [500.0, 1_000.0, 1_500.0, 2_000.0, 2_500.0, 3_000.0, 4_000.0] {
        let ctx = EvalContext {
            sparse_m,
            delta_m: city.default_delta_m(),
            ..EvalContext::default()
        };
        let results = techniques
            .iter()
            .map(|t| evaluate_technique(t.as_ref(), &dataset, &ctx, EVAL_LIMIT))
            .collect();
        points.push(SweepPoint { x: sparse_m, results });
    }
    Figure {
        id: format!("fig9-{}", city.name()),
        x_label: "sparseness_m".into(),
        points,
    }
}

/// Figure 10: impact of the accuracy threshold δ (5–100 m) on recall and
/// precision.
pub fn fig10(city: City, scale: DatasetScale) -> Figure {
    let dataset = city.dataset(scale);
    let (techniques, _, _) = standard_techniques(&dataset, default_kamel_config().build());
    let mut points = Vec::new();
    for delta_m in [5.0, 10.0, 25.0, 50.0, 75.0, 100.0] {
        let ctx = EvalContext {
            delta_m,
            ..EvalContext::default()
        };
        let results = techniques
            .iter()
            .map(|t| evaluate_technique(t.as_ref(), &dataset, &ctx, EVAL_LIMIT))
            .collect();
        points.push(SweepPoint { x: delta_m, results });
    }
    Figure {
        id: format!("fig10-{}", city.name()),
        x_label: "delta_m".into(),
        points,
    }
}

/// Figure 11 rows: training and imputation time per technique.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TimingRow {
    /// Dataset name.
    pub dataset: String,
    /// Technique name.
    pub technique: String,
    /// Training wall time (seconds); `None` for training-free techniques.
    pub train_time_s: Option<f64>,
    /// Total imputation time over the evaluation slice (seconds).
    pub impute_time_s: f64,
}

/// Figure 11: training and imputation time for both cities.
pub fn fig11(scale: DatasetScale) -> Vec<TimingRow> {
    let mut rows = Vec::new();
    for city in [City::Porto, City::Jakarta] {
        let dataset = city.dataset(scale);
        let (techniques, kamel_s, trimpute_s) =
            standard_techniques(&dataset, default_kamel_config().build());
        let ctx = EvalContext {
            delta_m: city.default_delta_m(),
            ..EvalContext::default()
        };
        for t in &techniques {
            let r = evaluate_technique(t.as_ref(), &dataset, &ctx, EVAL_LIMIT);
            rows.push(TimingRow {
                dataset: city.name().into(),
                technique: r.technique.clone(),
                train_time_s: match r.technique.as_str() {
                    "KAMEL" => Some(kamel_s),
                    "TrImpute" => Some(trimpute_s),
                    _ => None,
                },
                impute_time_s: r.impute_time_s,
            });
        }
    }
    rows
}

/// Figure 12-I/II: road-type (straight vs curved) sweeps on the Jakarta
/// analogue.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RoadTypeRow {
    /// Varied sparseness in meters.
    pub sparse_m: f64,
    /// Technique.
    pub technique: String,
    /// Straight-segment recall/precision/failure.
    pub straight: (f64, f64, Option<f64>),
    /// Curved-segment recall/precision/failure.
    pub curved: (f64, f64, Option<f64>),
}

/// Figure 12-I/II: per-road-class performance across sparseness.
pub fn fig12_road(scale: DatasetScale) -> Vec<RoadTypeRow> {
    let city = City::Jakarta;
    let dataset = city.dataset(scale);
    let (techniques, _, _) = standard_techniques(&dataset, default_kamel_config().build());
    let mut rows = Vec::new();
    for sparse_m in [1_000.0, 2_000.0, 3_000.0] {
        for t in &techniques {
            if t.name() == "MapMatch" {
                continue; // §8.4 plots the no-map techniques
            }
            let m = evaluate_by_road_type(
                t.as_ref(),
                &dataset,
                100.0,
                city.default_delta_m(),
                sparse_m,
                20.0,
                EVAL_LIMIT,
            );
            rows.push(RoadTypeRow {
                sparse_m,
                technique: t.name().to_string(),
                straight: (
                    m.straight.recall(),
                    m.straight.precision(),
                    m.straight.failure_rate(),
                ),
                curved: (m.curved.recall(), m.curved.precision(), m.curved.failure_rate()),
            });
        }
    }
    rows
}

/// Figure 12-III: hexagons vs squares.
pub fn fig12_grid(scale: DatasetScale) -> Figure {
    let city = City::Jakarta;
    let dataset = city.dataset(scale);
    let mut points = Vec::new();
    let mut techniques: Vec<Box<dyn TrajectoryImputer>> = Vec::new();
    for (grid, label) in [(GridKind::Hex, "Hex(H3)"), (GridKind::Square, "Square(S2)")] {
        let (mut k, _) = train_kamel(&dataset, default_kamel_config().grid(grid).build());
        k.label = label.to_string();
        techniques.push(Box::new(k));
    }
    for sparse_m in [1_000.0, 2_000.0, 3_000.0, 4_000.0] {
        let ctx = EvalContext {
            sparse_m,
            delta_m: city.default_delta_m(),
            ..EvalContext::default()
        };
        let results = techniques
            .iter()
            .map(|t| evaluate_technique(t.as_ref(), &dataset, &ctx, EVAL_LIMIT))
            .collect();
        points.push(SweepPoint { x: sparse_m, results });
    }
    Figure {
        id: "fig12-grid".into(),
        x_label: "sparseness_m".into(),
        points,
    }
}

/// Figure 12-IV: training data size (100/75/50/25%).
pub fn fig12_size(scale: DatasetScale) -> Figure {
    let city = City::Jakarta;
    let full = city.dataset(scale);
    let mut points = Vec::new();
    for pct in [100usize, 75, 50, 25] {
        let mut dataset = full.clone();
        let keep = dataset.train.len() * pct / 100;
        dataset.train.truncate(keep.max(1));
        let (mut kamel, _) = train_kamel(&dataset, default_kamel_config().build());
        kamel.label = format!("KAMEL-{pct}%");
        let ctx = EvalContext {
            delta_m: city.default_delta_m(),
            ..EvalContext::default()
        };
        let result = evaluate_technique(&kamel, &full, &ctx, EVAL_LIMIT);
        points.push(SweepPoint {
            x: pct as f64,
            results: vec![result],
        });
    }
    Figure {
        id: "fig12-size".into(),
        x_label: "train_pct".into(),
        points,
    }
}

/// Figure 12-V: training data density (1/15/30/60 s resampling).
pub fn fig12_density(scale: DatasetScale) -> Figure {
    let city = City::Jakarta;
    let full = city.dataset(scale);
    let mut points = Vec::new();
    for period_s in [1.0, 15.0, 30.0, 60.0] {
        let mut dataset = full.clone();
        if period_s > 1.0 {
            dataset.train = dataset.train.iter().map(|t| t.resample(period_s)).collect();
        }
        let (mut kamel, _) = train_kamel(&dataset, default_kamel_config().build());
        kamel.label = format!("KAMEL-{period_s}s");
        let ctx = EvalContext {
            delta_m: city.default_delta_m(),
            ..EvalContext::default()
        };
        let result = evaluate_technique(&kamel, &full, &ctx, EVAL_LIMIT);
        points.push(SweepPoint {
            x: period_s,
            results: vec![result],
        });
    }
    Figure {
        id: "fig12-density".into(),
        x_label: "sampling_period_s".into(),
        points,
    }
}

/// Figure 12-VI: ablation — full vs No Part. / No Const. / No Multi.
pub fn fig12_ablation(scale: DatasetScale) -> Figure {
    let city = City::Jakarta;
    let dataset = city.dataset(scale);
    let variants: Vec<(&str, KamelConfig)> = vec![
        ("KAMEL", default_kamel_config().build()),
        (
            "NoPart",
            default_kamel_config().disable_partitioning(true).build(),
        ),
        (
            "NoConst",
            default_kamel_config().disable_constraints(true).build(),
        ),
        (
            "NoMulti",
            default_kamel_config()
                .multipoint(MultipointStrategy::Single)
                .build(),
        ),
    ];
    let mut techniques: Vec<Box<dyn TrajectoryImputer>> = Vec::new();
    for (label, config) in variants {
        let (mut k, _) = train_kamel(&dataset, config);
        k.label = label.to_string();
        techniques.push(Box::new(k));
    }
    let mut points = Vec::new();
    for sparse_m in [1_000.0, 2_000.0, 3_000.0, 4_000.0] {
        let ctx = EvalContext {
            sparse_m,
            delta_m: city.default_delta_m(),
            ..EvalContext::default()
        };
        let results = techniques
            .iter()
            .map(|t| evaluate_technique(t.as_ref(), &dataset, &ctx, EVAL_LIMIT))
            .collect();
        points.push(SweepPoint { x: sparse_m, results });
    }
    Figure {
        id: "fig12-ablation".into(),
        x_label: "sparseness_m".into(),
        points,
    }
}

/// Figure 3(d) / §3.2: accuracy vs cell size.
pub fn fig3d(scale: DatasetScale) -> Figure {
    let city = City::Porto;
    let dataset = city.dataset(scale);
    let mut points = Vec::new();
    for edge_m in [25.0, 50.0, 75.0, 100.0, 150.0, 200.0] {
        let (mut kamel, _) = train_kamel(&dataset, default_kamel_config().cell_edge_m(edge_m).build());
        kamel.label = format!("H={edge_m}m");
        let ctx = EvalContext {
            delta_m: city.default_delta_m(),
            ..EvalContext::default()
        };
        let result = evaluate_technique(&kamel, &dataset, &ctx, EVAL_LIMIT);
        points.push(SweepPoint {
            x: edge_m,
            results: vec![result],
        });
    }
    Figure {
        id: "fig3d-cellsize".into(),
        x_label: "hex_edge_m".into(),
        points,
    }
}

/// §6 comparison: beam search vs iterative calling vs single call.
pub fn beam_vs_iterative(scale: DatasetScale) -> Figure {
    let city = City::Porto;
    let dataset = city.dataset(scale);
    let mut techniques: Vec<Box<dyn TrajectoryImputer>> = Vec::new();
    for (label, strategy) in [
        ("Beam", MultipointStrategy::Beam),
        ("Iterative", MultipointStrategy::Iterative),
        ("Single", MultipointStrategy::Single),
    ] {
        let (mut k, _) = train_kamel(&dataset, default_kamel_config().multipoint(strategy).build());
        k.label = label.to_string();
        techniques.push(Box::new(k));
    }
    let mut points = Vec::new();
    for sparse_m in [1_000.0, 2_000.0, 3_000.0] {
        let ctx = EvalContext {
            sparse_m,
            delta_m: city.default_delta_m(),
            ..EvalContext::default()
        };
        let results = techniques
            .iter()
            .map(|t| evaluate_technique(t.as_ref(), &dataset, &ctx, EVAL_LIMIT))
            .collect();
        points.push(SweepPoint { x: sparse_m, results });
    }
    Figure {
        id: "beam-vs-iterative".into(),
        x_label: "sparseness_m".into(),
        points,
    }
}

/// Map-inference payoff (the paper's §1 motivation): quality of a
/// density-inferred road map from raw sparse fixes vs linear interpolation
/// vs KAMEL-imputed trajectories, against the hidden network.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MapInferRow {
    /// Which trajectories fed the inference.
    pub input: String,
    /// Fraction of true road cells discovered.
    pub road_recall: f64,
    /// Fraction of inferred cells that are real road.
    pub road_precision: f64,
    /// Harmonic mean.
    pub f1: f64,
}

/// Runs the map-inference comparison on the Porto analogue at 1.5 km
/// sparsity.
pub fn map_inference(scale: DatasetScale) -> Vec<MapInferRow> {
    use kamel_baselines::LinearImputer;
    use kamel_eval::mapinfer::{compare_maps, infer_map, rasterize_network, MapInferConfig};
    use kamel_geo::Trajectory;

    let dataset = City::Porto.dataset(scale);
    let proj = dataset.projection();
    let cfg = MapInferConfig::default();
    let truth = rasterize_network(&dataset.network, &cfg);
    let (kamel, _) = train_kamel(&dataset, default_kamel_config().build());
    let sparse: Vec<Trajectory> = dataset.test.iter().map(|t| t.sparsify(1_500.0)).collect();
    let raw_fixes: Vec<Trajectory> = sparse
        .iter()
        .flat_map(|t| t.points.iter().map(|p| Trajectory::new(vec![*p])))
        .collect();
    let linear = LinearImputer::default();
    let linear_dense: Vec<Trajectory> =
        sparse.iter().map(|t| linear.impute(t).trajectory).collect();
    let kamel_dense: Vec<Trajectory> = sparse
        .iter()
        .map(|t| kamel.kamel.impute(t).trajectory)
        .collect();
    let mut rows = Vec::new();
    for (label, trajs) in [
        ("sparse-fixes", &raw_fixes),
        ("linear", &linear_dense),
        ("KAMEL", &kamel_dense),
    ] {
        let q = compare_maps(&infer_map(trajs, &proj, &cfg), &truth, 1);
        rows.push(MapInferRow {
            input: label.to_string(),
            road_recall: q.road_recall,
            road_precision: q.road_precision,
            f1: q.f1,
        });
    }
    rows
}

/// Coverage-skew study (extension): the paper's Jakarta behaviour depends
/// on fleets that cluster around demand hotspots, leaving most streets
/// thinly observed. Compares KAMEL vs TrImpute on the uniform Jakarta
/// analogue and an OD-hotspot-skewed variant.
pub fn coverage_skew(scale: DatasetScale) -> Figure {
    let mut points = Vec::new();
    for (x, dataset) in [
        (0.0, Dataset::jakarta_like(scale)),
        (6.0, Dataset::jakarta_like_skewed(scale, 6)),
    ] {
        let (kamel, _) = train_kamel(&dataset, default_kamel_config().build());
        let (trimpute, _) = train_trimpute(&dataset, TrImputeConfig::default());
        let ctx = EvalContext {
            sparse_m: 1_500.0,
            delta_m: City::Jakarta.default_delta_m(),
            ..EvalContext::default()
        };
        let results = vec![
            evaluate_technique(&kamel, &dataset, &ctx, EVAL_LIMIT),
            evaluate_technique(&trimpute, &dataset, &ctx, EVAL_LIMIT),
        ];
        points.push(SweepPoint { x, results });
    }
    Figure {
        id: "coverage-skew".into(),
        x_label: "od_hotspots".into(),
        points,
    }
}

/// §5.1 speed-policy comparison: the paper's fixed trained cap vs its
/// stated alternative (preceding-segment speed × conservative factor).
pub fn speed_mode(scale: DatasetScale) -> Figure {
    let city = City::Porto;
    let dataset = city.dataset(scale);
    let mut techniques: Vec<Box<dyn TrajectoryImputer>> = Vec::new();
    for (label, mode) in [
        ("Fixed", SpeedMode::FixedFromTraining),
        ("Adaptive1.5x", SpeedMode::AdaptivePreceding { factor: 1.5 }),
        ("Adaptive2.5x", SpeedMode::AdaptivePreceding { factor: 2.5 }),
    ] {
        let (mut k, _) = train_kamel(&dataset, default_kamel_config().speed_mode(mode).build());
        k.label = label.to_string();
        techniques.push(Box::new(k));
    }
    let mut points = Vec::new();
    for sparse_m in [1_000.0, 2_000.0, 3_000.0] {
        let ctx = EvalContext {
            sparse_m,
            delta_m: city.default_delta_m(),
            ..EvalContext::default()
        };
        let results = techniques
            .iter()
            .map(|t| evaluate_technique(t.as_ref(), &dataset, &ctx, EVAL_LIMIT))
            .collect();
        points.push(SweepPoint { x: sparse_m, results });
    }
    Figure {
        id: "speed-mode".into(),
        x_label: "sparseness_m".into(),
        points,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Smoke test: the smallest figure runs end to end at Small scale.
    #[test]
    fn fig3d_smoke() {
        let city = City::Porto;
        let dataset = city.dataset(DatasetScale::Small);
        let (kamel, _) = train_kamel(&dataset, default_kamel_config().pyramid_height(3).model_threshold_k(150).build());
        let ctx = EvalContext {
            delta_m: city.default_delta_m(),
            ..EvalContext::default()
        };
        let r = evaluate_technique(&kamel, &dataset, &ctx, 5);
        assert!(r.recall > 0.0);
        assert_eq!(r.trajectories, 5);
    }
}

//! Packaged datasets: city + trips + 80/20 split, with presets mirroring the
//! structural contrasts of the paper's Porto and Jakarta datasets (§8).

use crate::citygen::{generate_city, CityConfig};
use crate::network::RoadNetwork;
use crate::trips::{generate_trips, TripConfig};
use kamel_geo::{LatLng, LocalProjection, Trajectory};
use serde::{Deserialize, Serialize};

/// How much data a preset generates. The paper's full datasets are far
/// beyond a CPU session; the scales keep the structure while bounding time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DatasetScale {
    /// Unit/integration tests: seconds end to end.
    Small,
    /// Figure regeneration and benchmarks.
    Medium,
    /// Stress runs.
    Large,
}

impl DatasetScale {
    fn trip_multiplier(self) -> f64 {
        match self {
            DatasetScale::Small => 0.16,
            DatasetScale::Medium => 1.0,
            DatasetScale::Large => 3.0,
        }
    }
}

/// A self-contained evaluation dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dataset {
    /// Human-readable name ("porto-like" / "jakarta-like").
    pub name: String,
    /// Geodetic anchor of the local projection.
    pub origin: LatLng,
    /// The hidden road network. Only the map matching reference and the
    /// road-type classifier may look at it; KAMEL and TrImpute must not.
    pub network: RoadNetwork,
    /// Training trajectories (80%).
    pub train: Vec<Trajectory>,
    /// Held-out ground-truth trajectories (20%).
    pub test: Vec<Trajectory>,
}

impl Dataset {
    /// Builds a dataset from a city and trip configuration with the paper's
    /// 80/20 split.
    pub fn generate(
        name: &str,
        origin: LatLng,
        city: &CityConfig,
        trips: &TripConfig,
    ) -> Dataset {
        let network = generate_city(city);
        let proj = LocalProjection::new(origin);
        let mut all = generate_trips(&network, trips, &proj);
        let n_test = (all.len() / 5).max(1).min(all.len());
        let test = all.split_off(all.len() - n_test);
        Dataset {
            name: name.to_string(),
            origin,
            network,
            train: all,
            test,
        }
    }

    /// Porto-analogue: a dense compact grid city with many short
    /// trajectories (the paper's Porto averages ~50 points per trajectory at
    /// a coarse sampling rate).
    pub fn porto_like(scale: DatasetScale) -> Dataset {
        let city = CityConfig {
            cols: 22,
            rows: 22,
            spacing_m: 150.0,
            jitter_m: 12.0,
            street_removal_prob: 0.05,
            diagonals: 2,
            roundabouts: 6,
            ring_road: true,
            overpass: true,
            seed: 0x9087_0001,
        };
        let trips = TripConfig {
            n_trips: (1_200.0 * scale.trip_multiplier()) as usize,
            sample_period_s: 12.0,
            speed_mps: 10.0,
            speed_jitter: 0.25,
            gps_noise_m: 4.0,
            min_trip_dist_m: 1_800.0,
            // Uniform OD keeps the calibrated evaluation numbers stable;
            // `hotspots` is available for coverage-skew studies.
            hotspots: 0,
            seed: 0x9087_0002,
        };
        Dataset::generate("porto-like", LatLng::new(41.15, -8.61), &city, &trips)
    }

    /// Jakarta-analogue: a larger, sparser city with far fewer but much
    /// longer trajectories sampled at 1 s (the paper's Jakarta averages
    /// ~1000 points per trajectory).
    pub fn jakarta_like(scale: DatasetScale) -> Dataset {
        Self::jakarta_like_skewed(scale, 0)
    }

    /// [`Dataset::jakarta_like`] with trip endpoints drawn around
    /// `hotspots` attraction nodes instead of uniformly — the
    /// coverage-skewed fleet regime the paper's real Jakarta data lives in
    /// (ride-hailing demand clusters; most streets are rarely observed).
    pub fn jakarta_like_skewed(scale: DatasetScale, hotspots: usize) -> Dataset {
        let city = CityConfig {
            cols: 26,
            rows: 26,
            spacing_m: 200.0,
            jitter_m: 18.0,
            street_removal_prob: 0.08,
            diagonals: 3,
            roundabouts: 8,
            ring_road: true,
            overpass: true,
            seed: 0x4A4B_0001,
        };
        let trips = TripConfig {
            // Long 1 Hz trips need a minimum fleet for corridor coverage:
            // below ~40 trips most streets are never observed and every
            // evaluation number is noise.
            n_trips: ((350.0 * scale.trip_multiplier()) as usize).max(48),
            sample_period_s: 1.0,
            speed_mps: 8.0,
            speed_jitter: 0.3,
            gps_noise_m: 5.0,
            min_trip_dist_m: 3_000.0,
            hotspots,
            seed: 0x4A4B_0002,
        };
        Dataset::generate("jakarta-like", LatLng::new(-6.2, 106.85), &city, &trips)
    }

    /// The dataset's local projection.
    pub fn projection(&self) -> LocalProjection {
        LocalProjection::new(self.origin)
    }

    /// Total GPS points across the training split.
    pub fn train_points(&self) -> usize {
        self.train.iter().map(Trajectory::len).sum()
    }

    /// Mean points per training trajectory.
    pub fn mean_train_len(&self) -> f64 {
        if self.train.is_empty() {
            return 0.0;
        }
        self.train_points() as f64 / self.train.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn porto_like_has_many_short_trajectories() {
        let d = Dataset::porto_like(DatasetScale::Small);
        assert!(!d.train.is_empty() && !d.test.is_empty());
        let mean_len = d.mean_train_len();
        assert!(
            (15.0..90.0).contains(&mean_len),
            "porto-like mean length {mean_len}"
        );
        // 80/20 split.
        let ratio = d.test.len() as f64 / (d.train.len() + d.test.len()) as f64;
        assert!((0.15..0.25).contains(&ratio), "split ratio {ratio}");
    }

    #[test]
    fn jakarta_like_has_fewer_longer_trajectories() {
        let j = Dataset::jakarta_like(DatasetScale::Small);
        let p = Dataset::porto_like(DatasetScale::Small);
        assert!(j.train.len() < p.train.len());
        assert!(
            j.mean_train_len() > 5.0 * p.mean_train_len(),
            "jakarta {} vs porto {}",
            j.mean_train_len(),
            p.mean_train_len()
        );
    }

    #[test]
    fn skewed_jakarta_concentrates_coverage() {
        let uniform = Dataset::jakarta_like(DatasetScale::Small);
        let skewed = Dataset::jakarta_like_skewed(DatasetScale::Small, 4);
        let cu = crate::stats::coverage(
            &uniform.network,
            &uniform.projection(),
            &uniform.train,
            150.0,
        );
        let cs = crate::stats::coverage(
            &skewed.network,
            &skewed.projection(),
            &skewed.train,
            150.0,
        );
        // Skew piles fixes onto fewer streets.
        assert!(
            cs.edge_coverage < cu.edge_coverage,
            "skewed {cs:?} vs uniform {cu:?}"
        );
    }

    #[test]
    fn datasets_are_deterministic() {
        let a = Dataset::porto_like(DatasetScale::Small);
        let b = Dataset::porto_like(DatasetScale::Small);
        assert_eq!(a.train.len(), b.train.len());
        assert_eq!(a.train[0], b.train[0]);
        assert_eq!(a.test.last(), b.test.last());
    }

    #[test]
    fn train_and_test_are_disjoint_trips() {
        let d = Dataset::porto_like(DatasetScale::Small);
        // Cheap identity check: no trajectory appears in both splits.
        for t in &d.test {
            assert!(!d.train.contains(t));
        }
    }
}

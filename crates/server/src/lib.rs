//! # kamel-server — online trajectory imputation over HTTP
//!
//! The paper demonstrates KAMEL as a *system*: trained once, then queried
//! online. This crate is that serving layer — a dependency-free HTTP/1.1
//! service over `std::net` exposing a shared [`kamel::Kamel`] to
//! concurrent clients:
//!
//! * **Worker pool** — a fixed number of batch workers drawn from the
//!   process thread budget run the imputation compute; cheap connection
//!   handlers park on tickets while batches execute ([`batcher`]).
//! * **Dynamic micro-batching** — concurrent single-trajectory requests
//!   are coalesced into one [`kamel::Kamel::impute_batch`] call under a
//!   max-batch-size / max-wait policy, and results are scattered back per
//!   request in order ([`batcher`]).
//! * **Response cache** — an LRU keyed by the tokenized gap context
//!   (cell-id sequence + gap spans + a digest of the raw fixes), with hit
//!   and miss counters ([`lru`], [`server::CacheKey`]).
//! * **Admission control** — a bounded queue sheds overload with
//!   `503 Service Unavailable` + `Retry-After`, every request carries a
//!   deadline (missed → `504`), and SIGTERM/ctrl-c trigger a graceful
//!   drain: in-flight work finishes, new work is refused ([`shutdown`]).
//!
//! Endpoints: `POST /v1/impute` (a sparse [`kamel_geo::Trajectory`] as
//! JSON in, an [`engine::ImputeResponse`] out), `GET /healthz`,
//! `GET /v1/info` (an [`engine::InfoResponse`] identity card — model
//! generation, vocabulary, config digest, thread budget — used by the
//! `kamel-router` fleet gateway for admission), and `GET /metrics`
//! (Prometheus-style text: request counts, latency and batch-size
//! histograms, cache hit rate, queue depth, shed count).
//!
//! The protocol and policies are specified in `DESIGN.md` §5; the CLI
//! front-end is `kamel serve`.
//!
//! The HTTP machinery is generic over [`server::WireService`], so the
//! whole stack short of the serde glue ([`engine`]) is `std`-only and
//! unit-tested with stub services — a deliberate choice: the build
//! environment has no crates registry, so the wire layer must not grow
//! dependencies.

#![warn(missing_docs)]

pub mod batcher;
pub mod client;
pub mod clock;
pub mod engine;
pub mod http;
pub mod learn;
pub mod lru;
pub mod metrics;
pub mod poller;
pub mod reactor;
pub mod server;
pub mod shutdown;

pub use batcher::{Batcher, BatcherConfig, SubmitError, WaitError};
pub use client::{Client, ClientResponse, RequestOpts, RetryPolicy, RetryingClient};
pub use clock::{Clock, ManualClock, SystemClock};
pub use engine::{config_digest, ImputeEngine, ImputeResponse, InfoResponse};
pub use http::{DEADLINE_HEADER, DEGRADED_HEADER};
pub use learn::{FeedbackAck, FeedbackRequest, LearnSink, LearningInfo};
pub use lru::LruCache;
pub use metrics::Metrics;
pub use reactor::{ConnStats, ReactorConfig};
pub use server::{CacheKey, ConnMode, Server, ServerConfig, WireService};
pub use shutdown::{install_signal_handlers, ShutdownFlag, SignalFlag};

//! Quickstart: train KAMEL on a synthetic city and impute a sparse
//! trajectory.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! The example mirrors the paper's Figure 1 flow: a batch of training
//! trajectories goes in (tokenize → partition → train models → cluster for
//! detokenization), then a sparse trajectory is imputed and scored against
//! its dense ground truth.

use kamel::{Kamel, KamelConfig};
use kamel_eval::MetricsAccumulator;
use kamel_roadsim::{Dataset, DatasetScale};

fn main() {
    // A small synthetic city standing in for the paper's Porto data
    // (hidden road network + realistic GPS trips; see DESIGN.md).
    println!("generating the synthetic city and trips...");
    let dataset = Dataset::porto_like(DatasetScale::Small);
    println!(
        "  {} training trajectories, {} test trajectories, {:.0} points/trajectory",
        dataset.train.len(),
        dataset.test.len(),
        dataset.mean_train_len()
    );

    // Train KAMEL. Defaults follow the paper (§8): 75 m hexagons, 100 m
    // max_gap, beam size 10, 45° cones, cycle window 6. The pyramid is
    // scaled to the simulated area.
    let config = KamelConfig::builder()
        .pyramid_height(3)
        .pyramid_maintained(3)
        .model_threshold_k(150)
        .build();
    let kamel = Kamel::new(config);
    println!("training KAMEL...");
    kamel.train(&dataset.train);
    let stats = kamel.stats().expect("trained");
    println!(
        "  {} models in the pyramid repository, {} stored tokens, speed cap {:.1} m/s",
        stats.models, stats.stored_tokens, stats.max_speed_mps
    );

    // Sparsify a held-out trajectory per the paper's protocol (1 km gaps)
    // and impute it.
    let ground_truth = dataset
        .test
        .iter()
        .max_by_key(|t| t.len())
        .expect("non-empty test split");
    let sparse = ground_truth.sparsify(1_000.0);
    println!(
        "imputing: ground truth {} points -> sparse {} points",
        ground_truth.len(),
        sparse.len()
    );
    let result = kamel.impute(&sparse);
    println!(
        "  output {} points ({} imputed across {} gaps, {} model calls, failure rate {})",
        result.trajectory.len(),
        result.imputed_points(),
        result.gaps.len(),
        result.model_calls(),
        result
            .failure_rate()
            .map_or("n/a".to_string(), |f| format!("{f:.2}")),
    );

    // Score with the paper's §8 metrics.
    let mut acc = MetricsAccumulator::default();
    acc.add_pair(
        ground_truth,
        &result.trajectory,
        &dataset.projection(),
        100.0,
        50.0,
    );
    println!(
        "  recall {:.3}, precision {:.3} (delta = 50 m)",
        acc.recall(),
        acc.precision()
    );
}

//! BERT MLM pretraining loop.
//!
//! Implements the Devlin et al. masking recipe the paper relies on: 15% of
//! positions are selected; of those 80% become `[MASK]`, 10% a random token,
//! 10% keep the original. KAMEL's Partitioning module drives this trainer
//! once per pyramid-cell model.

use crate::bert::BertMlmModel;
use crate::optim::Adam;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Options controlling one training run.
#[derive(Debug, Clone, Copy)]
pub struct TrainOptions {
    /// Number of passes over the corpus.
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Sequences whose gradients are accumulated before each optimizer step.
    pub batch_size: usize,
    /// Fraction of positions selected for prediction (BERT: 0.15).
    pub mask_prob: f64,
    /// Fraction of total optimizer steps spent linearly warming the
    /// learning rate from 0 to `lr`, after which it decays linearly to 0 —
    /// the original BERT schedule. 0 disables scheduling.
    pub warmup_frac: f64,
    /// Embedding dropout probability during training (BERT uses 0.1 at
    /// corpus scale; the tiny CPU models default to 0 because they underfit
    /// rather than overfit).
    pub dropout: f32,
    /// RNG seed for masking and shuffling (training is deterministic).
    pub seed: u64,
}

impl Default for TrainOptions {
    fn default() -> Self {
        Self {
            epochs: 10,
            lr: 1e-3,
            batch_size: 8,
            mask_prob: 0.15,
            warmup_frac: 0.1,
            dropout: 0.0,
            seed: 0x5EED,
        }
    }
}

/// The BERT learning-rate schedule: linear warmup to the base rate over
/// `warmup` steps, then linear decay to zero at `total` steps.
pub fn scheduled_lr(base_lr: f32, step: usize, warmup: usize, total: usize) -> f32 {
    if warmup == 0 && total == 0 {
        return base_lr;
    }
    if step < warmup {
        return base_lr * (step + 1) as f32 / warmup.max(1) as f32;
    }
    if total <= warmup {
        return base_lr;
    }
    let remaining = (total - step) as f32 / (total - warmup) as f32;
    base_lr * remaining.clamp(0.0, 1.0)
}

/// Generates masked MLM examples from raw token sequences.
#[derive(Debug, Clone)]
pub struct MlmBatcher {
    /// Id of the `[MASK]` token.
    pub mask_id: u32,
    /// Half-open range of ordinary (non-special) token ids used for the
    /// 10% random-replacement branch.
    pub random_range: (u32, u32),
    /// Fraction of positions selected for prediction.
    pub mask_prob: f64,
    /// Positions never selected (e.g. `[CLS]`/`[SEP]` markers at the ends).
    pub protect_ends: bool,
}

impl MlmBatcher {
    /// Creates a batcher with the standard 15% / 80-10-10 recipe.
    pub fn new(mask_id: u32, random_range: (u32, u32)) -> Self {
        assert!(random_range.1 > random_range.0, "empty random token range");
        Self {
            mask_id,
            random_range,
            mask_prob: 0.15,
            protect_ends: true,
        }
    }

    /// Produces a masked copy of `seq` and its per-position labels.
    ///
    /// Guarantees at least one selected position for sequences with any
    /// maskable position (otherwise a short sequence could contribute
    /// nothing to training).
    pub fn mask(&self, seq: &[u32], rng: &mut impl Rng) -> (Vec<u32>, Vec<Option<u32>>) {
        let mut ids = seq.to_vec();
        let mut labels = vec![None; seq.len()];
        let lo = if self.protect_ends && seq.len() > 2 { 1 } else { 0 };
        let hi = if self.protect_ends && seq.len() > 2 {
            seq.len() - 1
        } else {
            seq.len()
        };
        if lo >= hi {
            return (ids, labels);
        }
        let mut any = false;
        for i in lo..hi {
            if rng.gen_bool(self.mask_prob) {
                self.apply_at(&mut ids, &mut labels, seq, i, rng);
                any = true;
            }
        }
        if !any {
            let i = rng.gen_range(lo..hi);
            self.apply_at(&mut ids, &mut labels, seq, i, rng);
        }
        (ids, labels)
    }

    fn apply_at(
        &self,
        ids: &mut [u32],
        labels: &mut [Option<u32>],
        orig: &[u32],
        i: usize,
        rng: &mut impl Rng,
    ) {
        labels[i] = Some(orig[i]);
        let roll: f64 = rng.gen();
        if roll < 0.8 {
            ids[i] = self.mask_id;
        } else if roll < 0.9 {
            ids[i] = rng.gen_range(self.random_range.0..self.random_range.1);
        } // else: keep original token
    }
}

/// Runs MLM training over a corpus of token sequences.
pub struct Trainer {
    batcher: MlmBatcher,
    options: TrainOptions,
}

impl Trainer {
    /// Creates a trainer from a batcher and options (the batcher's
    /// `mask_prob` is overridden by the options).
    pub fn new(mut batcher: MlmBatcher, options: TrainOptions) -> Self {
        batcher.mask_prob = options.mask_prob;
        Self { batcher, options }
    }

    /// Trains `model` in place; returns the mean loss per epoch.
    ///
    /// Sequences longer than the model's `max_seq_len` are split into
    /// overlapping windows so no training signal is dropped.
    pub fn train(&self, model: &mut BertMlmModel, corpus: &[Vec<u32>]) -> Vec<f32> {
        let mut rng = ChaCha8Rng::seed_from_u64(self.options.seed);
        let max_len = model.config.max_seq_len;
        let mut windows: Vec<Vec<u32>> = Vec::new();
        for seq in corpus {
            if seq.len() < 2 {
                continue;
            }
            if seq.len() <= max_len {
                windows.push(seq.clone());
            } else {
                // 50% overlapping windows keep cross-window context.
                let stride = max_len / 2;
                let mut start = 0;
                while start + 2 < seq.len() {
                    let end = (start + max_len).min(seq.len());
                    windows.push(seq[start..end].to_vec());
                    if end == seq.len() {
                        break;
                    }
                    start += stride;
                }
            }
        }
        let mut opt = Adam::new(self.options.lr);
        // BERT schedule: warmup then linear decay over the whole run.
        let steps_per_epoch = windows.len().div_ceil(self.options.batch_size.max(1));
        let total_steps = steps_per_epoch * self.options.epochs;
        let warmup_steps = (total_steps as f64 * self.options.warmup_frac.clamp(0.0, 1.0)) as usize;
        let schedule_on = self.options.warmup_frac > 0.0;
        let mut step = 0usize;
        let mut history = Vec::with_capacity(self.options.epochs);
        for _ in 0..self.options.epochs {
            windows.shuffle(&mut rng);
            let mut epoch_loss = 0.0f64;
            let mut examples = 0usize;
            for chunk in windows.chunks(self.options.batch_size.max(1)) {
                for seq in chunk {
                    let (ids, labels) = self.batcher.mask(seq, &mut rng);
                    epoch_loss += model
                        .train_example_dropout(&ids, &labels, self.options.dropout, &mut rng)
                        as f64;
                    examples += 1;
                }
                if schedule_on {
                    opt.lr = scheduled_lr(self.options.lr, step, warmup_steps, total_steps);
                }
                opt.step(&mut model.params());
                model.zero_grads();
                step += 1;
            }
            history.push(if examples > 0 {
                (epoch_loss / examples as f64) as f32
            } else {
                0.0
            });
        }
        history
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bert::BertConfig;

    #[test]
    fn masking_selects_and_labels_consistently() {
        let batcher = MlmBatcher::new(1, (4, 20));
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let seq: Vec<u32> = (4..16).collect();
        let (ids, labels) = batcher.mask(&seq, &mut rng);
        assert_eq!(ids.len(), seq.len());
        let mut selected = 0;
        for i in 0..seq.len() {
            match labels[i] {
                Some(orig) => {
                    assert_eq!(orig, seq[i], "label must be the original token");
                    selected += 1;
                }
                None => assert_eq!(ids[i], seq[i], "unselected positions unchanged"),
            }
        }
        assert!(selected >= 1);
    }

    #[test]
    fn protect_ends_never_masks_boundaries() {
        let batcher = MlmBatcher::new(1, (4, 20));
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let seq: Vec<u32> = (4..12).collect();
        for _ in 0..200 {
            let (_, labels) = batcher.mask(&seq, &mut rng);
            assert!(labels[0].is_none());
            assert!(labels[seq.len() - 1].is_none());
        }
    }

    #[test]
    fn masking_rate_is_roughly_15_percent() {
        let batcher = MlmBatcher::new(1, (4, 100));
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let seq: Vec<u32> = (4..104).collect();
        let mut total = 0usize;
        for _ in 0..100 {
            let (_, labels) = batcher.mask(&seq, &mut rng);
            total += labels.iter().flatten().count();
        }
        let rate = total as f64 / (100.0 * 98.0); // 98 maskable positions
        assert!((0.10..0.20).contains(&rate), "rate {rate}");
    }

    #[test]
    fn short_sequences_get_at_least_one_mask() {
        let batcher = MlmBatcher::new(1, (4, 20));
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let seq = [4u32, 5, 6];
        for _ in 0..50 {
            let (_, labels) = batcher.mask(&seq, &mut rng);
            assert_eq!(labels.iter().flatten().count(), 1);
            assert!(labels[1].is_some());
        }
    }

    #[test]
    fn training_learns_a_bigram_corpus() {
        // Corpus: sequences follow the chain 4 -> 5 -> 6 -> 7. A trained
        // model must put most mask probability on the chain token.
        let corpus: Vec<Vec<u32>> = (0..40).map(|_| vec![4u32, 5, 6, 7]).collect();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mut model = BertMlmModel::new(BertConfig::tiny(8), &mut rng);
        let trainer = Trainer::new(
            MlmBatcher::new(1, (4, 8)),
            TrainOptions {
                epochs: 14,
                lr: 3e-3,
                batch_size: 8,
                ..TrainOptions::default()
            },
        );
        let history = trainer.train(&mut model, &corpus);
        assert!(
            history.last().unwrap() < &history[0],
            "loss should decrease: {history:?}"
        );
        // Mask the middle of 4 ? 6 7: the answer is 5.
        let p = model.predict(&[4, 1, 6, 7], 1);
        let argmax = p
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(argmax, 5, "probs {p:?}");
    }

    #[test]
    fn training_with_dropout_still_learns() {
        let corpus: Vec<Vec<u32>> = (0..40).map(|_| vec![4u32, 5, 6, 7]).collect();
        let mut rng = ChaCha8Rng::seed_from_u64(12);
        let mut model = BertMlmModel::new(BertConfig::tiny(8), &mut rng);
        let trainer = Trainer::new(
            MlmBatcher::new(1, (4, 8)),
            TrainOptions {
                epochs: 16,
                lr: 3e-3,
                batch_size: 8,
                dropout: 0.1,
                ..TrainOptions::default()
            },
        );
        let history = trainer.train(&mut model, &corpus);
        assert!(history.last().unwrap() < &history[0], "{history:?}");
        let p = model.predict(&[4, 1, 6, 7], 1);
        let argmax = p
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(argmax, 5, "dropout training failed to learn: {p:?}");
    }

    #[test]
    fn lr_schedule_warms_up_then_decays() {
        let base = 1e-3f32;
        // Warmup phase climbs monotonically to the base rate.
        assert!(scheduled_lr(base, 0, 10, 100) < scheduled_lr(base, 5, 10, 100));
        assert!((scheduled_lr(base, 9, 10, 100) - base).abs() < 1e-9);
        // Decay phase falls monotonically to zero.
        assert!(scheduled_lr(base, 50, 10, 100) > scheduled_lr(base, 90, 10, 100));
        assert!(scheduled_lr(base, 100, 10, 100) <= 1e-9);
        // Disabled schedule returns the base rate.
        assert_eq!(scheduled_lr(base, 7, 0, 0), base);
    }

    #[test]
    fn long_sequences_are_windowed_not_dropped() {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let mut model = BertMlmModel::new(BertConfig::tiny(8), &mut rng);
        let long: Vec<u32> = (0..500).map(|i| 4 + (i % 4) as u32).collect();
        let trainer = Trainer::new(
            MlmBatcher::new(1, (4, 8)),
            TrainOptions {
                epochs: 1,
                ..TrainOptions::default()
            },
        );
        // Must not panic on the > max_seq_len input.
        let history = trainer.train(&mut model, &[long]);
        assert_eq!(history.len(), 1);
        assert!(history[0].is_finite() && history[0] > 0.0);
    }
}

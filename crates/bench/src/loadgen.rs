//! Open-loop, coordinated-omission-free HTTP load generator.
//!
//! The closed-loop driver the serving benches used before this module
//! suffered from *coordinated omission*: each client thread fired its
//! next request only after the previous response returned, so a server
//! stall silently throttled the offered load and the stall showed up in
//! at most one latency sample. Real arrivals do not wait for the server.
//!
//! This generator fixes both halves of that bug:
//!
//! * **Open loop** — requests follow a fixed arrival schedule computed
//!   up front from the target rate. The k-th request of the run is
//!   *intended* to leave at `t0 + k / rate`, whether or not the server
//!   has answered anything yet. A driver that falls behind does not
//!   stretch the schedule; it works through the backlog.
//! * **Coordinated-omission-free latency** — every sample is measured
//!   from the request's *intended* send time, not the moment the socket
//!   write finally happened. Time a request spent queued behind a stall
//!   on its connection counts against the server, exactly as a real
//!   client would experience it. The actual service time (send → last
//!   response byte) is recorded separately so the gap between the two
//!   distributions — the queueing delay closed-loop drivers hide — is
//!   visible in the report.
//!
//! Connection model: `plan.connections` keep-alive sockets are opened
//! before the clock starts. `plan.drivers` of them actively carry the
//! request schedule (round-robin: driver d sends requests k where
//! `k % drivers == d`); the rest form an idle *wall* that holds the
//! server's connection table at the sweep level, which is how the
//! 1k–50k sweeps exercise the reactor's readiness machinery without
//! needing 50k sender threads.

use kamel_server::Client;
use serde_json::json;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One load level of a sweep: how many connections, how fast, how long.
#[derive(Debug, Clone)]
pub struct LoadPlan {
    /// Total keep-alive connections held open for the run (drivers + wall).
    pub connections: usize,
    /// Connections that actively carry requests (each gets a thread).
    /// Clamped to `connections`.
    pub drivers: usize,
    /// Intended aggregate arrival rate, requests per second.
    pub rate_rps: f64,
    /// Total requests in the schedule.
    pub requests: usize,
    /// Per-request socket timeout.
    pub timeout: Duration,
}

impl LoadPlan {
    /// A plan offering `rate_rps` for roughly `seconds` across
    /// `connections` connections with a default driver pool.
    pub fn at_rate(connections: usize, rate_rps: f64, seconds: f64) -> Self {
        LoadPlan {
            connections,
            drivers: connections.min(16),
            rate_rps,
            requests: (rate_rps * seconds).ceil() as usize,
            timeout: Duration::from_secs(60),
        }
    }
}

/// Everything measured during one [`run`].
#[derive(Debug)]
pub struct LoadOutcome {
    /// Requests the schedule intended to send.
    pub intended: usize,
    /// Requests that completed with a 200.
    pub completed: usize,
    /// Requests that errored (transport failure or non-200).
    pub errors: usize,
    /// Wall-clock of the driving phase, seconds.
    pub elapsed_s: f64,
    /// Idle keep-alive connections held open alongside the drivers.
    pub wall_connections: usize,
    /// Sorted latencies in µs measured from *intended* send time.
    pub latency_us: Vec<u64>,
    /// Sorted service times in µs measured from actual send time.
    pub service_us: Vec<u64>,
}

impl LoadOutcome {
    /// Completed requests per wall-clock second.
    pub fn achieved_rps(&self) -> f64 {
        if self.elapsed_s > 0.0 {
            self.completed as f64 / self.elapsed_s
        } else {
            0.0
        }
    }
}

/// Value at quantile `p` (0.0–1.0) of an ascending-sorted slice.
pub fn percentile_us(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

fn quantile_block(sorted: &[u64]) -> serde_json::Value {
    json!({
        "p50": percentile_us(sorted, 0.50),
        "p90": percentile_us(sorted, 0.90),
        "p99": percentile_us(sorted, 0.99),
        "p999": percentile_us(sorted, 0.999),
        "max": sorted.last().copied().unwrap_or(0),
    })
}

/// JSON summary of one load level, for the BENCH_*.json reports.
///
/// `latency_us` is the honest (intended-send-time) distribution;
/// `service_us` is what a coordinated-omission-blind driver would have
/// reported. Their divergence at the tail is the queueing delay the old
/// closed-loop bench hid.
pub fn summary_json(plan: &LoadPlan, outcome: &LoadOutcome) -> serde_json::Value {
    json!({
        "connections": plan.connections,
        "drivers": plan.drivers,
        "offered_rps": plan.rate_rps,
        "intended_requests": outcome.intended,
        "completed": outcome.completed,
        "errors": outcome.errors,
        "elapsed_s": outcome.elapsed_s,
        "achieved_rps": outcome.achieved_rps(),
        "latency_us": quantile_block(&outcome.latency_us),
        "service_us": quantile_block(&outcome.service_us),
    })
}

/// Drives `plan` against `addr`, POSTing bodies round-robin from
/// `bodies` to `path`. Returns the merged, sorted measurements.
///
/// Panics if the wall cannot be opened (the sweep level exceeds what
/// the server or the local fd limit admits) — a load level that cannot
/// even establish its connections is a failed level, not a datum.
pub fn run(
    addr: SocketAddr,
    path: &'static str,
    plan: &LoadPlan,
    bodies: &Arc<Vec<Vec<u8>>>,
) -> LoadOutcome {
    let drivers = plan.drivers.max(1).min(plan.connections.max(1));
    let wall_connections = plan.connections.saturating_sub(drivers);

    // The idle wall first: sockets held open but silent, so the server
    // carries `plan.connections` entries in its connection table for
    // the whole run. Opened before t0 so setup cost is not billed to
    // request latency.
    let wall: Vec<Client> = (0..wall_connections)
        .map(|i| {
            Client::connect(addr, plan.timeout)
                .unwrap_or_else(|e| panic!("wall connection {i}/{wall_connections}: {e}"))
        })
        .collect();

    let t0 = Instant::now();
    let handles: Vec<_> = (0..drivers)
        .map(|d| {
            let bodies = Arc::clone(bodies);
            let plan = plan.clone();
            std::thread::spawn(move || {
                let mut latency = Vec::new();
                let mut service = Vec::new();
                let mut errors = 0usize;
                let mut client = Client::connect(addr, plan.timeout).expect("driver connect");
                let mut k = d;
                while k < plan.requests {
                    // The open-loop schedule: request k is due at
                    // t0 + k/rate regardless of server progress.
                    let due = t0 + Duration::from_secs_f64(k as f64 / plan.rate_rps);
                    let now = Instant::now();
                    if due > now {
                        std::thread::sleep(due - now);
                    }
                    let sent = Instant::now();
                    let body = &bodies[k % bodies.len()];
                    match client.post_json(path, body) {
                        Ok(resp) if resp.status == 200 => {
                            let done = Instant::now();
                            // From intended time: queueing behind a
                            // stalled connection counts.
                            latency.push(done.duration_since(due).as_micros() as u64);
                            service.push(done.duration_since(sent).as_micros() as u64);
                        }
                        Ok(_) | Err(_) => {
                            errors += 1;
                            // The connection may be wedged mid-response;
                            // a fresh one keeps the schedule honest.
                            if let Ok(fresh) = Client::connect(addr, plan.timeout) {
                                client = fresh;
                            }
                        }
                    }
                    k += drivers;
                }
                (latency, service, errors)
            })
        })
        .collect();

    let mut latency_us = Vec::with_capacity(plan.requests);
    let mut service_us = Vec::with_capacity(plan.requests);
    let mut errors = 0;
    for h in handles {
        let (l, s, e) = h.join().expect("driver thread");
        latency_us.extend(l);
        service_us.extend(s);
        errors += e;
    }
    let elapsed_s = t0.elapsed().as_secs_f64();
    drop(wall);
    latency_us.sort_unstable();
    service_us.sort_unstable();
    LoadOutcome {
        intended: plan.requests,
        completed: latency_us.len(),
        errors,
        elapsed_s,
        wall_connections,
        latency_us,
        service_us,
    }
}

/// The connection sweep for a serving bench: how many keep-alive
/// connections each load level holds open. Capped by the host's fd
/// headroom so a laptop run degrades to the levels it can hold instead
/// of dying on EMFILE; the cap is recorded in the bench output.
pub fn connection_sweep(fd_headroom: usize) -> Vec<usize> {
    [1_000, 5_000, 10_000, 25_000, 50_000]
        .into_iter()
        .filter(|&c| c <= fd_headroom)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_on_empty_and_singleton() {
        assert_eq!(percentile_us(&[], 0.99), 0);
        assert_eq!(percentile_us(&[7], 0.0), 7);
        assert_eq!(percentile_us(&[7], 1.0), 7);
    }

    #[test]
    fn percentile_picks_the_right_rank() {
        let v: Vec<u64> = (1..=100).collect();
        // Nearest-rank over the 0-based index range: (len-1) * p, rounded.
        assert_eq!(percentile_us(&v, 0.50), 51);
        assert_eq!(percentile_us(&v, 0.99), 99);
        assert_eq!(percentile_us(&v, 1.0), 100);
    }

    #[test]
    fn at_rate_sizes_the_schedule() {
        let p = LoadPlan::at_rate(1_000, 500.0, 4.0);
        assert_eq!(p.connections, 1_000);
        assert_eq!(p.drivers, 16);
        assert_eq!(p.requests, 2_000);
    }

    #[test]
    fn sweep_respects_fd_headroom() {
        assert_eq!(connection_sweep(12_000), vec![1_000, 5_000, 10_000]);
        assert_eq!(connection_sweep(800), Vec::<usize>::new());
        assert_eq!(connection_sweep(60_000).len(), 5);
    }
}

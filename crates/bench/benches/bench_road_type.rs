//! Criterion bench for the Figure 12-I/II path: road-type classification
//! and per-class scoring.

use criterion::{criterion_group, criterion_main, Criterion};
use kamel_bench::{default_kamel_config, City};
use kamel_eval::harness::train_kamel;
use kamel_eval::roadtype::{classify_segments, evaluate_by_road_type};
use kamel_roadsim::DatasetScale;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let dataset = City::Porto.dataset(DatasetScale::Small);
    let proj = dataset.projection();
    let sparse: Vec<_> = dataset.test.iter().take(5).map(|t| t.sparsify(1_000.0)).collect();
    let mut group = c.benchmark_group("fig12_road_type");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    group.bench_function("classify_segments", |b| {
        b.iter(|| {
            for s in &sparse {
                std::hint::black_box(classify_segments(&dataset.network, &proj, s, 20.0));
            }
        })
    });
    let (kamel, _) = train_kamel(&dataset, default_kamel_config().pyramid_height(3).model_threshold_k(150).build());
    group.bench_function("evaluate_by_road_type", |b| {
        b.iter(|| {
            std::hint::black_box(evaluate_by_road_type(
                &kamel, &dataset, 100.0, 50.0, 1_000.0, 20.0, 4,
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! The background retrain pass: captured batch → cell selection →
//! targeted retrain → replay regression gate → rollout or rollback.
//!
//! The pass never touches the serving [`Kamel`] instance. It loads its
//! own copies through [`ModelOps::load`], retrains the selected cells on
//! a fresh copy, and only if the gate passes does it [`ModelOps::save`]
//! the new checkpoint and ask [`ModelOps::rollout`] to swap generations
//! (hot-reload). A failing gate saves nothing: the old generation keeps
//! serving, and the attempt is counted as a rollback.
//!
//! The model channel is closure-based so the pass is testable without
//! checkpoints on disk: production wires `Kamel::load_from_file` /
//! `save_to_file` and an `/admin/reload` POST; tests wire an in-memory
//! model slot.

use crate::capture::{CaptureRecord, RecordKind};
use crate::select::{select_cells, CellStats, SelectionConfig};
use crate::sink::points_to_traj;
use kamel::Kamel;
use kamel_eval::{regression_gate, GateReport, ReplayCase};
use kamel_geo::Trajectory;
use kamel_hexgrid::CellId;
use std::collections::HashMap;
use std::time::Duration;

/// Cadence and thresholds of the background trainer.
#[derive(Debug, Clone)]
pub struct TrainerConfig {
    /// Minimum time between retrain passes.
    pub interval: Duration,
    /// Minimum captured records before a pass is attempted.
    pub batch_min: usize,
    /// Cell selection weights and budget.
    pub selection: SelectionConfig,
    /// Accuracy threshold (meters) for replay recall in the gate.
    pub gate_delta_m: f64,
    /// Allowed replay-score drop before the rollout is aborted.
    pub gate_epsilon: f64,
    /// Served answers below this confidence are not trusted as
    /// pseudo-label training examples.
    pub min_confidence: f64,
}

impl Default for TrainerConfig {
    fn default() -> Self {
        Self {
            interval: Duration::from_secs(60),
            batch_min: 16,
            selection: SelectionConfig::default(),
            gate_delta_m: 50.0,
            gate_epsilon: 0.0,
            min_confidence: 0.9,
        }
    }
}

/// Loads a fresh, private model instance.
pub type LoadFn = Box<dyn Fn() -> Result<Kamel, String> + Send>;
/// Persists a retrained model where the serving loader will find it.
pub type SaveFn = Box<dyn Fn(&Kamel) -> Result<(), String> + Send>;
/// Swaps the serving generation (hot reload); returns the new number.
pub type RolloutFn = Box<dyn Fn() -> Result<u64, String> + Send>;

/// How the trainer reaches the model: load a private copy, persist a
/// retrained one, and trigger the serving swap.
pub struct ModelOps {
    /// Loads a fresh, private model instance.
    pub load: LoadFn,
    /// Persists the retrained model where the serving loader will find it.
    pub save: SaveFn,
    /// Swaps the serving generation (hot reload); returns the new
    /// generation number.
    pub rollout: RolloutFn,
}

/// What one retrain pass did, for logs and counters.
#[derive(Debug, Clone, PartialEq)]
pub struct PassReport {
    /// Cells selected for retraining.
    pub selected_cells: Vec<u64>,
    /// Training examples offered to [`Kamel::retrain_cells`].
    pub examples_offered: usize,
    /// The regression gate's verdict.
    pub gate: GateReport,
    /// `true` when the new checkpoint was saved and the swap requested.
    pub rolled_out: bool,
    /// Serving generation after the pass (0 when rolled back).
    pub generation: u64,
}

/// Splits feedback records into training examples and a held-out replay
/// set the gate scores. Even indices train, odd indices judge; with a
/// single record it must do both (better a weak gate than none).
fn split_feedback(feedback: &[&CaptureRecord]) -> (Vec<Trajectory>, Vec<ReplayCase>) {
    let mut train = Vec::new();
    let mut holdout = Vec::new();
    for (i, rec) in feedback.iter().enumerate() {
        let truth = points_to_traj(&rec.answer);
        if i % 2 == 0 {
            train.push(truth.clone());
        }
        if i % 2 == 1 || feedback.len() == 1 {
            holdout.push(ReplayCase {
                sparse: points_to_traj(&rec.sparse),
                truth,
            });
        }
    }
    (train, holdout)
}

/// Runs one retrain pass over `records`.
///
/// Returns `Ok(None)` when the batch produced no actionable work (below
/// `batch_min`, no cell above the selection threshold, or no usable
/// training examples) — not an error, just nothing to do. `cell_rounds`
/// carries each cell's last-retrained round across passes for the
/// staleness term.
pub fn retrain_pass(
    records: &[CaptureRecord],
    round: u64,
    cell_rounds: &mut HashMap<u64, u64>,
    cfg: &TrainerConfig,
    model: &ModelOps,
) -> Result<Option<PassReport>, String> {
    if records.len() < cfg.batch_min {
        return Ok(None);
    }
    let old = (model.load)()?;

    // Cell attribution: trust the record's captured cells, fall back to
    // re-deriving gap context on the old model for records captured
    // before the context resolver was wired.
    let cells_of = |rec: &CaptureRecord| -> Vec<u64> {
        if !rec.cells.is_empty() {
            return rec.cells.clone();
        }
        old.gap_context(&points_to_traj(&rec.sparse))
            .map(|(cells, _)| cells.into_iter().map(|c| c.0).collect())
            .unwrap_or_default()
    };

    // Reduce the batch to per-cell evidence. Feedback disagreement is
    // measured against the OLD model — "how wrong is what we serve
    // today" is exactly the retraining-need signal.
    let mut stats: HashMap<u64, CellStats> = HashMap::new();
    let feedback: Vec<&CaptureRecord> = records
        .iter()
        .filter(|r| r.kind == RecordKind::Feedback)
        .collect();
    for rec in records {
        let disagreement = match rec.kind {
            RecordKind::Feedback => {
                let truth = points_to_traj(&rec.answer);
                let served = old.impute(&points_to_traj(&rec.sparse)).trajectory;
                Some(1.0 - kamel::replay_recall(&truth, &served, cfg.gate_delta_m))
            }
            RecordKind::Impute => None,
        };
        for cell in cells_of(rec) {
            let s = stats.entry(cell).or_default();
            s.traffic += 1;
            s.last_selected_round = *cell_rounds.get(&cell).unwrap_or(&0);
            match disagreement {
                Some(d) => {
                    s.disagreement_sum += d;
                    s.disagreement_n += 1;
                }
                None => {
                    s.confidence_sum += rec.confidence;
                    s.confidence_n += 1;
                }
            }
        }
    }

    let selected = select_cells(&stats, round, &cfg.selection);
    if selected.is_empty() {
        return Ok(None);
    }

    // Training set: ground-truth corrections plus confident served
    // answers as pseudo-labels (they reinforce what the model already
    // does well in neighboring cells without amplifying its mistakes).
    let (mut examples, holdout) = split_feedback(&feedback);
    examples.extend(
        records
            .iter()
            .filter(|r| r.kind == RecordKind::Impute && r.confidence >= cfg.min_confidence)
            .map(|r| points_to_traj(&r.answer)),
    );
    if examples.is_empty() {
        return Ok(None);
    }

    let new = (model.load)()?;
    let cell_ids: Vec<CellId> = selected.iter().map(|&c| CellId(c)).collect();
    new.retrain_cells(&cell_ids, &examples);

    let gate = regression_gate(&old, &new, &holdout, cfg.gate_delta_m, cfg.gate_epsilon);
    if !gate.pass {
        // Rollback: nothing saved, nothing swapped; the old generation
        // keeps serving untouched.
        return Ok(Some(PassReport {
            selected_cells: selected,
            examples_offered: examples.len(),
            gate,
            rolled_out: false,
            generation: 0,
        }));
    }

    (model.save)(&new)?;
    let generation = (model.rollout)()?;
    for &cell in &selected {
        cell_rounds.insert(cell, round);
    }
    Ok(Some(PassReport {
        selected_cells: selected,
        examples_offered: examples.len(),
        gate,
        rolled_out: true,
        generation,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::traj_to_points;
    use kamel::KamelConfig;
    use kamel_geo::GpsPoint;
    use std::sync::{Arc, Mutex};

    /// An L-shaped street (east, then a 90° turn north) with fixes every
    /// ~84–111 m. The turn keeps straight-line fallback from being a
    /// perfect answer, so replay scores actually discriminate.
    fn street(base_lat: f64, n: usize) -> Trajectory {
        Trajectory::new(
            (0..n)
                .map(|i| {
                    let (lat, lng) = if i < 15 {
                        (base_lat, -8.61 + i as f64 * 0.001)
                    } else {
                        (base_lat + (i - 14) as f64 * 0.001, -8.61 + 14.0 * 0.001)
                    };
                    GpsPoint::from_parts(lat, lng, i as f64 * 10.0)
                })
                .collect(),
        )
    }

    fn corpus(lat: f64) -> Vec<Trajectory> {
        (0..30).map(|_| street(lat, 30)).collect()
    }

    /// An in-memory model slot standing in for the checkpoint file +
    /// /admin/reload pair: `load` clones out of the slot via export,
    /// `save` stores, `rollout` bumps a generation counter.
    struct Slot {
        model: Arc<Mutex<Arc<Kamel>>>,
        generation: Arc<Mutex<u64>>,
    }

    fn slot_with(initial_corpus: &[Trajectory]) -> (Slot, ModelOps) {
        // Small pyramid + low model threshold so 30 trips build models.
        let kamel = Kamel::new(
            KamelConfig::builder()
                .model_threshold_k(50)
                .pyramid_height(3)
                .build(),
        );
        kamel.train(initial_corpus);
        let model = Arc::new(Mutex::new(Arc::new(kamel)));
        let generation = Arc::new(Mutex::new(1u64));
        let slot = Slot {
            model: Arc::clone(&model),
            generation: Arc::clone(&generation),
        };
        let load_model = Arc::clone(&model);
        let save_model = Arc::clone(&model);
        let gen = Arc::clone(&generation);
        let ops = ModelOps {
            load: Box::new(move || Ok(load_model.lock().unwrap().deep_clone())),
            save: Box::new(move |k| {
                *save_model.lock().unwrap() = Arc::new(k.deep_clone());
                Ok(())
            }),
            rollout: Box::new(move || {
                let mut g = gen.lock().unwrap();
                *g += 1;
                Ok(*g)
            }),
        };
        (slot, ops)
    }

    /// Feedback records for trips on `lat` (the model will disagree when
    /// it never trained there).
    fn feedback_records(lat: f64, n: usize) -> Vec<CaptureRecord> {
        (0..n)
            .map(|i| {
                let truth = street(lat, 30);
                CaptureRecord {
                    kind: RecordKind::Feedback,
                    unix_ms: 1_000 + i as u64,
                    confidence: 0.0,
                    cells: Vec::new(),
                    sparse: traj_to_points(&truth.sparsify(1000.0)),
                    answer: traj_to_points(&truth),
                }
            })
            .collect()
    }

    fn quick_cfg() -> TrainerConfig {
        TrainerConfig {
            interval: Duration::from_millis(0),
            batch_min: 2,
            ..TrainerConfig::default()
        }
    }

    #[test]
    fn disagreeing_feedback_triggers_a_gated_rollout() {
        // Model trained on one street; feedback arrives for a parallel
        // street ~330 m north it has never seen — the old model serves it
        // from the original street's evidence, visibly wrong.
        let (slot, ops) = slot_with(&corpus(41.15));
        let records = feedback_records(41.153, 8);
        let mut rounds = HashMap::new();
        let report = retrain_pass(&records, 1, &mut rounds, &quick_cfg(), &ops)
            .expect("pass must not error")
            .expect("pass must act on disagreeing feedback");
        assert!(!report.selected_cells.is_empty());
        assert!(report.gate.pass, "gate: {:?}", report.gate);
        assert!(
            report.gate.new_score > report.gate.old_score,
            "retraining must measurably improve the fed-back street: {:?}",
            report.gate
        );
        assert!(report.rolled_out);
        assert_eq!(report.generation, 2);
        assert_eq!(*slot.generation.lock().unwrap(), 2);
        // The rolled-out model now serves the new street well.
        let new_model = slot.model.lock().unwrap();
        let truth = street(41.153, 30);
        let out = new_model.impute(&truth.sparsify(1000.0));
        assert!(
            kamel::replay_recall(&truth, &out.trajectory, 50.0) > 0.9,
            "retrained model must have learned the fed-back street"
        );
        // Selected cells are stamped with the round for staleness.
        for cell in &report.selected_cells {
            assert_eq!(rounds.get(cell), Some(&1));
        }
    }

    #[test]
    fn impossible_gate_rolls_back_and_saves_nothing() {
        let (slot, ops) = slot_with(&corpus(41.15));
        let before = Arc::clone(&slot.model.lock().unwrap());
        let records = feedback_records(41.153, 8);
        let cfg = TrainerConfig {
            // A gate no retrain can pass: demand the new model beat the
            // old by more than the metric's full range.
            gate_epsilon: -2.0,
            ..quick_cfg()
        };
        let mut rounds = HashMap::new();
        let report = retrain_pass(&records, 1, &mut rounds, &cfg, &ops)
            .unwrap()
            .expect("pass must still run and report the rollback");
        assert!(!report.rolled_out);
        assert_eq!(report.generation, 0);
        assert_eq!(*slot.generation.lock().unwrap(), 1, "no rollout");
        assert!(
            Arc::ptr_eq(&before, &slot.model.lock().unwrap()),
            "a rolled-back pass must not touch the serving model"
        );
        assert!(rounds.is_empty(), "rolled-back cells stay stale");
    }

    #[test]
    fn small_batches_and_healthy_traffic_do_nothing() {
        let (slot, ops) = slot_with(&corpus(41.15));
        let mut rounds = HashMap::new();
        // Below batch_min.
        let few = feedback_records(41.153, 1);
        assert_eq!(
            retrain_pass(&few, 1, &mut rounds, &quick_cfg(), &ops).unwrap(),
            None
        );
        // Confident impute traffic on the trained street: no cell should
        // clear the selection threshold, so no churn.
        let truth = street(41.15, 30);
        let served = slot.model.lock().unwrap().impute(&truth.sparsify(1000.0));
        let healthy: Vec<CaptureRecord> = (0..6)
            .map(|i| CaptureRecord {
                kind: RecordKind::Impute,
                unix_ms: i,
                confidence: 1.0,
                cells: Vec::new(),
                sparse: traj_to_points(&truth.sparsify(1000.0)),
                answer: traj_to_points(&served.trajectory),
            })
            .collect();
        assert_eq!(
            retrain_pass(&healthy, 1, &mut rounds, &quick_cfg(), &ops).unwrap(),
            None,
            "healthy traffic must not churn generations"
        );
        assert_eq!(*slot.generation.lock().unwrap(), 1);
    }
}

//! City-scale partitioning: how the pyramid model repository (§4) carves a
//! large area into spatial "languages".
//!
//! ```text
//! cargo run --release --example city_scale
//! ```
//!
//! Trains on a whole synthetic city, prints the repository layout, then
//! contrasts imputation accuracy with the "No Part." single-global-model
//! ablation — and shows that trajectories outside every model fall back to
//! straight lines instead of failing hard.

use kamel::{Kamel, KamelConfig};
use kamel_eval::MetricsAccumulator;
use kamel_geo::{GpsPoint, Trajectory};
use kamel_roadsim::{Dataset, DatasetScale};

fn score(kamel: &Kamel, dataset: &Dataset, n: usize) -> (f64, f64, f64) {
    let proj = dataset.projection();
    let mut acc = MetricsAccumulator::default();
    for gt in dataset.test.iter().take(n) {
        let out = kamel.impute(&gt.sparsify(1_500.0));
        acc.add_pair(gt, &out.trajectory, &proj, 100.0, 50.0);
        let failed = out.gaps.iter().filter(|g| g.outcome.failed).count();
        acc.add_failures(out.gaps.len(), failed);
    }
    (acc.recall(), acc.precision(), acc.failure_rate().unwrap_or(0.0))
}

fn main() {
    println!("generating a city-scale dataset...");
    let dataset = Dataset::porto_like(DatasetScale::Medium);
    println!(
        "  {} training trajectories over {:.1} km of road",
        dataset.train.len(),
        dataset.network.total_length_m() / 1_000.0
    );

    // Full KAMEL with spatial partitioning.
    let partitioned = Kamel::new(
        KamelConfig::builder()
            .pyramid_height(3)
            .pyramid_maintained(3)
            .model_threshold_k(500)
            .build(),
    );
    println!("training the partitioned system...");
    partitioned.train(&dataset.train);
    let stats = partitioned.stats().expect("trained");
    println!(
        "  pyramid repository: {} models over {} stored trajectories",
        stats.models, stats.stored_trajectories
    );

    // The §8.7 "No Part." ablation: one global model.
    let global = Kamel::new(
        KamelConfig::builder()
            .pyramid_height(3)
            .pyramid_maintained(3)
            .model_threshold_k(500)
            .disable_partitioning(true)
            .build(),
    );
    println!("training the single-global-model ablation...");
    global.train(&dataset.train);

    let n = 40;
    let (r1, p1, f1) = score(&partitioned, &dataset, n);
    let (r2, p2, f2) = score(&global, &dataset, n);
    println!("\n{:<24} {:>8} {:>10} {:>9}", "variant", "recall", "precision", "failure");
    println!("{:<24} {:>8.3} {:>10.3} {:>9.3}", "KAMEL (partitioned)", r1, p1, f1);
    println!("{:<24} {:>8.3} {:>10.3} {:>9.3}", "No Part. (global)", r2, p2, f2);

    // A trajectory outside every trained model: graceful straight-line
    // fallback, reported as failures — never a panic.
    let faraway = Trajectory::new(vec![
        GpsPoint::from_parts(42.0, -9.5, 0.0),
        GpsPoint::from_parts(42.0, -9.48, 240.0),
    ]);
    let out = partitioned.impute(&faraway);
    println!(
        "\nout-of-area trajectory: {} gaps, failure rate {:.0}%, {} fallback points",
        out.gaps.len(),
        out.failure_rate().unwrap_or(0.0) * 100.0,
        out.imputed_points()
    );
}

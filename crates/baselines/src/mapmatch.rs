//! HMM map matching over the true road network — the paper's "knows the
//! map" reference (§8: "we do not consider map matching as a competitor").
//!
//! Classic FMM/Newson-Krumm structure: each sparse fix gets candidate
//! network nodes; emission favors near candidates, transition favors
//! candidate pairs whose network distance agrees with the great-circle
//! distance; Viterbi picks the best node sequence; imputation materializes
//! the network shortest path between consecutive matched nodes.

use crate::{ImputationOutput, TrajectoryImputer};
use kamel_geo::{GpsPoint, LocalProjection, Trajectory, Xy};
use kamel_roadsim::RoadNetwork;

/// The map-matching reference imputer.
pub struct MapMatcher {
    network: RoadNetwork,
    proj: LocalProjection,
    /// Candidate nodes considered per fix.
    pub candidates: usize,
    /// GPS noise scale σ for the emission model, meters.
    pub sigma_m: f64,
    /// Output spacing / gap threshold in meters.
    pub max_gap_m: f64,
}

impl MapMatcher {
    /// Builds a matcher over the (hidden-from-KAMEL) network.
    pub fn new(network: RoadNetwork, proj: LocalProjection) -> Self {
        Self {
            network,
            proj,
            candidates: 4,
            sigma_m: 15.0,
            max_gap_m: 100.0,
        }
    }

    /// The `k` nearest network nodes to a point.
    fn candidate_nodes(&self, p: Xy) -> Vec<usize> {
        let mut dists: Vec<(usize, f64)> = (0..self.network.node_count())
            .map(|i| (i, self.network.node(i).dist_sq(&p)))
            .collect();
        dists.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite distances"));
        dists
            .into_iter()
            .take(self.candidates)
            .map(|(i, _)| i)
            .collect()
    }

    /// Viterbi decoding of the most likely node per fix.
    fn match_nodes(&self, xy: &[Xy]) -> Vec<usize> {
        assert!(!xy.is_empty());
        let cands: Vec<Vec<usize>> = xy.iter().map(|p| self.candidate_nodes(*p)).collect();
        // Log-probabilities per candidate at each step.
        let emission = |p: Xy, node: usize| -> f64 {
            let d = self.network.node(node).dist(&p);
            -(d * d) / (2.0 * self.sigma_m * self.sigma_m)
        };
        let mut scores: Vec<f64> = cands[0].iter().map(|&n| emission(xy[0], n)).collect();
        let mut back: Vec<Vec<usize>> = Vec::with_capacity(xy.len());
        for step in 1..xy.len() {
            let straight = xy[step - 1].dist(&xy[step]);
            let mut next_scores = vec![f64::NEG_INFINITY; cands[step].len()];
            let mut next_back = vec![0usize; cands[step].len()];
            for (j, &nj) in cands[step].iter().enumerate() {
                let e = emission(xy[step], nj);
                for (i, &ni) in cands[step - 1].iter().enumerate() {
                    // Transition: penalize disagreement between network and
                    // straight-line distance (Newson–Krumm).
                    let net = self
                        .network
                        .shortest_path(ni, nj)
                        .map(|path| path_length(&self.network, &path));
                    let trans = match net {
                        Some(net_d) => -((net_d - straight).abs() / self.sigma_m.max(1.0)),
                        None => f64::NEG_INFINITY,
                    };
                    let s = scores[i] + trans + e;
                    if s > next_scores[j] {
                        next_scores[j] = s;
                        next_back[j] = i;
                    }
                }
            }
            // Dead end (disconnected candidates): restart from emissions.
            if next_scores.iter().all(|s| s.is_infinite()) {
                next_scores = cands[step].iter().map(|&n| emission(xy[step], n)).collect();
                next_back = vec![0; cands[step].len()];
            }
            scores = next_scores;
            back.push(next_back);
        }
        // Backtrack.
        let mut idx = scores
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite scores"))
            .map(|(i, _)| i)
            .unwrap_or(0);
        let mut rev = vec![cands[xy.len() - 1][idx]];
        for step in (1..xy.len()).rev() {
            idx = back[step - 1][idx];
            rev.push(cands[step - 1][idx]);
        }
        rev.reverse();
        rev
    }
}

fn path_length(net: &RoadNetwork, path: &[usize]) -> f64 {
    path.windows(2)
        .map(|w| net.node(w[0]).dist(&net.node(w[1])))
        .sum()
}

impl TrajectoryImputer for MapMatcher {
    fn name(&self) -> &str {
        "MapMatch"
    }

    fn impute(&self, sparse: &Trajectory) -> ImputationOutput {
        if sparse.len() < 2 || self.network.node_count() == 0 {
            return ImputationOutput {
                trajectory: sparse.clone(),
                segments_total: 0,
                segments_failed: 0,
            };
        }
        let xy: Vec<Xy> = sparse.points.iter().map(|p| self.proj.to_xy(p.pos)).collect();
        let matched = self.match_nodes(&xy);
        let mut points = Vec::with_capacity(sparse.len() * 3);
        let mut segments_total = 0usize;
        let mut segments_failed = 0usize;
        for i in 0..sparse.len() - 1 {
            points.push(sparse.points[i]);
            let gap_m = xy[i].dist(&xy[i + 1]);
            if gap_m <= self.max_gap_m {
                continue;
            }
            segments_total += 1;
            // Network route between matched nodes, densified.
            let route = self.network.shortest_path(matched[i], matched[i + 1]);
            let interior: Vec<Xy> = match route {
                Some(path) if path.len() >= 2 => {
                    let poly: Vec<Xy> = path.iter().map(|&n| self.network.node(n)).collect();
                    let dense = kamel_geo::discretize(&poly, self.max_gap_m * 0.8);
                    // Drop the matched endpoints; keep interior.
                    dense[1..dense.len().saturating_sub(1)].to_vec()
                }
                _ => {
                    segments_failed += 1;
                    let n = (gap_m / self.max_gap_m).ceil() as usize;
                    (1..n)
                        .map(|k| xy[i].lerp(&xy[i + 1], k as f64 / n as f64))
                        .collect()
                }
            };
            let (t0, t1) = (sparse.points[i].t, sparse.points[i + 1].t);
            let mut cum = Vec::with_capacity(interior.len());
            let mut total = 0.0;
            let mut prev = xy[i];
            for p in &interior {
                total += prev.dist(p);
                cum.push(total);
                prev = *p;
            }
            total += prev.dist(&xy[i + 1]);
            for (p, c) in interior.iter().zip(cum) {
                let f = if total > 0.0 { c / total } else { 0.0 };
                points.push(GpsPoint::new(self.proj.to_latlng(*p), t0 + (t1 - t0) * f));
            }
        }
        points.push(*sparse.points.last().expect("len >= 2"));
        ImputationOutput {
            trajectory: Trajectory::new(points),
            segments_total,
            segments_failed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kamel_geo::LatLng;
    use kamel_roadsim::{generate_city, CityConfig};

    fn setup() -> (MapMatcher, LocalProjection) {
        let net = generate_city(&CityConfig {
            cols: 8,
            rows: 8,
            spacing_m: 150.0,
            jitter_m: 0.0,
            street_removal_prob: 0.0,
            diagonals: 0,
            roundabouts: 0,
            ring_road: false,
            overpass: false,
            seed: 1,
        });
        let proj = LocalProjection::new(LatLng::new(41.15, -8.61));
        (MapMatcher::new(net, proj), proj)
    }

    #[test]
    fn imputes_along_the_network() {
        let (mm, proj) = setup();
        // A gap along the bottom street (y = 0): from (0,0) to (900,0).
        let sparse = Trajectory::new(vec![
            GpsPoint::new(proj.to_latlng(Xy::new(0.0, 3.0)), 0.0),
            GpsPoint::new(proj.to_latlng(Xy::new(900.0, -3.0)), 90.0),
        ]);
        let out = mm.impute(&sparse);
        assert_eq!(out.segments_total, 1);
        assert_eq!(out.segments_failed, 0);
        assert!(out.trajectory.len() > 6);
        // Imputed points stay on the street y ≈ 0.
        for p in &out.trajectory.points {
            let xy = proj.to_xy(p.pos);
            assert!(xy.y.abs() < 40.0, "off-road point {xy:?}");
        }
    }

    #[test]
    fn matches_through_turns() {
        let (mm, proj) = setup();
        // L-shaped trip: east along y=0 then north along x=900.
        let sparse = Trajectory::new(vec![
            GpsPoint::new(proj.to_latlng(Xy::new(0.0, 0.0)), 0.0),
            GpsPoint::new(proj.to_latlng(Xy::new(900.0, 0.0)), 90.0),
            GpsPoint::new(proj.to_latlng(Xy::new(900.0, 900.0)), 180.0),
        ]);
        let out = mm.impute(&sparse);
        assert_eq!(out.segments_total, 2);
        assert_eq!(out.segments_failed, 0);
        // The output length approximates the L route (~1800 m), not the
        // diagonal (~1273 m).
        let len = out.trajectory.length_m();
        assert!((1500.0..2200.0).contains(&len), "length {len}");
    }

    #[test]
    fn short_input_passthrough() {
        let (mm, proj) = setup();
        let single = Trajectory::new(vec![GpsPoint::new(proj.to_latlng(Xy::new(0.0, 0.0)), 0.0)]);
        let out = mm.impute(&single);
        assert_eq!(out.trajectory, single);
        assert_eq!(out.segments_total, 0);
    }
}

//! Core layers with explicit forward/backward passes.
//!
//! Every trainable tensor is a [`Param`]: the weight, its gradient
//! accumulator, and the Adam moments. Layers cache nothing internally —
//! forward passes return whatever the matching backward pass needs, so a
//! single layer instance can be reused across sequences within a batch.

use crate::matrix::Matrix;
use crate::simd;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A trainable parameter: value, gradient, and Adam moment estimates.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Param {
    /// Current value.
    pub w: Matrix,
    /// Gradient accumulator (same shape as `w`).
    pub g: Matrix,
    /// Adam first-moment estimate.
    pub m: Matrix,
    /// Adam second-moment estimate.
    pub v: Matrix,
}

impl Param {
    /// Wraps a weight matrix, allocating zeroed gradient/moment buffers.
    pub fn new(w: Matrix) -> Self {
        let (r, c) = (w.rows(), w.cols());
        Self {
            w,
            g: Matrix::zeros(r, c),
            m: Matrix::zeros(r, c),
            v: Matrix::zeros(r, c),
        }
    }

    /// Clears the gradient accumulator.
    pub fn zero_grad(&mut self) {
        self.g.fill_zero();
    }

    /// Number of scalar parameters.
    pub fn count(&self) -> usize {
        self.w.rows() * self.w.cols()
    }
}

/// A fully connected layer `y = x·W + b` with `W: [in, out]`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Linear {
    /// Weight `[in_dim, out_dim]`.
    pub weight: Param,
    /// Bias `[1, out_dim]`.
    pub bias: Param,
}

impl Linear {
    /// Xavier/Glorot-initialized linear layer.
    pub fn new(in_dim: usize, out_dim: usize, rng: &mut impl Rng) -> Self {
        let std = (2.0 / (in_dim + out_dim) as f32).sqrt();
        Self {
            weight: Param::new(Matrix::randn(in_dim, out_dim, std, rng)),
            bias: Param::new(Matrix::zeros(1, out_dim)),
        }
    }

    /// Forward pass for a `[n, in]` activation.
    pub fn forward(&self, x: &Matrix) -> Matrix {
        let mut y = x.matmul(&self.weight.w);
        y.add_row_broadcast(self.bias.w.row(0));
        y
    }

    /// Forward pass into a reusable buffer (the grad-free inference path).
    /// Bit-identical to [`Linear::forward`]; allocates nothing once `out`
    /// has capacity.
    pub fn forward_into(&self, x: &Matrix, out: &mut Matrix) {
        x.matmul_into(&self.weight.w, out);
        out.add_row_broadcast(self.bias.w.row(0));
    }

    /// Backward pass: accumulates `dW`, `db` and returns `dx`.
    ///
    /// `x` must be the exact input of the matching forward call.
    pub fn backward(&mut self, x: &Matrix, dy: &Matrix) -> Matrix {
        // dW = xᵀ·dy
        self.weight.g.add_assign(&x.matmul_tn(dy));
        // db = column sums of dy
        for r in 0..dy.rows() {
            for (gb, d) in self.bias.g.row_mut(0).iter_mut().zip(dy.row(r)) {
                *gb += d;
            }
        }
        // dx = dy·Wᵀ
        dy.matmul_nt(&self.weight.w)
    }

    /// The two parameters of this layer, for the optimizer.
    pub fn params(&mut self) -> impl Iterator<Item = &mut Param> {
        [&mut self.weight, &mut self.bias].into_iter()
    }
}

/// An embedding table `[vocab, dim]`; rows are gathered by token id.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Embedding {
    /// The table `[vocab_size, dim]`.
    pub table: Param,
}

impl Embedding {
    /// Gaussian-initialized embedding table (std 0.02, as in BERT).
    pub fn new(vocab: usize, dim: usize, rng: &mut impl Rng) -> Self {
        Self {
            table: Param::new(Matrix::randn(vocab, dim, 0.02, rng)),
        }
    }

    /// Gathers the rows for `ids` into a `[n, dim]` activation.
    ///
    /// # Panics
    /// Panics (debug) on out-of-vocabulary ids.
    pub fn forward(&self, ids: &[u32]) -> Matrix {
        let dim = self.table.w.cols();
        let mut out = Matrix::zeros(ids.len(), dim);
        for (r, &id) in ids.iter().enumerate() {
            debug_assert!(
                (id as usize) < self.table.w.rows(),
                "token id {id} out of vocab {}",
                self.table.w.rows()
            );
            out.row_mut(r).copy_from_slice(self.table.w.row(id as usize));
        }
        out
    }

    /// Scatters the gradient rows back into the table's accumulator.
    pub fn backward(&mut self, ids: &[u32], dy: &Matrix) {
        for (r, &id) in ids.iter().enumerate() {
            for (g, d) in self.table.g.row_mut(id as usize).iter_mut().zip(dy.row(r)) {
                *g += d;
            }
        }
    }
}

/// Per-row layer normalization with learned scale and shift.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LayerNorm {
    /// Scale γ `[1, dim]`, initialized to ones.
    pub gamma: Param,
    /// Shift β `[1, dim]`, initialized to zeros.
    pub beta: Param,
    eps: f32,
}

/// Values the LayerNorm backward pass needs from its forward pass.
#[derive(Debug, Clone)]
pub struct LnCache {
    /// Normalized activations x̂ (before γ/β).
    pub xhat: Matrix,
    /// Reciprocal standard deviation per row.
    pub rstd: Vec<f32>,
}

impl LayerNorm {
    /// A fresh LayerNorm over `dim` features.
    pub fn new(dim: usize) -> Self {
        Self {
            gamma: Param::new(Matrix::from_fn(1, dim, |_, _| 1.0)),
            beta: Param::new(Matrix::zeros(1, dim)),
            eps: 1e-5,
        }
    }

    /// Normalizes each row of `x`, returning the output and backward cache.
    pub fn forward(&self, x: &Matrix) -> (Matrix, LnCache) {
        let (n, d) = (x.rows(), x.cols());
        let mut out = Matrix::zeros(n, d);
        let mut xhat = Matrix::zeros(n, d);
        let mut rstd = Vec::with_capacity(n);
        let gamma = self.gamma.w.row(0);
        let beta = self.beta.w.row(0);
        for r in 0..n {
            let row = x.row(r);
            // 8-lane SIMD reductions (bit-identical across backends; see
            // `crate::simd`). `forward_into` uses the same reductions, so
            // training and inference normalize identically.
            let mean = simd::sum(row) / d as f32;
            let var = simd::sum_sq_diff(row, mean) / d as f32;
            let rs = 1.0 / (var + self.eps).sqrt();
            rstd.push(rs);
            let xh = xhat.row_mut(r);
            let o = &mut out.data_mut()[r * d..(r + 1) * d];
            for c in 0..d {
                let h = (row[c] - mean) * rs;
                xh[c] = h;
                o[c] = h * gamma[c] + beta[c];
            }
        }
        (out, LnCache { xhat, rstd })
    }

    /// Normalizes each row of `x` into a reusable buffer, skipping the
    /// backward cache (the grad-free inference path). The per-row
    /// arithmetic is the same expression sequence as [`LayerNorm::forward`],
    /// so outputs are bit-identical to it.
    pub fn forward_into(&self, x: &Matrix, out: &mut Matrix) {
        let (n, d) = (x.rows(), x.cols());
        out.reset_zeroed(n, d);
        let gamma = self.gamma.w.row(0);
        let beta = self.beta.w.row(0);
        for r in 0..n {
            let row = x.row(r);
            let mean = simd::sum(row) / d as f32;
            let var = simd::sum_sq_diff(row, mean) / d as f32;
            let rs = 1.0 / (var + self.eps).sqrt();
            simd::ln_affine(row, mean, rs, gamma, beta, out.row_mut(r));
        }
    }

    /// Backward pass; accumulates dγ/dβ and returns dx.
    pub fn backward(&mut self, cache: &LnCache, dy: &Matrix) -> Matrix {
        let (n, d) = (dy.rows(), dy.cols());
        let mut dx = Matrix::zeros(n, d);
        let gamma = self.gamma.w.row(0);
        for r in 0..n {
            let dyr = dy.row(r);
            let xh = cache.xhat.row(r);
            // Parameter grads.
            {
                let dg = self.gamma.g.row_mut(0);
                for c in 0..d {
                    dg[c] += dyr[c] * xh[c];
                }
            }
            {
                let db = self.beta.g.row_mut(0);
                for c in 0..d {
                    db[c] += dyr[c];
                }
            }
            // Input grad:
            // dx = rstd * (dyγ - mean(dyγ) - x̂ * mean(dyγ ⊙ x̂))
            let mut sum_dg = 0.0f32;
            let mut sum_dgx = 0.0f32;
            for c in 0..d {
                let v = dyr[c] * gamma[c];
                sum_dg += v;
                sum_dgx += v * xh[c];
            }
            let inv_d = 1.0 / d as f32;
            let rs = cache.rstd[r];
            let dxr = dx.row_mut(r);
            for c in 0..d {
                let v = dyr[c] * gamma[c];
                dxr[c] = rs * (v - sum_dg * inv_d - xh[c] * sum_dgx * inv_d);
            }
        }
        dx
    }
}

/// Inverted dropout: keeps each element with probability `1 - p`, scaling
/// survivors by `1/(1-p)` so expectations match at inference time (which
/// simply skips the layer). Returns the dropped activation and the 0/scale
/// mask the backward pass multiplies by.
pub fn dropout_forward(x: &Matrix, p: f32, rng: &mut impl Rng) -> (Matrix, Matrix) {
    assert!((0.0..1.0).contains(&p), "dropout p must be in [0, 1), got {p}");
    if p == 0.0 {
        return (x.clone(), Matrix::from_fn(x.rows(), x.cols(), |_, _| 1.0));
    }
    let scale = 1.0 / (1.0 - p);
    let mask = Matrix::from_fn(x.rows(), x.cols(), |_, _| {
        if rng.gen::<f32>() < p {
            0.0
        } else {
            scale
        }
    });
    let mut out = x.clone();
    for (o, m) in out.data_mut().iter_mut().zip(mask.data()) {
        *o *= m;
    }
    (out, mask)
}

/// Dropout backward: `dx = dy ⊙ mask` (the mask already carries the scale).
pub fn dropout_backward(mask: &Matrix, dy: &Matrix) -> Matrix {
    let mut dx = dy.clone();
    for (d, m) in dx.data_mut().iter_mut().zip(mask.data()) {
        *d *= m;
    }
    dx
}

/// GELU activation (tanh approximation, as used by BERT). `tanh` runs
/// through the SIMD-reproducible [`crate::math::tanh_f32`] sequence so
/// vector backends can evaluate whole lanes bit-identically.
pub fn gelu(x: f32) -> f32 {
    const C: f32 = 0.797_884_6; // sqrt(2/pi)
    0.5 * x * (1.0 + crate::math::tanh_f32(C * (x + 0.044_715 * x * x * x)))
}

/// Derivative of [`gelu`] with respect to its input (same `tanh` kernel
/// as the forward pass, so training and inference see one activation).
pub fn gelu_grad(x: f32) -> f32 {
    const C: f32 = 0.797_884_6;
    let x3 = x * x * x;
    let inner = C * (x + 0.044_715 * x3);
    let t = crate::math::tanh_f32(inner);
    let sech2 = 1.0 - t * t;
    0.5 * (1.0 + t) + 0.5 * x * sech2 * C * (1.0 + 3.0 * 0.044_715 * x * x)
}

/// Applies GELU element-wise, returning the activated copy.
pub fn gelu_forward(x: &Matrix) -> Matrix {
    let mut out = x.clone();
    simd::gelu_map(x.data(), out.data_mut());
    out
}

/// GELU into a reusable buffer; bit-identical to [`gelu_forward`].
pub fn gelu_forward_into(x: &Matrix, out: &mut Matrix) {
    out.reset_zeroed(x.rows(), x.cols());
    simd::gelu_map(x.data(), out.data_mut());
}

/// Element-wise GELU backward: `dx = dy ⊙ gelu'(x)`.
pub fn gelu_backward(x: &Matrix, dy: &Matrix) -> Matrix {
    let mut dx = dy.clone();
    for (d, &xv) in dx.data_mut().iter_mut().zip(x.data()) {
        *d *= gelu_grad(xv);
    }
    dx
}

/// Numerically stable in-place softmax over each row.
pub fn softmax_rows(x: &mut Matrix) {
    for r in 0..x.rows() {
        softmax_slice(x.row_mut(r));
    }
}

/// Numerically stable in-place softmax over one row slice — the per-row
/// body of [`softmax_rows`], exposed so the inference head can softmax a
/// single logits row without wrapping it in a matrix.
pub fn softmax_slice(row: &mut [f32]) {
    if row.is_empty() {
        return;
    }
    // SIMD max is safe here: max is associative, so any lane order yields
    // the same value for non-NaN input, and `v - max` is value-identical
    // even across the ±0 ambiguity.
    let max = simd::max(row);
    if !max.is_finite() {
        // Entire row masked: fall back to uniform to avoid NaNs.
        let u = 1.0 / row.len() as f32;
        row.iter_mut().for_each(|v| *v = u);
        return;
    }
    // Exponentiation runs the SIMD-reproducible `math::exp_f32` sequence
    // and the sum accumulates in the canonical 8-lane order — both part
    // of the output contract, both bit-identical across backends.
    let sum = simd::exp_sum(row, max);
    let inv = 1.0 / sum;
    simd::scale(row, inv);
}

/// Backward through a row-wise softmax: given the softmax output `a` and
/// upstream `da`, returns `ds` where `s` was the softmax input.
pub fn softmax_rows_backward(a: &Matrix, da: &Matrix) -> Matrix {
    let (n, d) = (a.rows(), a.cols());
    let mut ds = Matrix::zeros(n, d);
    for r in 0..n {
        let ar = a.row(r);
        let dar = da.row(r);
        let inner: f32 = ar.iter().zip(dar).map(|(&av, &dv)| av * dv).sum();
        let out = ds.row_mut(r);
        for c in 0..d {
            out[c] = ar[c] * (dar[c] - inner);
        }
    }
    ds
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn linear_forward_known_values() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut lin = Linear::new(2, 2, &mut rng);
        lin.weight.w = Matrix::from_vec(2, 2, vec![1., 2., 3., 4.]);
        lin.bias.w = Matrix::from_vec(1, 2, vec![0.5, -0.5]);
        let x = Matrix::from_vec(1, 2, vec![1., 1.]);
        let y = lin.forward(&x);
        assert_eq!(y.data(), &[4.5, 5.5]);
    }

    #[test]
    fn linear_gradients_match_finite_differences() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut lin = Linear::new(3, 2, &mut rng);
        let x = Matrix::randn(4, 3, 1.0, &mut rng);
        // Loss = sum of outputs, so upstream grad is all-ones.
        let dy = Matrix::from_fn(4, 2, |_, _| 1.0);
        let dx = lin.backward(&x, &dy);
        // Check dW numerically.
        for (r, c) in [(0, 0), (2, 1), (1, 0)] {
            let eps = 1e-2f32;
            let orig = lin.weight.w.get(r, c);
            let mut up_model = lin.clone();
            up_model.weight.w.set(r, c, orig + eps);
            let up = up_model.forward(&x).data().iter().sum::<f32>();
            let mut dn_model = lin.clone();
            dn_model.weight.w.set(r, c, orig - eps);
            let down = dn_model.forward(&x).data().iter().sum::<f32>();
            let num = (up - down) / (2.0 * eps);
            let got = lin.weight.g.get(r, c);
            assert!((num - got).abs() < 1e-2, "dW[{r},{c}] num {num} got {got}");
        }
        // Check dx numerically at one coordinate.
        let mut x2 = x.clone();
        let lin2 = lin.clone();
        let f = |xm: &Matrix| lin2.forward(xm).data().iter().sum::<f32>();
        let eps = 1e-2;
        let orig = x2.get(1, 2);
        x2.set(1, 2, orig + eps);
        let up = f(&x2);
        x2.set(1, 2, orig - eps);
        let down = f(&x2);
        let num = (up - down) / (2.0 * eps);
        assert!((num - dx.get(1, 2)).abs() < 1e-2);
    }

    #[test]
    fn embedding_gather_and_scatter() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut emb = Embedding::new(5, 4, &mut rng);
        let ids = [1u32, 3, 1];
        let out = emb.forward(&ids);
        assert_eq!(out.rows(), 3);
        assert_eq!(out.row(0), emb.table.w.row(1));
        assert_eq!(out.row(1), emb.table.w.row(3));
        // Backward: token 1 appears twice, grads must accumulate.
        let dy = Matrix::from_fn(3, 4, |_, _| 1.0);
        emb.backward(&ids, &dy);
        assert_eq!(emb.table.g.row(1), &[2.0, 2.0, 2.0, 2.0]);
        assert_eq!(emb.table.g.row(3), &[1.0, 1.0, 1.0, 1.0]);
        assert_eq!(emb.table.g.row(0), &[0.0; 4]);
    }

    #[test]
    fn layernorm_output_is_normalized() {
        let ln = LayerNorm::new(8);
        let x = Matrix::from_fn(3, 8, |r, c| (r * 8 + c) as f32);
        let (y, _) = ln.forward(&x);
        for r in 0..3 {
            let mean: f32 = y.row(r).iter().sum::<f32>() / 8.0;
            let var: f32 = y.row(r).iter().map(|v| (v - mean).powi(2)).sum::<f32>() / 8.0;
            assert!(mean.abs() < 1e-5);
            assert!((var - 1.0).abs() < 1e-3);
        }
    }

    #[test]
    fn layernorm_gradient_matches_finite_differences() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let mut ln = LayerNorm::new(6);
        // Non-trivial gamma to exercise the full formula.
        ln.gamma.w = Matrix::from_fn(1, 6, |_, c| 0.5 + 0.2 * c as f32);
        let x = Matrix::randn(3, 6, 1.0, &mut rng);
        // Loss: weighted sum, to get non-uniform upstream grads.
        let weight = Matrix::from_fn(3, 6, |r, c| ((r + c) % 3) as f32 - 1.0);
        let (_, cache) = ln.forward(&x);
        let dx = ln.backward(&cache, &weight);
        let ln_eval = ln.clone();
        let loss = |xm: &Matrix| {
            let (y, _) = ln_eval.forward(xm);
            y.frobenius_dot(&weight)
        };
        for (r, c) in [(0, 0), (1, 3), (2, 5)] {
            let eps = 1e-2;
            let mut x2 = x.clone();
            let orig = x2.get(r, c);
            x2.set(r, c, orig + eps);
            let up = loss(&x2);
            x2.set(r, c, orig - eps);
            let down = loss(&x2);
            let num = (up - down) / (2.0 * eps);
            assert!(
                (num - dx.get(r, c)).abs() < 2e-2,
                "dx[{r},{c}] num {num} got {}",
                dx.get(r, c)
            );
        }
    }

    #[test]
    fn dropout_zeroes_and_rescales() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let x = Matrix::from_fn(20, 20, |_, _| 1.0);
        let (out, mask) = dropout_forward(&x, 0.5, &mut rng);
        let zeros = out.data().iter().filter(|v| **v == 0.0).count();
        // Roughly half dropped.
        assert!((120..280).contains(&zeros), "zeros {zeros}");
        // Survivors scaled by 2; expectation preserved.
        for &v in out.data() {
            assert!(v == 0.0 || (v - 2.0).abs() < 1e-6);
        }
        let mean: f32 = out.data().iter().sum::<f32>() / 400.0;
        assert!((mean - 1.0).abs() < 0.3, "mean {mean}");
        // Backward applies the identical mask.
        let dy = Matrix::from_fn(20, 20, |_, _| 1.0);
        let dx = dropout_backward(&mask, &dy);
        assert_eq!(dx.data(), mask.data());
    }

    #[test]
    fn dropout_p_zero_is_identity() {
        let mut rng = ChaCha8Rng::seed_from_u64(10);
        let x = Matrix::from_fn(3, 3, |r, c| (r * 3 + c) as f32);
        let (out, mask) = dropout_forward(&x, 0.0, &mut rng);
        assert_eq!(out.data(), x.data());
        assert!(mask.data().iter().all(|&m| m == 1.0));
    }

    #[test]
    #[should_panic(expected = "dropout p")]
    fn dropout_rejects_p_one() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let _ = dropout_forward(&Matrix::zeros(1, 1), 1.0, &mut rng);
    }

    #[test]
    fn gelu_matches_reference_points() {
        assert!(gelu(0.0).abs() < 1e-6);
        assert!((gelu(1.0) - 0.8412).abs() < 1e-3);
        assert!((gelu(-1.0) + 0.1588).abs() < 1e-3);
        // Large positive ≈ identity; large negative ≈ 0.
        assert!((gelu(10.0) - 10.0).abs() < 1e-3);
        assert!(gelu(-10.0).abs() < 1e-3);
    }

    #[test]
    fn gelu_grad_matches_finite_differences() {
        for x in [-2.0f32, -0.5, 0.0, 0.3, 1.7] {
            let eps = 1e-3;
            let num = (gelu(x + eps) - gelu(x - eps)) / (2.0 * eps);
            assert!((num - gelu_grad(x)).abs() < 1e-3, "at {x}");
        }
    }

    #[test]
    fn softmax_rows_is_a_distribution() {
        let mut x = Matrix::from_vec(2, 3, vec![1., 2., 3., -1., 0.0, 1.0]);
        softmax_rows(&mut x);
        for r in 0..2 {
            let s: f32 = x.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
            assert!(x.row(r).iter().all(|&v| v > 0.0));
        }
        // Monotone in the logits.
        assert!(x.get(0, 2) > x.get(0, 1));
    }

    #[test]
    fn softmax_handles_fully_masked_row() {
        let mut x = Matrix::from_vec(1, 4, vec![f32::NEG_INFINITY; 4]);
        softmax_rows(&mut x);
        for &v in x.row(0) {
            assert!((v - 0.25).abs() < 1e-6);
        }
    }

    #[test]
    fn softmax_backward_matches_finite_differences() {
        let logits = Matrix::from_vec(1, 4, vec![0.5, -1.0, 2.0, 0.0]);
        let upstream = Matrix::from_vec(1, 4, vec![1.0, -2.0, 0.5, 3.0]);
        let mut a = logits.clone();
        softmax_rows(&mut a);
        let ds = softmax_rows_backward(&a, &upstream);
        let loss = |l: &Matrix| {
            let mut s = l.clone();
            softmax_rows(&mut s);
            s.frobenius_dot(&upstream)
        };
        for c in 0..4 {
            let eps = 1e-3;
            let mut l2 = logits.clone();
            l2.set(0, c, logits.get(0, c) + eps);
            let up = loss(&l2);
            l2.set(0, c, logits.get(0, c) - eps);
            let down = loss(&l2);
            let num = (up - down) / (2.0 * eps);
            assert!((num - ds.get(0, c)).abs() < 1e-3, "col {c}");
        }
    }
}

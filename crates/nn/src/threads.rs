//! Process-wide thread budget for the parallel execution layer.
//!
//! KAMEL's compute tiers — matmul kernels, per-cell pyramid training, and
//! batch imputation — all draw worker threads from one process-wide budget
//! so that nested parallelism cannot oversubscribe the host. The budget
//! resolves in priority order:
//!
//! 1. an explicit [`set_thread_budget`] call (e.g. from `KamelConfig`'s
//!    `threads` knob or the CLI's `--threads` flag),
//! 2. the `KAMEL_THREADS` environment variable,
//! 3. [`std::thread::available_parallelism`].
//!
//! The budget only controls *how many* workers run; every parallel code
//! path in this workspace is bit-identical to its sequential counterpart,
//! so the budget never affects results (asserted by the property tests in
//! `crates/nn/tests/properties.rs` and `tests/parallel_determinism.rs`).

use std::sync::atomic::{AtomicUsize, Ordering};

/// Environment variable consulted when no explicit budget has been set.
pub const THREADS_ENV: &str = "KAMEL_THREADS";

/// 0 means "not resolved yet"; any positive value is the active budget.
static BUDGET: AtomicUsize = AtomicUsize::new(0);

/// The number of hardware threads the host reports (at least 1).
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// The active thread budget, resolving and caching the default on first
/// use (see the module docs for the resolution order). Always at least 1.
pub fn thread_budget() -> usize {
    let cached = BUDGET.load(Ordering::Relaxed);
    if cached != 0 {
        return cached;
    }
    let resolved = std::env::var(THREADS_ENV)
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(available_threads);
    BUDGET.store(resolved, Ordering::Relaxed);
    resolved
}

/// Overrides the process-wide thread budget. Values are clamped to at
/// least 1. Safe to call at any time; only execution parallelism changes,
/// never results.
pub fn set_thread_budget(threads: usize) {
    BUDGET.store(threads.max(1), Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_is_positive_and_settable() {
        assert!(thread_budget() >= 1);
        let before = thread_budget();
        set_thread_budget(3);
        assert_eq!(thread_budget(), 3);
        set_thread_budget(0); // clamped
        assert_eq!(thread_budget(), 1);
        set_thread_budget(before);
        assert_eq!(thread_budget(), before);
    }

    #[test]
    fn available_threads_is_positive() {
        assert!(available_threads() >= 1);
    }
}

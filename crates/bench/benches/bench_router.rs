//! Overhead and failover latency of the `kamel-router` gateway.
//!
//! Boots two `kamel-server` shards plus a router on loopback over one
//! trained small model and measures three things against the same request
//! mix:
//!
//! * **direct** — clients hitting one shard, no router (the baseline);
//! * **routed** — the same load through the router (single-owner
//!   forwarding, so the delta over direct is the pure gateway overhead);
//! * **failover** — the primary shard killed mid-run: the first request
//!   pays the detection + ejection cost, the rest run on the replica.
//!
//! Writes `BENCH_router.json` at the repo root. Run with
//! `cargo bench --bench bench_router`. Not a criterion bench: the unit of
//! work is a full HTTP round trip against live servers, so wall-clock
//! over a fixed request count is the honest measure.

use kamel::Kamel;
use kamel_bench::{default_kamel_config, City};
use kamel_geo::Trajectory;
use kamel_roadsim::DatasetScale;
use kamel_router::{HealthPolicy, Router, RouterConfig, ShardInfo, ShardMap};
use kamel_server::{Client, ImputeEngine, Server, ServerConfig};
use serde_json::json;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

const CLIENTS: usize = 8;
const REQUESTS_PER_CLIENT: usize = 50;

fn percentile_us(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

fn drive(addr: SocketAddr, bodies: &Arc<Vec<Vec<u8>>>) -> (f64, Vec<u64>) {
    let t0 = Instant::now();
    let handles: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let bodies = Arc::clone(bodies);
            std::thread::spawn(move || {
                let mut lat = Vec::with_capacity(REQUESTS_PER_CLIENT);
                let mut client = Client::connect(addr, Duration::from_secs(60)).expect("connect");
                for i in 0..REQUESTS_PER_CLIENT {
                    let body = &bodies[(c * REQUESTS_PER_CLIENT + i) % bodies.len()];
                    let r0 = Instant::now();
                    let resp = client.post_json("/v1/impute", body).expect("request");
                    assert_eq!(resp.status, 200, "{}", resp.text());
                    lat.push(r0.elapsed().as_micros() as u64);
                }
                lat
            })
        })
        .collect();
    let mut latencies = Vec::new();
    for h in handles {
        latencies.extend(h.join().expect("client thread"));
    }
    let elapsed = t0.elapsed().as_secs_f64();
    latencies.sort_unstable();
    (elapsed, latencies)
}

fn summarize(elapsed_s: f64, latencies: &[u64]) -> serde_json::Value {
    let total = latencies.len();
    json!({
        "requests": total,
        "elapsed_s": elapsed_s,
        "throughput_rps": total as f64 / elapsed_s,
        "latency_us": {
            "p50": percentile_us(latencies, 0.50),
            "p95": percentile_us(latencies, 0.95),
            "p99": percentile_us(latencies, 0.99),
            "max": latencies.last().copied().unwrap_or(0),
        },
    })
}

fn boot_shard(kamel: &Arc<Kamel>) -> Server {
    let engine = Arc::new(ImputeEngine::new(Arc::clone(kamel)));
    let config = ServerConfig {
        workers: kamel_nn::thread_budget(),
        handlers: CLIENTS * 2,
        cache_entries: 0,
        deadline: Duration::from_secs(60),
        ..ServerConfig::default()
    };
    Server::bind("127.0.0.1:0", engine, config).expect("bind shard")
}

fn fleet_map(addrs: &[SocketAddr]) -> ShardMap {
    // cell_deg 1.0: the whole city is one routing cell, so every request
    // is single-owner — the routed-vs-direct delta is pure gateway cost.
    let shards = addrs
        .iter()
        .enumerate()
        .map(|(i, addr)| ShardInfo {
            id: format!("shard-{i}"),
            addr: *addr,
        })
        .collect();
    ShardMap::new(shards, 1.0).expect("map")
}

fn main() {
    let host = kamel_nn::available_threads();
    let budget = kamel_nn::thread_budget();
    eprintln!("bench_router: host threads = {host}, budget = {budget}");
    let status = if host > 1 {
        "measured"
    } else {
        eprintln!(
            "WARNING: bench_router is running on a single hardware thread; \
             concurrency numbers are NOT representative and the output will \
             carry status \"measured-single-core\"."
        );
        "measured-single-core"
    };
    let dataset = City::Porto.dataset(DatasetScale::Small);
    let kamel = Kamel::new(default_kamel_config().build());
    kamel.train(&dataset.train);
    let kamel = Arc::new(kamel);
    let sparse: Vec<Trajectory> = dataset
        .test
        .iter()
        .take(40)
        .map(|t| t.sparsify(1_000.0))
        .collect();
    let bodies: Arc<Vec<Vec<u8>>> = Arc::new(
        sparse
            .iter()
            .map(|t| serde_json::to_vec(t).expect("serialize request"))
            .collect(),
    );
    eprintln!("model trained; {} distinct request bodies", bodies.len());

    // Baseline: one shard, no router.
    let direct_shard = boot_shard(&kamel);
    let (elapsed, latencies) = drive(direct_shard.local_addr(), &bodies);
    let direct = summarize(elapsed, &latencies);
    let direct_p50 = percentile_us(&latencies, 0.50);
    direct_shard.shutdown();
    eprintln!("direct scenario done");

    // Routed: the same load through the gateway over two shards.
    let (shard_a, shard_b) = (boot_shard(&kamel), boot_shard(&kamel));
    let map = fleet_map(&[shard_a.local_addr(), shard_b.local_addr()]);
    let owner = map.owner_order(map.cell_of(sparse[0].points[0].pos))[0];
    let router = Router::bind(
        "127.0.0.1:0",
        map,
        RouterConfig {
            handlers: CLIENTS * 2,
            timeout: Duration::from_secs(60),
            health: HealthPolicy {
                eject_after: 1,
                probe_interval: Duration::from_secs(600),
            },
            ..RouterConfig::default()
        },
    )
    .expect("bind router");
    assert_eq!(router.core().available_shards(), 2, "fleet admitted");
    let (elapsed, latencies) = drive(router.local_addr(), &bodies);
    let routed = summarize(elapsed, &latencies);
    let routed_p50 = percentile_us(&latencies, 0.50);
    eprintln!("routed scenario done");

    // Failover: kill the primary, then measure. The first request eats
    // detection (connect failure + ejection); the rest run on the replica.
    let mut shards = [Some(shard_a), Some(shard_b)];
    shards[owner].take().unwrap().shutdown();
    let first = {
        let mut c =
            Client::connect(router.local_addr(), Duration::from_secs(60)).expect("connect");
        let t0 = Instant::now();
        let resp = c.post_json("/v1/impute", &bodies[0]).expect("failover request");
        assert_eq!(resp.status, 200, "{}", resp.text());
        t0.elapsed().as_micros() as u64
    };
    let (elapsed, latencies) = drive(router.local_addr(), &bodies);
    let after_failover = summarize(elapsed, &latencies);
    let ejections = router
        .core()
        .metrics()
        .shard(owner)
        .ejections
        .load(std::sync::atomic::Ordering::Relaxed);
    eprintln!("failover scenario done ({ejections} ejection)");
    router.shutdown();
    shards[1 - owner].take().unwrap().shutdown();

    let doc = json!({
        "bench": "bench_router",
        "status": status,
        "host_threads": host,
        "thread_budget": budget,
        "clients": CLIENTS,
        "requests_per_client": REQUESTS_PER_CLIENT,
        "direct": direct,
        "routed": routed,
        "router_overhead_us_p50": routed_p50 as i64 - direct_p50 as i64,
        "failover": {
            "first_request_us": first,
            "ejections": ejections,
            "after": after_failover,
        },
    });
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_router.json");
    std::fs::write(path, serde_json::to_string_pretty(&doc).expect("serialize"))
        .expect("write BENCH_router.json");
    println!("{}", serde_json::to_string_pretty(&doc).expect("serialize"));
    println!("wrote {path}");
}

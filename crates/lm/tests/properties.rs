//! Property-based tests for the language-model engines.

use kamel_lm::{EngineConfig, MaskedTokenModel, NgramConfig, NgramMlm};
use proptest::prelude::*;

/// Strategy: a corpus of random-walk sentences over a small token space.
fn corpus_strategy() -> impl Strategy<Value = Vec<Vec<u64>>> {
    proptest::collection::vec(
        proptest::collection::vec(1u64..40, 3..20),
        1..20,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Predictions are sorted by probability, deduplicated, and sum ≤ 1.
    #[test]
    fn predictions_are_a_ranked_subdistribution(
        corpus in corpus_strategy(),
        ctx in proptest::collection::vec(1u64..40, 3..8),
        pos in 1usize..6,
        top_k in 1usize..12,
    ) {
        prop_assume!(pos < ctx.len() - 1);
        let model = NgramMlm::train(&NgramConfig::default(), &corpus);
        let preds = model.predict_masked(&ctx, pos, top_k);
        prop_assert!(preds.len() <= top_k);
        let total: f64 = preds.iter().map(|c| c.prob).sum();
        prop_assert!(total <= 1.0 + 1e-9, "probability mass {total}");
        for w in preds.windows(2) {
            prop_assert!(w[0].prob >= w[1].prob, "not sorted");
        }
        let mut keys: Vec<u64> = preds.iter().map(|c| c.key).collect();
        keys.sort_unstable();
        keys.dedup();
        prop_assert_eq!(keys.len(), preds.len(), "duplicate candidates");
        for c in &preds {
            prop_assert!(c.prob >= 0.0 && c.prob.is_finite());
        }
    }

    /// Training and prediction are deterministic functions of the corpus.
    #[test]
    fn engine_is_deterministic(corpus in corpus_strategy()) {
        let a = NgramMlm::train(&NgramConfig::default(), &corpus);
        let b = NgramMlm::train(&NgramConfig::default(), &corpus);
        let ctx = [1u64, 2, 3, 4, 5];
        let pa = a.predict_masked(&ctx, 2, 8);
        let pb = b.predict_masked(&ctx, 2, 8);
        prop_assert_eq!(pa.len(), pb.len());
        for (x, y) in pa.iter().zip(&pb) {
            prop_assert_eq!(x.key, y.key);
            prop_assert!((x.prob - y.prob).abs() < 1e-12);
        }
    }

    /// Serde roundtrip preserves predictions exactly for arbitrary corpora.
    #[test]
    fn serde_roundtrip_is_exact(corpus in corpus_strategy()) {
        let model = EngineConfig::Ngram(NgramConfig::default()).train(&corpus);
        let json = serde_json::to_string(&model).expect("serialize");
        let back: kamel_lm::TrainedModel = serde_json::from_str(&json).expect("deserialize");
        let ctx = [3u64, 7, 11];
        let pa = model.predict_masked(&ctx, 1, 10);
        let pb = back.predict_masked(&ctx, 1, 10);
        prop_assert_eq!(pa.len(), pb.len());
        for (x, y) in pa.iter().zip(&pb) {
            prop_assert_eq!(x.key, y.key);
            prop_assert!((x.prob - y.prob).abs() < 1e-12);
        }
    }

    /// Every predicted key appeared somewhere in the training corpus.
    #[test]
    fn predictions_come_from_the_vocabulary(corpus in corpus_strategy()) {
        let model = NgramMlm::train(&NgramConfig::default(), &corpus);
        let seen: std::collections::HashSet<u64> =
            corpus.iter().flatten().copied().collect();
        let ctx = [2u64, 9, 17, 25];
        for c in model.predict_masked(&ctx, 2, 20) {
            prop_assert!(seen.contains(&c.key), "unknown token {}", c.key);
        }
    }

    /// Token volume accounting is exact.
    #[test]
    fn trained_tokens_counts_the_corpus(corpus in corpus_strategy()) {
        let model = NgramMlm::train(&NgramConfig::default(), &corpus);
        let expected: u64 = corpus.iter().map(|s| s.len() as u64).sum();
        prop_assert_eq!(model.trained_tokens(), expected);
        let distinct: std::collections::HashSet<u64> =
            corpus.iter().flatten().copied().collect();
        prop_assert_eq!(model.vocab_len(), distinct.len());
    }
}

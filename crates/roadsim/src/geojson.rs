//! GeoJSON export for visual inspection.
//!
//! Road networks and trajectories serialize to standard GeoJSON
//! `FeatureCollection`s (RFC 7946: coordinates are `[lng, lat]`), viewable
//! in QGIS, geojson.io, or Kepler — the practical way to eyeball a
//! simulated city or an imputation result.

use crate::network::RoadNetwork;
use kamel_geo::{LocalProjection, Trajectory};
use serde_json::{json, Value};

/// Renders a road network as a GeoJSON `FeatureCollection` of `LineString`
/// features (one per edge), using `proj` to convert planar nodes back to
/// geodetic coordinates.
pub fn network_to_geojson(network: &RoadNetwork, proj: &LocalProjection) -> Value {
    let features: Vec<Value> = network
        .edges()
        .map(|(a, b)| {
            let pa = proj.to_latlng(network.node(a));
            let pb = proj.to_latlng(network.node(b));
            json!({
                "type": "Feature",
                "properties": { "from": a, "to": b },
                "geometry": {
                    "type": "LineString",
                    "coordinates": [[pa.lng, pa.lat], [pb.lng, pb.lat]],
                }
            })
        })
        .collect();
    json!({ "type": "FeatureCollection", "features": features })
}

/// Renders trajectories as a GeoJSON `FeatureCollection` of `LineString`
/// features with start/end timestamps in the properties. Single-fix
/// trajectories become `Point` features.
pub fn trajectories_to_geojson(trajectories: &[Trajectory]) -> Value {
    let features: Vec<Value> = trajectories
        .iter()
        .enumerate()
        .filter(|(_, t)| !t.is_empty())
        .map(|(id, t)| {
            let coords: Vec<Value> =
                t.points.iter().map(|p| json!([p.pos.lng, p.pos.lat])).collect();
            let geometry = if coords.len() == 1 {
                json!({ "type": "Point", "coordinates": coords[0] })
            } else {
                json!({ "type": "LineString", "coordinates": coords })
            };
            json!({
                "type": "Feature",
                "properties": {
                    "traj_id": id,
                    "points": t.len(),
                    "t_start": t.points[0].t,
                    "t_end": t.points[t.len() - 1].t,
                },
                "geometry": geometry,
            })
        })
        .collect();
    json!({ "type": "FeatureCollection", "features": features })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::citygen::{generate_city, CityConfig};
    use kamel_geo::{GpsPoint, LatLng};

    #[test]
    fn network_geojson_structure() {
        let net = generate_city(&CityConfig {
            cols: 4,
            rows: 4,
            roundabouts: 0,
            ring_road: false,
            overpass: false,
            diagonals: 0,
            ..CityConfig::default()
        });
        let proj = LocalProjection::new(LatLng::new(41.15, -8.61));
        let doc = network_to_geojson(&net, &proj);
        assert_eq!(doc["type"], "FeatureCollection");
        let features = doc["features"].as_array().expect("features array");
        assert_eq!(features.len(), net.edge_count());
        let geom = &features[0]["geometry"];
        assert_eq!(geom["type"], "LineString");
        // RFC 7946 coordinate order: [lng, lat].
        let first = geom["coordinates"][0].as_array().unwrap();
        let lng = first[0].as_f64().unwrap();
        let lat = first[1].as_f64().unwrap();
        assert!((-9.0..-8.0).contains(&lng), "lng {lng}");
        assert!((41.0..42.0).contains(&lat), "lat {lat}");
    }

    #[test]
    fn trajectory_geojson_structure() {
        let trajs = vec![
            Trajectory::new(vec![
                GpsPoint::from_parts(41.15, -8.61, 0.0),
                GpsPoint::from_parts(41.16, -8.60, 60.0),
            ]),
            Trajectory::new(vec![GpsPoint::from_parts(41.2, -8.5, 5.0)]),
            Trajectory::default(), // dropped
        ];
        let doc = trajectories_to_geojson(&trajs);
        let features = doc["features"].as_array().unwrap();
        assert_eq!(features.len(), 2);
        assert_eq!(features[0]["geometry"]["type"], "LineString");
        assert_eq!(features[0]["properties"]["points"], 2);
        assert_eq!(features[0]["properties"]["t_end"], 60.0);
        assert_eq!(features[1]["geometry"]["type"], "Point");
    }
}

//! SIMD-reproducible transcendental kernels.
//!
//! `exp_f32` and `tanh_f32` replace libm's `exp`/`tanh` on the hot
//! inference paths (softmax, GELU). Unlike libm — whose result bits may
//! differ between a scalar call and any vectorized re-implementation —
//! these are fixed operation sequences built **only from IEEE-exact
//! primitives**: `mul`, `add`, `sub`, `div`, `floor`, comparisons, and
//! integer bit manipulation. Each of those rounds identically per lane in
//! a vector register, so a SIMD backend that replays the same sequence
//! (see `simd::avx2::exp_ps`) produces bit-identical results without
//! giving up lane parallelism.
//!
//! The polynomial is the classic Cephes `expf` kernel (as popularized by
//! the `sse_mathfun` vector math routines): range-reduce by powers of two
//! with a two-step Cody–Waite subtraction, evaluate a degree-5 polynomial
//! in Horner form with separate multiply and add (no FMA — the scalar
//! sequence rounds twice per step, and every backend must match), and
//! scale by `2^n` through exponent-field bit assembly. Relative error is
//! ≲ 2 ulp over the full reduced range — far below anything the model
//! quality metrics can resolve — and `tanh` inherits it through an exact
//! division.

/// Inputs below this produce 0 from [`exp_f32`] (the scale step would
/// need a biased exponent < 0). `exp(-87.3) ≈ 1.2e-38` is already at the
/// edge of normal `f32` range, so the clamp loses nothing that survives a
/// downstream sum.
pub const EXP_LO: f32 = -87.336_54;

/// Inputs above this clamp so the `2^n` scale stays finite: at 88 the
/// reduction gives `n = 127` with half an ulp of slack against rounding
/// up to 128 (which would assemble an infinite scale). `exp(88) ≈
/// 1.65e38` is still within `f32` range.
pub const EXP_HI: f32 = 88.0;

const LOG2E: f32 = std::f32::consts::LOG2_E;
/// Cody–Waite split of ln 2: `LN2_HI` has a short mantissa so
/// `fx * LN2_HI` is near-exact; `LN2_LO` sweeps up the remainder. The
/// full digits are the point — `0.693359375` is exactly representable.
#[allow(clippy::excessive_precision)]
pub(crate) const LN2_HI: f32 = 0.693_359_375;
pub(crate) const LN2_LO: f32 = -2.121_944_4e-4;

/// Degree-5 polynomial for `exp(r) - 1 - r` on `r ∈ [-ln2/2, ln2/2]`
/// (Cephes `expf` coefficients, Horner order fixed by this array order).
#[allow(clippy::excessive_precision)]
pub(crate) const EXP_POLY: [f32; 6] = [
    1.987_569_2e-4,
    1.398_199_9e-3,
    8.333_452e-3,
    4.166_579_6e-2,
    1.666_666_5e-1,
    5.000_000_1e-1,
];

/// `max` with the x86 `maxps` / NEON `fmax` operand convention: returns
/// `b` unless `a > b`. The vector backends use the hardware instruction
/// directly; the scalar reference must match its NaN/±0 behavior, which
/// `f32::max` does not.
#[inline]
pub fn vmax(a: f32, b: f32) -> f32 {
    if a > b {
        a
    } else {
        b
    }
}

/// `min` with the x86 `minps` operand convention (see [`vmax`]).
#[inline]
pub fn vmin(a: f32, b: f32) -> f32 {
    if a < b {
        a
    } else {
        b
    }
}

/// `e^x` as the canonical SIMD-reproducible operation sequence.
///
/// Every backend's vectorized exponential must replay exactly these
/// operations in this order; `simd::avx2::exp_ps` is the 8-lane replica
/// and the bit-identity proptests compare them across the full input
/// range.
#[inline]
pub fn exp_f32(x: f32) -> f32 {
    let x = vmin(vmax(x, EXP_LO), EXP_HI);
    // n = round(x / ln 2), computed as floor(x·log2e + ½).
    let fx = (x * LOG2E + 0.5).floor();
    // r = x - n·ln 2, in two exact-ish steps (Cody–Waite).
    let r = x - fx * LN2_HI;
    let r = r - fx * LN2_LO;
    let z = r * r;
    let mut y = EXP_POLY[0];
    y = y * r + EXP_POLY[1];
    y = y * r + EXP_POLY[2];
    y = y * r + EXP_POLY[3];
    y = y * r + EXP_POLY[4];
    y = y * r + EXP_POLY[5];
    y = y * z + r;
    y += 1.0;
    // 2^n via exponent-field assembly: exact for -127 ≤ n ≤ 127, which
    // the input clamp guarantees.
    let n = fx as i32;
    let pow2n = f32::from_bits(((n + 127) as u32) << 23);
    y * pow2n
}

/// `tanh(x)` via `(e^{2x} - 1) / (e^{2x} + 1)` with an exact division, so
/// it is SIMD-reproducible wherever [`exp_f32`] is. Saturates (within one
/// ulp of ±1) for |x| ≥ 9.
#[inline]
pub fn tanh_f32(x: f32) -> f32 {
    let x = vmin(vmax(x, -9.0), 9.0);
    let e = exp_f32(x + x);
    (e - 1.0) / (e + 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exp_tracks_libm_to_single_precision() {
        let mut worst = 0.0f64;
        for i in -8000..=8000 {
            let x = i as f32 * 0.01; // [-80, 80]
            let got = exp_f32(x) as f64;
            let want = (x as f64).exp();
            let rel = ((got - want) / want).abs();
            worst = worst.max(rel);
        }
        assert!(worst < 3e-7, "worst relative error {worst}");
    }

    #[test]
    fn exp_edge_behavior() {
        assert_eq!(exp_f32(0.0), 1.0);
        assert_eq!(exp_f32(f32::NEG_INFINITY), exp_f32(EXP_LO));
        assert!(exp_f32(-200.0) >= 0.0);
        assert!(exp_f32(-200.0) < 1.3e-38);
        assert!(exp_f32(1000.0).is_finite(), "clamped, never overflows");
        assert!(exp_f32(EXP_HI) > 1.2e38);
    }

    #[test]
    fn tanh_tracks_libm_and_saturates() {
        let mut worst = 0.0f64;
        for i in -900..=900 {
            let x = i as f32 * 0.01;
            let got = tanh_f32(x) as f64;
            let want = (x as f64).tanh();
            worst = worst.max((got - want).abs());
        }
        assert!(worst < 3e-7, "worst absolute error {worst}");
        assert_eq!(tanh_f32(0.0), 0.0);
        assert!((tanh_f32(50.0) - 1.0).abs() < 1e-6);
        assert!((tanh_f32(-50.0) + 1.0).abs() < 1e-6);
    }

    #[test]
    fn vmin_vmax_follow_hardware_convention() {
        // Returns the second operand on NaN — the `maxps` convention the
        // vector backends inherit from the hardware.
        assert_eq!(vmax(f32::NAN, -9.0), -9.0);
        assert_eq!(vmin(f32::NAN, 9.0), 9.0);
        assert_eq!(vmax(1.0, 2.0), 2.0);
        assert_eq!(vmin(1.0, 2.0), 1.0);
    }
}

//! System configuration with the paper's default parameters (§8).

use crate::error::KamelError;
use kamel_lm::EngineConfig;
use serde::{Deserialize, Serialize};

/// Which tessellation the Tokenization module uses (§3.1 vs §8.5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum GridKind {
    /// Uber-H3-style flat hexagons (the paper's choice).
    #[default]
    Hex,
    /// Google-S2-style squares (the §8.5 comparison).
    Square,
}

/// How the Multipoint Imputation module fills a gap (§6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum MultipointStrategy {
    /// Bidirectional beam search (§6.2) — the paper's default.
    #[default]
    Beam,
    /// Greedy iterative calling (§6.1).
    Iterative,
    /// Call the model exactly once per gap — the "No Multi." ablation
    /// variant of §8.7.
    Single,
}

/// How the §5.1 speed-constraint cap is chosen per gap.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum SpeedMode {
    /// One fixed cap inferred from the training data (the paper's current
    /// choice: "KAMEL currently uses a fixed speed inferred from its
    /// training trajectory data").
    #[default]
    FixedFromTraining,
    /// The paper's stated alternative: "consider the speed of the preceding
    /// imputed segment multiplied by a conservative factor". The cap for a
    /// gap becomes `observed speed of the preceding sparse segment ×
    /// factor`, falling back to (and never exceeding) the trained cap.
    AdaptivePreceding {
        /// Conservative multiplier on the preceding segment's speed.
        factor: f64,
    },
}

/// Detokenization clustering parameters (§7).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DetokConfig {
    /// DBSCAN neighborhood: spatial scale in meters.
    pub eps_xy_m: f64,
    /// DBSCAN neighborhood: heading scale in degrees.
    pub eps_heading_deg: f64,
    /// DBSCAN core-point minimum neighborhood size.
    pub min_pts: usize,
}

impl Default for DetokConfig {
    fn default() -> Self {
        Self {
            eps_xy_m: 25.0,
            eps_heading_deg: 30.0,
            min_pts: 4,
        }
    }
}

/// Full KAMEL configuration. Defaults follow §8 ("Default values and
/// parameter tuning") except where the paper's value assumes city-scale
/// datasets; those keep the same meaning at simulator scale and are
/// documented per field.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KamelConfig {
    /// Tessellation kind.
    pub grid: GridKind,
    /// Grid cell edge length `H` in meters (paper default 75 m; §3.2 studies
    /// 25–200 m).
    pub cell_edge_m: f64,
    /// Maximum allowed distance between consecutive output tokens,
    /// `max_gap`, in meters (paper default 100 m).
    pub max_gap_m: f64,
    /// Beam width `B` for bidirectional beam search (paper default 10).
    pub beam_size: usize,
    /// Length-normalization strength α in `P × |S|^α` (paper default 1).
    pub length_norm_alpha: f64,
    /// Multipoint strategy.
    pub multipoint: MultipointStrategy,
    /// Candidates requested from the model per call (top-k).
    pub top_k: usize,
    /// Hard limit on model calls per gap; when exceeded the segment is
    /// imputed by a straight line and counted as a failure (§6).
    pub max_model_calls: usize,
    /// Direction-constraint cone in degrees (paper default 45°).
    pub direction_cone_deg: f64,
    /// Maximum repeated-sequence length checked by cycle prevention
    /// (paper default x = 6).
    pub cycle_window: usize,
    /// Slack multiplier applied to the speed inferred from training data
    /// when building the §5.1 ellipse.
    pub speed_slack: f64,
    /// Per-gap speed-cap policy (§5.1).
    pub speed_mode: SpeedMode,
    /// Pyramid height `H`: number of levels, root = level 0 (paper uses 10
    /// over the whole world; at simulator scale 4–5 over the dataset area
    /// gives the same leaf-cell granularity relative to the data).
    pub pyramid_height: usize,
    /// Number of lowest pyramid levels maintained, `L` (paper default 3).
    pub pyramid_maintained: usize,
    /// Model threshold base `k`: a cell at level `l` earns a model once it
    /// holds `k × 4^(leaf−l)` tokens (paper default 20 K; scaled down with
    /// the simulated data volume).
    pub model_threshold_k: u64,
    /// Language-model engine trained per pyramid cell.
    pub engine: EngineConfig,
    /// Detokenization clustering parameters.
    pub detok: DetokConfig,
    /// Ablation switch (§8.7 "No Part."): train a single global model.
    pub disable_partitioning: bool,
    /// Ablation switch (§8.7 "No Const."): accept every model prediction.
    pub disable_constraints: bool,
    /// Process-wide worker-thread budget for the parallel execution layer
    /// (matmul kernels, per-cell maintenance, batch imputation). `None`
    /// resolves via the `KAMEL_THREADS` env var, then
    /// `available_parallelism()`. Only execution speed changes — every
    /// parallel path is bit-identical to its sequential counterpart.
    #[serde(default)]
    pub threads: Option<usize>,
    /// Serve BERT models through the int8 weight-quantized path. Enabling
    /// is gated: quantization only activates when every BERT model's
    /// top-1 agreement with its f32 twin stays at or above
    /// [`KamelConfig::quantize_min_agreement`]; otherwise enabling fails
    /// and the f32 path keeps serving. The int8 weights are derived state,
    /// rebuilt (and re-gated) whenever a model loads from disk.
    #[serde(default)]
    pub quantize: bool,
    /// Accuracy gate for [`KamelConfig::quantize`]: minimum acceptable
    /// top-1 agreement (f32 vs int8) over seeded probes, in [0, 1].
    #[serde(default = "default_quantize_min_agreement")]
    pub quantize_min_agreement: f64,
    /// Byte budget for the store-backed resident model set (`kamel serve
    /// --store --model-memory-budget`). `None` (the default) means
    /// unbounded residency. Heap-resident systems ignore it.
    #[serde(default)]
    pub model_memory_budget: Option<u64>,
}

/// Serde default for [`KamelConfig::quantize_min_agreement`].
fn default_quantize_min_agreement() -> f64 {
    0.98
}

impl Default for KamelConfig {
    fn default() -> Self {
        Self {
            grid: GridKind::Hex,
            cell_edge_m: 75.0,
            max_gap_m: 100.0,
            beam_size: 10,
            length_norm_alpha: 1.0,
            multipoint: MultipointStrategy::Beam,
            top_k: 10,
            max_model_calls: 1_500,
            direction_cone_deg: 45.0,
            cycle_window: 6,
            speed_slack: 1.5,
            speed_mode: SpeedMode::default(),
            pyramid_height: 4,
            pyramid_maintained: 3,
            model_threshold_k: 3_000,
            engine: EngineConfig::default(),
            detok: DetokConfig::default(),
            disable_partitioning: false,
            disable_constraints: false,
            threads: None,
            quantize: false,
            quantize_min_agreement: default_quantize_min_agreement(),
            model_memory_budget: None,
        }
    }
}

impl KamelConfig {
    /// Starts a builder with the defaults.
    pub fn builder() -> KamelConfigBuilder {
        KamelConfigBuilder::default()
    }

    /// Validates parameter interactions.
    pub fn validate(&self) -> Result<(), KamelError> {
        let fail = |msg: &str| Err(KamelError::InvalidConfig(msg.to_string()));
        if !(self.cell_edge_m.is_finite() && self.cell_edge_m > 0.0) {
            return fail("cell_edge_m must be positive");
        }
        if !(self.max_gap_m.is_finite() && self.max_gap_m > 0.0) {
            return fail("max_gap_m must be positive");
        }
        if self.beam_size == 0 {
            return fail("beam_size must be at least 1");
        }
        if self.top_k == 0 {
            return fail("top_k must be at least 1");
        }
        if self.max_model_calls == 0 {
            return fail("max_model_calls must be at least 1");
        }
        if !(0.0..=1.0).contains(&self.length_norm_alpha) {
            return fail("length_norm_alpha must be in [0, 1]");
        }
        if self.pyramid_height == 0 {
            return fail("pyramid_height must be at least 1");
        }
        if self.pyramid_maintained == 0 || self.pyramid_maintained > self.pyramid_height {
            return fail("pyramid_maintained must be in [1, pyramid_height]");
        }
        if self.model_threshold_k == 0 {
            return fail("model_threshold_k must be positive");
        }
        if self.speed_slack < 1.0 {
            return fail("speed_slack must be at least 1.0");
        }
        if let SpeedMode::AdaptivePreceding { factor } = self.speed_mode {
            if !(factor.is_finite() && factor >= 1.0) {
                return fail("adaptive speed factor must be at least 1.0");
            }
        }
        if self.threads == Some(0) {
            return fail("threads must be at least 1 when set");
        }
        if !(0.0..=1.0).contains(&self.quantize_min_agreement)
            || !self.quantize_min_agreement.is_finite()
        {
            return fail("quantize_min_agreement must be in [0, 1]");
        }
        if self.model_memory_budget == Some(0) {
            return fail("model_memory_budget must be positive when set");
        }
        Ok(())
    }

    /// The worker-thread count this configuration resolves to: the explicit
    /// [`KamelConfig::threads`] knob when set, otherwise the process-wide
    /// budget (env var or hardware parallelism).
    pub fn effective_threads(&self) -> usize {
        self.threads
            .unwrap_or_else(kamel_nn::thread_budget)
            .max(1)
    }
}

/// Fluent builder for [`KamelConfig`].
#[derive(Debug, Clone, Default)]
pub struct KamelConfigBuilder {
    config: KamelConfig,
}

macro_rules! builder_setters {
    ($($(#[$doc:meta])* $name:ident: $ty:ty),* $(,)?) => {
        $(
            $(#[$doc])*
            pub fn $name(mut self, value: $ty) -> Self {
                self.config.$name = value;
                self
            }
        )*
    };
}

impl KamelConfigBuilder {
    builder_setters! {
        /// Sets the tessellation kind.
        grid: GridKind,
        /// Sets the grid cell edge length in meters.
        cell_edge_m: f64,
        /// Sets `max_gap` in meters.
        max_gap_m: f64,
        /// Sets the beam width.
        beam_size: usize,
        /// Sets the length-normalization strength α.
        length_norm_alpha: f64,
        /// Sets the multipoint strategy.
        multipoint: MultipointStrategy,
        /// Sets the per-call candidate count.
        top_k: usize,
        /// Sets the per-gap model call budget.
        max_model_calls: usize,
        /// Sets the direction cone in degrees.
        direction_cone_deg: f64,
        /// Sets the cycle window x.
        cycle_window: usize,
        /// Sets the speed slack multiplier.
        speed_slack: f64,
        /// Sets the per-gap speed-cap policy.
        speed_mode: SpeedMode,
        /// Sets the pyramid height H.
        pyramid_height: usize,
        /// Sets the maintained level count L.
        pyramid_maintained: usize,
        /// Sets the model threshold base k.
        model_threshold_k: u64,
        /// Sets the language-model engine.
        engine: EngineConfig,
        /// Sets the detokenization clustering parameters.
        detok: DetokConfig,
        /// Enables the "No Part." ablation.
        disable_partitioning: bool,
        /// Enables the "No Const." ablation.
        disable_constraints: bool,
        /// Sets the worker-thread budget (`None` = auto).
        threads: Option<usize>,
        /// Enables the gated int8 weight-quantized serving path.
        quantize: bool,
        /// Sets the minimum f32-vs-int8 top-1 agreement for the gate.
        quantize_min_agreement: f64,
        /// Sets the resident-model byte budget (`None` = unbounded).
        model_memory_budget: Option<u64>,
    }

    /// Finishes the builder.
    ///
    /// # Panics
    /// Panics on invalid parameter combinations; use
    /// [`KamelConfigBuilder::try_build`] for a fallible version.
    pub fn build(self) -> KamelConfig {
        self.try_build().expect("invalid KAMEL configuration")
    }

    /// Finishes the builder, returning configuration errors.
    pub fn try_build(self) -> Result<KamelConfig, KamelError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let c = KamelConfig::default();
        assert_eq!(c.cell_edge_m, 75.0);
        assert_eq!(c.max_gap_m, 100.0);
        assert_eq!(c.beam_size, 10);
        assert_eq!(c.direction_cone_deg, 45.0);
        assert_eq!(c.cycle_window, 6);
        assert_eq!(c.pyramid_maintained, 3);
        assert_eq!(c.length_norm_alpha, 1.0);
        assert_eq!(c.grid, GridKind::Hex);
        assert_eq!(c.multipoint, MultipointStrategy::Beam);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn builder_overrides_fields() {
        let c = KamelConfig::builder()
            .cell_edge_m(50.0)
            .beam_size(4)
            .multipoint(MultipointStrategy::Iterative)
            .disable_constraints(true)
            .build();
        assert_eq!(c.cell_edge_m, 50.0);
        assert_eq!(c.beam_size, 4);
        assert_eq!(c.multipoint, MultipointStrategy::Iterative);
        assert!(c.disable_constraints);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        assert!(KamelConfig::builder().cell_edge_m(0.0).try_build().is_err());
        assert!(KamelConfig::builder().beam_size(0).try_build().is_err());
        assert!(KamelConfig::builder()
            .pyramid_maintained(9)
            .pyramid_height(4)
            .try_build()
            .is_err());
        assert!(KamelConfig::builder()
            .length_norm_alpha(1.5)
            .try_build()
            .is_err());
        assert!(KamelConfig::builder().speed_slack(0.5).try_build().is_err());
    }

    #[test]
    #[should_panic(expected = "invalid KAMEL configuration")]
    fn build_panics_on_invalid() {
        let _ = KamelConfig::builder().top_k(0).build();
    }

    #[test]
    fn config_roundtrips_through_serde() {
        let config = KamelConfig::builder()
            .cell_edge_m(50.0)
            .grid(GridKind::Square)
            .multipoint(MultipointStrategy::Iterative)
            .speed_mode(crate::config::SpeedMode::AdaptivePreceding { factor: 2.0 })
            .disable_partitioning(true)
            .build();
        let json = serde_json::to_string(&config).expect("serialize");
        let back: KamelConfig = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back.cell_edge_m, 50.0);
        assert_eq!(back.grid, GridKind::Square);
        assert_eq!(back.multipoint, MultipointStrategy::Iterative);
        assert!(back.disable_partitioning);
        assert!(matches!(
            back.speed_mode,
            crate::config::SpeedMode::AdaptivePreceding { factor } if factor == 2.0
        ));
        assert!(back.validate().is_ok());
    }

    #[test]
    fn threads_knob_validates_and_resolves() {
        assert!(KamelConfig::builder().threads(Some(0)).try_build().is_err());
        let c = KamelConfig::builder().threads(Some(3)).build();
        assert_eq!(c.effective_threads(), 3);
        // None resolves to the process-wide budget (always ≥ 1).
        assert!(KamelConfig::default().effective_threads() >= 1);
        // Configs persisted before the knob existed still deserialize.
        let mut v: serde_json::Value =
            serde_json::to_value(KamelConfig::default()).expect("serialize");
        v.as_object_mut().unwrap().remove("threads");
        let back: KamelConfig = serde_json::from_value(v).expect("deserialize");
        assert_eq!(back.threads, None);
    }

    #[test]
    fn quantize_knob_validates_and_defaults() {
        let c = KamelConfig::default();
        assert!(!c.quantize);
        assert_eq!(c.quantize_min_agreement, 0.98);
        assert!(KamelConfig::builder()
            .quantize_min_agreement(1.5)
            .try_build()
            .is_err());
        assert!(KamelConfig::builder()
            .quantize_min_agreement(f64::NAN)
            .try_build()
            .is_err());
        let c = KamelConfig::builder()
            .quantize(true)
            .quantize_min_agreement(0.9)
            .build();
        assert!(c.quantize);
        // Configs persisted before the knobs existed still deserialize.
        let mut v: serde_json::Value =
            serde_json::to_value(KamelConfig::default()).expect("serialize");
        let obj = v.as_object_mut().unwrap();
        obj.remove("quantize");
        obj.remove("quantize_min_agreement");
        let back: KamelConfig = serde_json::from_value(v).expect("deserialize");
        assert!(!back.quantize);
        assert_eq!(back.quantize_min_agreement, 0.98);
    }

    #[test]
    fn adaptive_speed_factor_validation() {
        use crate::config::SpeedMode;
        assert!(KamelConfig::builder()
            .speed_mode(SpeedMode::AdaptivePreceding { factor: 0.5 })
            .try_build()
            .is_err());
        assert!(KamelConfig::builder()
            .speed_mode(SpeedMode::AdaptivePreceding { factor: f64::NAN })
            .try_build()
            .is_err());
        assert!(KamelConfig::builder()
            .speed_mode(SpeedMode::AdaptivePreceding { factor: 1.5 })
            .try_build()
            .is_ok());
    }
}

//! Minimal HTTP/1.1 framing over `std::io` streams.
//!
//! Supports exactly what the imputation service needs: request-line +
//! headers + `Content-Length` bodies, keep-alive connections, and plain
//! (non-chunked) responses. No external dependencies — the build
//! environment has no crates registry, so the wire protocol is hand-rolled
//! on `std` and covered by unit tests against in-memory streams.

use std::io::{BufRead, Write};
use std::time::Duration;

/// Hard cap on the request head (request line + headers).
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Hard cap on a request body.
pub const MAX_BODY_BYTES: usize = 16 * 1024 * 1024;

/// The request header carrying the caller's remaining time budget in
/// whole milliseconds. Stamped by clients and re-stamped (with the
/// *remaining* budget) by the router on every forward.
pub const DEADLINE_HEADER: &str = "x-kamel-deadline-ms";

/// The response header marking a degraded (linear-interpolation) answer;
/// its value is the reason the fleet downgraded.
pub const DEGRADED_HEADER: &str = "x-kamel-degraded";

/// Largest accepted deadline budget (1 hour). Anything above it is a
/// client bug, not a plan — treated like any other unparseable value.
pub const MAX_DEADLINE_MS: u64 = 3_600_000;

/// Outcome of parsing an [`DEADLINE_HEADER`] value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeadlineHeader {
    /// No header: use the server's default budget.
    Absent,
    /// A valid budget in `1..=MAX_DEADLINE_MS` milliseconds.
    Budget(Duration),
    /// Present but unusable (empty, zero, negative, non-numeric, or
    /// absurdly large). The caller falls back to the default budget —
    /// never to a 0ms insta-504 — and logs the carried reason once.
    Invalid(&'static str),
}

impl DeadlineHeader {
    /// The budget to use, with `default` covering absent/invalid values.
    pub fn budget_or(self, default: Duration) -> Duration {
        match self {
            DeadlineHeader::Budget(d) => d,
            DeadlineHeader::Absent | DeadlineHeader::Invalid(_) => default,
        }
    }
}

/// Parses an `x-kamel-deadline-ms` value. Total: every possible string
/// maps to one of the three variants; nothing panics and nothing yields a
/// zero budget.
pub fn parse_deadline_header(value: Option<&str>) -> DeadlineHeader {
    let Some(raw) = value else {
        return DeadlineHeader::Absent;
    };
    let raw = raw.trim();
    if raw.is_empty() {
        return DeadlineHeader::Invalid("empty deadline");
    }
    if raw.starts_with('-') {
        return DeadlineHeader::Invalid("negative deadline");
    }
    let Ok(ms) = raw.parse::<u64>() else {
        return DeadlineHeader::Invalid("non-numeric deadline");
    };
    if ms == 0 {
        return DeadlineHeader::Invalid("zero deadline");
    }
    if ms > MAX_DEADLINE_MS {
        return DeadlineHeader::Invalid("deadline beyond the 1h cap");
    }
    DeadlineHeader::Budget(Duration::from_millis(ms))
}

/// A parsed HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method, uppercased by the client (`GET`, `POST`, …).
    pub method: String,
    /// Request target path (with query string, if any).
    pub path: String,
    /// Header `(name, value)` pairs; names lowercased.
    pub headers: Vec<(String, String)>,
    /// The request body (empty unless `Content-Length` was present).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of header `name` (lowercase), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// True when the client asked to close the connection after this
    /// exchange (HTTP/1.1 defaults to keep-alive).
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// Why a request could not be read.
#[derive(Debug, PartialEq, Eq)]
pub enum ReadError {
    /// The peer closed the connection before sending a request line —
    /// the normal end of a keep-alive connection, not an error to report.
    ConnectionClosed,
    /// The socket read timed out with no request bytes pending — an idle
    /// keep-alive connection. The caller should poll its shutdown flag and
    /// try again.
    Idle,
    /// The request violated the protocol or a size cap; the response
    /// status and message to answer with before closing.
    Bad(u16, String),
    /// The underlying transport failed mid-request.
    Io(String),
}

/// Reads one request from `stream`. Blocks until a full request arrives,
/// the peer closes, or the stream errors (honouring any read timeout set
/// on the underlying socket).
pub fn read_request(stream: &mut impl BufRead) -> Result<Request, ReadError> {
    let mut line = Vec::with_capacity(256);
    read_line_crlf(stream, &mut line, true)?;
    let request_line = String::from_utf8(line)
        .map_err(|_| ReadError::Bad(400, "request line is not UTF-8".into()))?;
    let mut parts = request_line.split_ascii_whitespace();
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) => (m, p, v),
        _ => {
            return Err(ReadError::Bad(
                400,
                format!("malformed request line `{request_line}`"),
            ))
        }
    };
    if !version.starts_with("HTTP/1.") {
        return Err(ReadError::Bad(505, format!("unsupported version {version}")));
    }
    let mut headers = Vec::with_capacity(8);
    let mut head_bytes = request_line.len();
    loop {
        let mut line = Vec::with_capacity(64);
        read_line_crlf(stream, &mut line, false)?;
        if line.is_empty() {
            break;
        }
        head_bytes += line.len();
        if head_bytes > MAX_HEAD_BYTES {
            return Err(ReadError::Bad(431, "request head too large".into()));
        }
        let text = String::from_utf8(line)
            .map_err(|_| ReadError::Bad(400, "header is not UTF-8".into()))?;
        let Some((name, value)) = text.split_once(':') else {
            return Err(ReadError::Bad(400, format!("malformed header `{text}`")));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    let mut request = Request {
        method: method.to_string(),
        path: path.to_string(),
        headers,
        body: Vec::new(),
    };
    if let Some(len) = request.header("content-length") {
        let len: usize = len
            .parse()
            .map_err(|_| ReadError::Bad(400, format!("bad content-length `{len}`")))?;
        if len > MAX_BODY_BYTES {
            return Err(ReadError::Bad(413, "request body too large".into()));
        }
        let mut body = vec![0u8; len];
        stream
            .read_exact(&mut body)
            .map_err(|e| ReadError::Io(format!("reading body: {e}")))?;
        request.body = body;
    } else if request.header("transfer-encoding").is_some() {
        return Err(ReadError::Bad(501, "chunked bodies are not supported".into()));
    }
    Ok(request)
}

/// Reads one CRLF- (or bare-LF-) terminated line, excluding the
/// terminator. `at_start` distinguishes a clean connection close (no bytes
/// at all before EOF) from a truncated request.
fn read_line_crlf(
    stream: &mut impl BufRead,
    line: &mut Vec<u8>,
    at_start: bool,
) -> Result<(), ReadError> {
    loop {
        let mut byte = [0u8; 1];
        match stream.read(&mut byte) {
            Ok(0) => {
                return if at_start && line.is_empty() {
                    Err(ReadError::ConnectionClosed)
                } else {
                    Err(ReadError::Io("connection closed mid-request".into()))
                };
            }
            Ok(_) => {
                if byte[0] == b'\n' {
                    if line.last() == Some(&b'\r') {
                        line.pop();
                    }
                    return Ok(());
                }
                line.push(byte[0]);
                if line.len() > MAX_HEAD_BYTES {
                    return Err(ReadError::Bad(431, "request line too long".into()));
                }
            }
            Err(e) => {
                let timed_out = matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                );
                return if timed_out && at_start && line.is_empty() {
                    Err(ReadError::Idle)
                } else {
                    Err(ReadError::Io(e.to_string()))
                };
            }
        }
    }
}

/// An HTTP response under construction.
pub struct Response {
    /// Status code (200, 503, …).
    pub status: u16,
    /// Extra headers beyond `Content-Length`/`Content-Type`/`Connection`.
    pub headers: Vec<(String, String)>,
    /// The body bytes.
    pub body: Vec<u8>,
    /// `Content-Type` of the body.
    pub content_type: &'static str,
}

impl Response {
    /// A response with the given status and plain-text body.
    pub fn text(status: u16, body: impl Into<String>) -> Self {
        Self {
            status,
            headers: Vec::new(),
            body: body.into().into_bytes(),
            content_type: "text/plain; charset=utf-8",
        }
    }

    /// A 200 response with a JSON body.
    pub fn json(body: Vec<u8>) -> Self {
        Self {
            status: 200,
            headers: Vec::new(),
            body,
            content_type: "application/json",
        }
    }

    /// Adds a header.
    pub fn with_header(mut self, name: &str, value: impl Into<String>) -> Self {
        self.headers.push((name.to_string(), value.into()));
        self
    }

    /// Serializes and writes the response. `close` controls the
    /// `Connection` header (and must match what the caller then does with
    /// the socket).
    pub fn write_to(&self, stream: &mut impl Write, close: bool) -> std::io::Result<()> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: {}\r\n",
            self.status,
            status_text(self.status),
            self.content_type,
            self.body.len(),
            if close { "close" } else { "keep-alive" },
        );
        for (name, value) in &self.headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        stream.write_all(head.as_bytes())?;
        stream.write_all(&self.body)?;
        stream.flush()
    }
}

/// Raw-byte cap on a buffered request head. The canonical parser caps
/// the *sum of line contents* at [`MAX_HEAD_BYTES`]; the raw wire form
/// adds at most a CRLF per line, so doubling the cap guarantees every
/// head the canonical parser would accept fits, while still bounding a
/// slow-loris client that never sends the blank line.
pub const MAX_HEAD_WIRE_BYTES: usize = 2 * MAX_HEAD_BYTES;

/// One step of incremental parsing ([`RequestParser::poll`]).
#[derive(Debug)]
pub enum Parsed {
    /// Not enough buffered bytes yet — feed more and poll again.
    Incomplete,
    /// A complete request. Pipelined bytes beyond it stay buffered; poll
    /// again (after the response is written) to parse the next request.
    Request(Request),
    /// Protocol or size-cap violation: answer with this status, then
    /// close. The parser is poisoned — no further polls succeed.
    Bad(u16, String),
}

/// An incremental, non-blocking HTTP/1.1 request parser for the reactor
/// path. Bytes arrive in arbitrary fragments via [`RequestParser::feed`];
/// [`RequestParser::poll`] yields a request as soon as one is complete.
///
/// **Equivalence by construction**: this type only *frames* — it finds
/// the end of the head, extracts `Content-Length`, and once
/// `head + body` bytes are buffered it delegates the actual parse to the
/// canonical blocking [`read_request`] over exactly those bytes. Any
/// byte sequence therefore produces the identical `Request` (or the
/// identical `Bad` status) on both the reactor and thread-per-connection
/// paths.
///
/// Buffering is bounded up front: a head that exceeds
/// [`MAX_HEAD_WIRE_BYTES`] without a terminating blank line is rejected
/// `431` before more is buffered, and a `Content-Length` beyond
/// [`MAX_BODY_BYTES`] is rejected `413` as soon as the head completes —
/// before a single body byte is buffered.
#[derive(Debug, Default)]
pub struct RequestParser {
    buf: Vec<u8>,
    scanned: usize,
    poisoned: bool,
}

impl RequestParser {
    /// An empty parser.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends freshly-read bytes to the buffer.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes currently buffered (head-in-progress + pipelined leftovers).
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// True once the parser has reported [`Parsed::Bad`]; the connection
    /// must be closed after the error response.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// Attempts to parse one request from the buffered bytes.
    pub fn poll(&mut self) -> Parsed {
        if self.poisoned {
            return Parsed::Incomplete;
        }
        let Some(head_end) = self.find_head_end() else {
            if self.buf.len() > MAX_HEAD_WIRE_BYTES {
                self.poisoned = true;
                return Parsed::Bad(431, "request head too large".into());
            }
            return Parsed::Incomplete;
        };
        // Unparseable length values read as 0 here and delegate to the
        // canonical parser below, which rejects them (400) without
        // needing any body bytes.
        let body_len = content_length(&self.buf[..head_end]).unwrap_or_default();
        if body_len > MAX_BODY_BYTES {
            self.poisoned = true;
            return Parsed::Bad(413, "request body too large".into());
        }
        let total = head_end + body_len;
        if self.buf.len() < total {
            return Parsed::Incomplete;
        }
        // Exactly head + declared body: the canonical parser consumes all
        // of it (or fails before the body) — identical outcome to the
        // blocking path by construction.
        let outcome = read_request(&mut std::io::BufReader::new(&self.buf[..total]));
        match outcome {
            Ok(request) => {
                self.buf.drain(..total);
                self.scanned = 0;
                Parsed::Request(request)
            }
            Err(ReadError::Bad(status, message)) => {
                self.poisoned = true;
                Parsed::Bad(status, message)
            }
            // Unreachable with a complete head + body, but total anyway.
            Err(ReadError::ConnectionClosed) | Err(ReadError::Idle) => Parsed::Incomplete,
            Err(ReadError::Io(e)) => {
                self.poisoned = true;
                Parsed::Bad(400, e)
            }
        }
    }

    /// Finds the offset one past the head-terminating blank line,
    /// tolerating bare-LF line endings exactly like [`read_request`].
    /// Scanning resumes where the last call left off, so repeated polls
    /// over a growing buffer stay O(bytes fed), not O(n²).
    fn find_head_end(&mut self) -> Option<usize> {
        let buf = &self.buf;
        // Degenerate first line: an immediate blank line is a complete
        // (malformed, 400) head of its own.
        if buf.first() == Some(&b'\n') {
            return Some(1);
        }
        if buf.starts_with(b"\r\n") {
            return Some(2);
        }
        let start = self.scanned.max(1);
        for i in start..buf.len() {
            if buf[i - 1] != b'\n' {
                continue;
            }
            if buf[i] == b'\n' {
                self.scanned = 0;
                return Some(i + 1);
            }
            if buf[i] == b'\r' && buf.get(i + 1) == Some(&b'\n') {
                self.scanned = 0;
                return Some(i + 2);
            }
        }
        // The last byte may start a terminator that completes next feed.
        self.scanned = buf.len().saturating_sub(1);
        None
    }
}

/// Extracts the first `Content-Length` from a raw head, mirroring the
/// canonical parser's first-header-wins lookup. `Err` means a value was
/// present but unparseable — the canonical parse will reject it.
fn content_length(head: &[u8]) -> Result<usize, ()> {
    for line in head.split(|&b| b == b'\n').skip(1) {
        let line = line.strip_suffix(b"\r").unwrap_or(line);
        if line.is_empty() {
            break;
        }
        let Some(colon) = line.iter().position(|&b| b == b':') else {
            continue;
        };
        let name = line[..colon].trim_ascii();
        if !name.eq_ignore_ascii_case(b"content-length") {
            continue;
        }
        let value = String::from_utf8_lossy(&line[colon + 1..]);
        return value.trim().parse::<usize>().map_err(|_| ());
    }
    Ok(0)
}

/// Reason phrase for the status codes this server emits.
pub fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        502 => "Bad Gateway",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        505 => "HTTP Version Not Supported",
        _ => "",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &[u8]) -> Result<Request, ReadError> {
        read_request(&mut BufReader::new(raw))
    }

    #[test]
    fn parses_a_post_with_body() {
        let req = parse(
            b"POST /v1/impute HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n\r\nhello",
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/impute");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.body, b"hello");
        assert!(!req.wants_close());
    }

    #[test]
    fn parses_a_get_without_body() {
        let req = parse(b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.body, b"");
        assert!(req.wants_close());
    }

    #[test]
    fn bare_lf_lines_are_tolerated() {
        let req = parse(b"GET / HTTP/1.1\nHost: x\n\n").unwrap();
        assert_eq!(req.header("host"), Some("x"));
    }

    #[test]
    fn clean_eof_is_connection_closed() {
        assert_eq!(parse(b"").unwrap_err(), ReadError::ConnectionClosed);
    }

    #[test]
    fn truncated_request_is_io_error() {
        assert!(matches!(
            parse(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc").unwrap_err(),
            ReadError::Io(_)
        ));
    }

    #[test]
    fn garbage_and_bad_lengths_are_4xx() {
        assert!(matches!(parse(b"GARBAGE\r\n\r\n").unwrap_err(),
            ReadError::Bad(400, _)));
        assert!(matches!(
            parse(b"NOT A REQUEST\r\n\r\n").unwrap_err(),
            ReadError::Bad(505, _), // three tokens, but not HTTP/1.x
        ));
        assert!(matches!(
            parse(b"POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n").unwrap_err(),
            ReadError::Bad(400, _)
        ));
        assert!(matches!(
            parse(b"GET / HTTP/2.0\r\n\r\n").unwrap_err(),
            ReadError::Bad(505, _)
        ));
    }

    #[test]
    fn oversized_body_is_rejected_up_front() {
        let raw = format!("POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n", MAX_BODY_BYTES + 1);
        assert!(matches!(
            parse(raw.as_bytes()).unwrap_err(),
            ReadError::Bad(413, _)
        ));
    }

    #[test]
    fn body_exactly_at_the_cap_is_accepted() {
        let mut raw =
            format!("POST / HTTP/1.1\r\nContent-Length: {MAX_BODY_BYTES}\r\n\r\n").into_bytes();
        raw.resize(raw.len() + MAX_BODY_BYTES, b'x');
        let req = parse(&raw).unwrap();
        assert_eq!(req.body.len(), MAX_BODY_BYTES);
        assert!(req.body.iter().all(|&b| b == b'x'));
    }

    #[test]
    fn post_without_content_length_has_an_empty_body() {
        // A body may follow on the wire, but without Content-Length it is
        // not part of this request — it must not be consumed.
        let req = parse(b"POST /v1/impute HTTP/1.1\r\nHost: x\r\n\r\nleftover").unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.body, b"");
    }

    #[test]
    fn response_roundtrips_through_the_parser() {
        let mut wire = Vec::new();
        Response::json(b"{\"ok\":true}".to_vec())
            .with_header("x-kamel-cache", "hit")
            .write_to(&mut wire, false)
            .unwrap();
        let text = String::from_utf8(wire).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("content-length: 11\r\n"), "{text}");
        assert!(text.contains("x-kamel-cache: hit\r\n"), "{text}");
        assert!(text.contains("connection: keep-alive\r\n"), "{text}");
        assert!(text.ends_with("\r\n\r\n{\"ok\":true}"), "{text}");
    }

    #[test]
    fn deadline_header_accepts_the_valid_range() {
        assert_eq!(
            parse_deadline_header(Some("1")),
            DeadlineHeader::Budget(Duration::from_millis(1))
        );
        assert_eq!(
            parse_deadline_header(Some("2500")),
            DeadlineHeader::Budget(Duration::from_millis(2500))
        );
        assert_eq!(
            parse_deadline_header(Some(&MAX_DEADLINE_MS.to_string())),
            DeadlineHeader::Budget(Duration::from_millis(MAX_DEADLINE_MS)),
            "the cap itself is inclusive"
        );
        // Surrounding whitespace survives header-trim idiosyncrasies.
        assert_eq!(
            parse_deadline_header(Some("  42  ")),
            DeadlineHeader::Budget(Duration::from_millis(42))
        );
    }

    #[test]
    fn deadline_header_rejects_every_garbage_shape_without_panicking() {
        assert_eq!(parse_deadline_header(None), DeadlineHeader::Absent);
        for bad in [
            "", " ", "0", "-1", "-99999", "nope", "1e3", "10.5", "٣",
            "18446744073709551616", // u64::MAX + 1
            "3600001",              // one past the cap
        ] {
            assert!(
                matches!(parse_deadline_header(Some(bad)), DeadlineHeader::Invalid(_)),
                "`{bad}` must be invalid"
            );
        }
        // u64::MAX does not overflow anything on the way to rejection.
        assert!(matches!(
            parse_deadline_header(Some(&u64::MAX.to_string())),
            DeadlineHeader::Invalid(_)
        ));
    }

    #[test]
    fn invalid_deadlines_fall_back_to_the_default_never_zero() {
        let default = Duration::from_secs(10);
        for v in [None, Some("0"), Some("-5"), Some("garbage"), Some("")] {
            let budget = parse_deadline_header(v).budget_or(default);
            assert_eq!(budget, default, "{v:?} must use the server default");
            assert!(!budget.is_zero(), "{v:?} must never produce an insta-504");
        }
        assert_eq!(
            parse_deadline_header(Some("250")).budget_or(default),
            Duration::from_millis(250)
        );
    }

    #[test]
    fn incremental_parser_matches_blocking_at_every_split_point() {
        // One split at every byte position covers every structural
        // boundary: mid-request-line, mid-header-name, between CR and LF,
        // at the blank line, and mid-body.
        let raw = b"POST /v1/impute HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n\r\nhello";
        let want = parse(raw).unwrap();
        for split in 0..=raw.len() {
            let mut parser = RequestParser::new();
            parser.feed(&raw[..split]);
            if split < raw.len() {
                assert!(
                    matches!(parser.poll(), Parsed::Incomplete),
                    "split {split}: request complete too early"
                );
                parser.feed(&raw[split..]);
            }
            match parser.poll() {
                Parsed::Request(got) => assert_eq!(got, want, "split {split}"),
                other => panic!("split {split}: {other:?}"),
            }
            assert_eq!(parser.buffered(), 0, "split {split}: leftover bytes");
        }
    }

    #[test]
    fn incremental_parser_byte_by_byte() {
        let raw = b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n";
        let want = parse(raw).unwrap();
        let mut parser = RequestParser::new();
        for (i, byte) in raw.iter().enumerate() {
            parser.feed(&[*byte]);
            match parser.poll() {
                Parsed::Incomplete => assert!(i + 1 < raw.len(), "never completed"),
                Parsed::Request(got) => {
                    assert_eq!(i + 1, raw.len(), "complete early at byte {i}");
                    assert_eq!(got, want);
                    return;
                }
                other => panic!("byte {i}: {other:?}"),
            }
        }
        panic!("request never completed");
    }

    #[test]
    fn incremental_parser_preserves_pipelined_requests() {
        let first = b"POST /v1/impute HTTP/1.1\r\nContent-Length: 3\r\n\r\nabc".as_slice();
        let second = b"GET /metrics HTTP/1.1\r\n\r\n".as_slice();
        // Split so the tail of request 1 and the head of request 2 arrive
        // in one fragment — the classic pipelining boundary.
        let wire = [first, second].concat();
        for split in 1..wire.len() {
            let mut parser = RequestParser::new();
            parser.feed(&wire[..split]);
            let mut got = Vec::new();
            loop {
                match parser.poll() {
                    Parsed::Request(r) => got.push(r),
                    Parsed::Incomplete => break,
                    other => panic!("split {split}: {other:?}"),
                }
            }
            parser.feed(&wire[split..]);
            loop {
                match parser.poll() {
                    Parsed::Request(r) => got.push(r),
                    Parsed::Incomplete => break,
                    other => panic!("split {split}: {other:?}"),
                }
            }
            assert_eq!(got.len(), 2, "split {split}");
            assert_eq!(got[0].path, "/v1/impute");
            assert_eq!(got[0].body, b"abc");
            assert_eq!(got[1].path, "/metrics");
            assert_eq!(parser.buffered(), 0, "split {split}");
        }
    }

    #[test]
    fn incremental_parser_rejects_oversized_body_before_buffering_it() {
        let mut parser = RequestParser::new();
        parser.feed(
            format!(
                "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
                MAX_BODY_BYTES + 1
            )
            .as_bytes(),
        );
        // Rejected on the head alone — no body bytes were needed.
        match parser.poll() {
            Parsed::Bad(413, _) => {}
            other => panic!("{other:?}"),
        }
        assert!(parser.is_poisoned());
        assert!(
            parser.buffered() < 1024,
            "body must not be buffered: {}",
            parser.buffered()
        );
    }

    #[test]
    fn incremental_parser_caps_an_endless_head() {
        let mut parser = RequestParser::new();
        parser.feed(b"GET / HTTP/1.1\r\n");
        let mut rejected = false;
        for i in 0..40_000 {
            parser.feed(b"x-h: y\r\n");
            if let Parsed::Bad(431, _) = parser.poll() {
                rejected = true;
                break;
            }
            assert!(
                parser.buffered() <= MAX_HEAD_WIRE_BYTES + 16,
                "unbounded buffering at header {i}"
            );
        }
        assert!(rejected, "slow-loris head never rejected");
    }

    #[test]
    fn incremental_parser_matches_blocking_on_bad_requests() {
        for raw in [
            b"GARBAGE\r\n\r\n".as_slice(),
            b"GET / HTTP/2.0\r\n\r\n".as_slice(),
            b"POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n".as_slice(),
            b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n".as_slice(),
        ] {
            let want = match parse(raw) {
                Err(ReadError::Bad(status, _)) => status,
                other => panic!("{other:?}"),
            };
            let mut parser = RequestParser::new();
            parser.feed(raw);
            match parser.poll() {
                Parsed::Bad(status, _) => assert_eq!(
                    status,
                    want,
                    "incremental and blocking disagree on {:?}",
                    String::from_utf8_lossy(raw)
                ),
                other => panic!("{other:?}"),
            }
        }
    }

    #[test]
    fn incremental_parser_handles_bare_lf_heads() {
        let raw = b"GET / HTTP/1.1\nHost: x\n\n";
        let want = parse(raw).unwrap();
        let mut parser = RequestParser::new();
        parser.feed(raw);
        match parser.poll() {
            Parsed::Request(got) => assert_eq!(got, want),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn retry_after_headers_render() {
        let mut wire = Vec::new();
        Response::text(503, "overloaded")
            .with_header("retry-after", "1")
            .write_to(&mut wire, true)
            .unwrap();
        let text = String::from_utf8(wire).unwrap();
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
        assert!(text.contains("retry-after: 1\r\n"));
        assert!(text.contains("connection: close\r\n"));
    }
}

//! Tokenization — the gateway module (§3).
//!
//! Converts GPS points to grid-cell tokens and back. Every input (training
//! or sparse) passes through here first. The hexagonal grid is the default
//! (§3.1); a square grid is available for the §8.5 comparison. Cell-size
//! auto-tuning (§3.2) lives in [`crate::pipeline::tune_cell_size`], which
//! needs the full train/impute loop.

use crate::config::{GridKind, KamelConfig};
use kamel_geo::{LatLng, LocalProjection, Trajectory, Xy};
use kamel_hexgrid::{CellId, HexGrid, SquareGrid, Tessellation};
use kamel_trajstore::TokenTrajectory;
use serde::{Deserialize, Serialize};

/// A concrete tessellation choice (enum instead of `dyn` so the tokenizer
/// stays `Clone + Serialize`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
enum GridChoice {
    Hex(HexGrid),
    Square(SquareGrid),
}

impl GridChoice {
    fn as_tess(&self) -> &dyn Tessellation {
        match self {
            GridChoice::Hex(g) => g,
            GridChoice::Square(g) => g,
        }
    }
}

/// The Tokenization module: a local projection plus a tessellation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Tokenizer {
    proj: LocalProjection,
    grid: GridChoice,
}

impl Tokenizer {
    /// Creates a tokenizer anchored at `origin` using the grid configured in
    /// `config`. For squares the edge is area-matched to the configured hex
    /// edge, exactly as the paper sizes its S2 comparison (§8.5).
    pub fn new(origin: LatLng, config: &KamelConfig) -> Self {
        let grid = match config.grid {
            GridKind::Hex => GridChoice::Hex(HexGrid::new(config.cell_edge_m)),
            GridKind::Square => {
                GridChoice::Square(SquareGrid::area_matched_to_hex(config.cell_edge_m))
            }
        };
        Self {
            proj: LocalProjection::new(origin),
            grid,
        }
    }

    /// Creates a hex tokenizer with an explicit edge length (used by the
    /// cell-size tuner).
    pub fn hex(origin: LatLng, edge_m: f64) -> Self {
        Self {
            proj: LocalProjection::new(origin),
            grid: GridChoice::Hex(HexGrid::new(edge_m)),
        }
    }

    /// The local projection in use.
    pub fn projection(&self) -> &LocalProjection {
        &self.proj
    }

    /// The underlying tessellation.
    pub fn grid(&self) -> &dyn Tessellation {
        self.grid.as_tess()
    }

    /// Token of a geodetic coordinate.
    pub fn cell_of_latlng(&self, p: LatLng) -> CellId {
        self.grid().cell_of(self.proj.to_xy(p))
    }

    /// Token of a planar point.
    pub fn cell_of_xy(&self, p: Xy) -> CellId {
        self.grid().cell_of(p)
    }

    /// Planar centroid of a token.
    pub fn centroid(&self, cell: CellId) -> Xy {
        self.grid().centroid(cell)
    }

    /// Geodetic centroid of a token.
    pub fn centroid_latlng(&self, cell: CellId) -> LatLng {
        self.proj.to_latlng(self.centroid(cell))
    }

    /// Planar distance between two token centroids in meters.
    pub fn centroid_distance_m(&self, a: CellId, b: CellId) -> f64 {
        self.centroid(a).dist(&self.centroid(b))
    }

    /// The gap threshold actually used by FindFirstGap-style checks.
    ///
    /// The paper states `max_gap` in meters (default 100 m) but measures
    /// gaps in *token* steps in its Figure 6 walk-through ("within two
    /// tokens from each other"): two grid-adjacent tokens can never be a
    /// gap, even when their centroid spacing exceeds the configured meters
    /// (75 m hexagons have ~130 m neighbor spacing). The effective
    /// threshold is therefore the configured value, floored at just above
    /// one neighbor step — otherwise imputation could never terminate.
    pub fn effective_max_gap_m(&self, configured_m: f64) -> f64 {
        configured_m.max(self.grid().neighbor_spacing_m() * 1.05)
    }

    /// Tokenizes a trajectory into the store record: per-fix cells, planar
    /// positions, and timestamps.
    pub fn tokenize(&self, traj: &Trajectory) -> TokenTrajectory {
        let mut cells = Vec::with_capacity(traj.len());
        let mut xy = Vec::with_capacity(traj.len());
        let mut t = Vec::with_capacity(traj.len());
        for p in &traj.points {
            let planar = self.proj.to_xy(p.pos);
            cells.push(self.grid().cell_of(planar));
            xy.push(planar);
            t.push(p.t);
        }
        TokenTrajectory::new(cells, xy, t)
    }

    /// The token sentence for a trajectory: cells with consecutive
    /// duplicates collapsed, as the language models consume them (§3).
    pub fn sentence(&self, traj: &Trajectory) -> Vec<CellId> {
        self.tokenize(traj).dedup_cells()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kamel_geo::GpsPoint;

    fn config() -> KamelConfig {
        KamelConfig::default()
    }

    fn east_traj(n: usize, spacing_deg: f64) -> Trajectory {
        Trajectory::new(
            (0..n)
                .map(|i| GpsPoint::from_parts(41.15, -8.61 + i as f64 * spacing_deg, i as f64 * 10.0))
                .collect(),
        )
    }

    #[test]
    fn tokenize_emits_one_token_per_fix() {
        let tok = Tokenizer::new(LatLng::new(41.15, -8.61), &config());
        let traj = east_traj(10, 0.002);
        let tt = tok.tokenize(&traj);
        assert_eq!(tt.len(), 10);
        assert_eq!(tt.t[3], 30.0);
    }

    #[test]
    fn nearby_points_share_a_token() {
        let tok = Tokenizer::new(LatLng::new(41.15, -8.61), &config());
        // Two fixes ~8 m apart fall in the same 75 m hexagon almost surely.
        let a = tok.cell_of_latlng(LatLng::new(41.15, -8.6100));
        let b = tok.cell_of_latlng(LatLng::new(41.15, -8.60990));
        assert_eq!(a, b);
    }

    #[test]
    fn sentence_collapses_consecutive_duplicates() {
        let tok = Tokenizer::new(LatLng::new(41.15, -8.61), &config());
        // Dense fixes: many consecutive fixes share cells.
        let traj = east_traj(100, 0.0001); // ~8.4 m spacing
        let tt = tok.tokenize(&traj);
        let sentence = tok.sentence(&traj);
        assert!(sentence.len() < tt.len());
        for w in sentence.windows(2) {
            assert_ne!(w[0], w[1]);
        }
    }

    #[test]
    fn centroid_roundtrip_is_close() {
        let tok = Tokenizer::new(LatLng::new(41.15, -8.61), &config());
        let p = LatLng::new(41.157, -8.603);
        let cell = tok.cell_of_latlng(p);
        let c = tok.centroid_latlng(cell);
        // Centroid within the circumradius (= hex edge).
        assert!(p.fast_dist_m(&c) <= 75.0 + 1e-6);
        // And the centroid maps back to the same cell.
        assert_eq!(tok.cell_of_latlng(c), cell);
    }

    #[test]
    fn square_grid_is_area_matched() {
        let cfg = KamelConfig::builder().grid(GridKind::Square).build();
        let tok = Tokenizer::new(LatLng::new(41.15, -8.61), &cfg);
        assert_eq!(tok.grid().kind(), "square");
        assert!((tok.grid().edge_len_m() - 120.9).abs() < 1.0);
    }

    #[test]
    fn centroid_distance_is_symmetric() {
        let tok = Tokenizer::new(LatLng::new(41.15, -8.61), &config());
        let a = tok.cell_of_latlng(LatLng::new(41.15, -8.61));
        let b = tok.cell_of_latlng(LatLng::new(41.16, -8.60));
        assert_eq!(
            tok.centroid_distance_m(a, b),
            tok.centroid_distance_m(b, a)
        );
        assert_eq!(tok.centroid_distance_m(a, a), 0.0);
    }
}

//! Token vocabulary: opaque `u64` keys ↔ dense internal ids.
//!
//! KAMEL's Tokenization module emits hexagonal cell ids as tokens (§3); the
//! language models need dense contiguous ids. The first five ids are BERT's
//! special tokens.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A bidirectional mapping between token keys and dense ids.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Vocab {
    forward: HashMap<u64, u32>,
    backward: Vec<u64>,
}

impl Vocab {
    /// Padding token id.
    pub const PAD: u32 = 0;
    /// Mask token id (the slot to predict).
    pub const MASK: u32 = 1;
    /// Sequence-start marker.
    pub const CLS: u32 = 2;
    /// Sequence-end marker.
    pub const SEP: u32 = 3;
    /// Out-of-vocabulary token id.
    pub const UNK: u32 = 4;
    /// First id assigned to a regular token.
    pub const FIRST_REGULAR: u32 = 5;

    /// An empty vocabulary (only special tokens).
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the id for `key`, inserting it if unseen.
    pub fn get_or_insert(&mut self, key: u64) -> u32 {
        if let Some(&id) = self.forward.get(&key) {
            return id;
        }
        let id = Self::FIRST_REGULAR + self.backward.len() as u32;
        self.forward.insert(key, id);
        self.backward.push(key);
        id
    }

    /// The id of `key`, or [`Vocab::UNK`] when unknown.
    pub fn id_of(&self, key: u64) -> u32 {
        self.forward.get(&key).copied().unwrap_or(Self::UNK)
    }

    /// The key behind a regular id; `None` for specials or out-of-range ids.
    pub fn key_of(&self, id: u32) -> Option<u64> {
        if id < Self::FIRST_REGULAR {
            return None;
        }
        self.backward.get((id - Self::FIRST_REGULAR) as usize).copied()
    }

    /// Number of regular (non-special) tokens.
    pub fn regular_len(&self) -> usize {
        self.backward.len()
    }

    /// Total id space, including special tokens — the model's vocab size.
    pub fn total_len(&self) -> usize {
        Self::FIRST_REGULAR as usize + self.backward.len()
    }

    /// Half-open range of regular ids, for random-replacement masking.
    pub fn regular_range(&self) -> (u32, u32) {
        (Self::FIRST_REGULAR, self.total_len() as u32)
    }

    /// True when no regular tokens have been registered.
    pub fn is_empty(&self) -> bool {
        self.backward.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_is_idempotent_and_dense() {
        let mut v = Vocab::new();
        let a = v.get_or_insert(1000);
        let b = v.get_or_insert(2000);
        let a2 = v.get_or_insert(1000);
        assert_eq!(a, a2);
        assert_eq!(a, Vocab::FIRST_REGULAR);
        assert_eq!(b, Vocab::FIRST_REGULAR + 1);
        assert_eq!(v.regular_len(), 2);
        assert_eq!(v.total_len(), 7);
    }

    #[test]
    fn unknown_keys_map_to_unk() {
        let v = Vocab::new();
        assert_eq!(v.id_of(12345), Vocab::UNK);
    }

    #[test]
    fn key_of_rejects_specials() {
        let mut v = Vocab::new();
        v.get_or_insert(42);
        assert_eq!(v.key_of(Vocab::PAD), None);
        assert_eq!(v.key_of(Vocab::MASK), None);
        assert_eq!(v.key_of(Vocab::FIRST_REGULAR), Some(42));
        assert_eq!(v.key_of(Vocab::FIRST_REGULAR + 1), None);
    }

    #[test]
    fn roundtrip_many_keys() {
        let mut v = Vocab::new();
        for key in (0..500u64).map(|i| i * 7919) {
            let id = v.get_or_insert(key);
            assert_eq!(v.key_of(id), Some(key));
            assert_eq!(v.id_of(key), id);
        }
        assert_eq!(v.regular_len(), 500);
    }
}

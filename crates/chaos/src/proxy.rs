//! The fault-injecting TCP proxy: accept, number, afflict, relay.
//!
//! One accept thread numbers connections in accept order and asks the
//! [`ChaosSchedule`] which [`Fault`] each suffers; a thread per
//! connection then either relays to the upstream (possibly maimed) or
//! misbehaves locally. Every loop polls a stop flag at subsecond
//! granularity, so [`ChaosProxy::shutdown`] joins every thread in
//! bounded time — the harness itself never hangs, only its victims.

use crate::schedule::{ChaosSchedule, Fault};
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// How often blocked loops re-check the stop flag.
const POLL: Duration = Duration::from_millis(100);

/// Tuning for the injected faults (durations, byte caps).
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Which fault each connection suffers.
    pub schedule: ChaosSchedule,
    /// How long a [`Fault::Stall`] connection is held silent before the
    /// proxy gives up and closes it (the victim's timeout should fire
    /// first).
    pub stall_ms: u64,
    /// Delay between bytes of a [`Fault::SlowLoris`] response.
    pub trickle_ms: u64,
    /// Maximum bytes a [`Fault::SlowLoris`] connection trickles before
    /// the proxy closes it.
    pub trickle_cap: usize,
    /// Bytes of real response relayed before a [`Fault::Torn`] close.
    pub torn_after: usize,
    /// Upstream connect timeout for relayed connections.
    pub connect_timeout_ms: u64,
}

impl ChaosConfig {
    /// Defaults tuned for tests: stalls bounded at 10 s, 25 ms trickle,
    /// tears after 100 bytes (inside a typical response body).
    pub fn new(schedule: ChaosSchedule) -> Self {
        Self {
            schedule,
            stall_ms: 10_000,
            trickle_ms: 25,
            trickle_cap: 2_048,
            torn_after: 100,
            connect_timeout_ms: 1_000,
        }
    }
}

/// A running chaos proxy. Dropping it (or calling
/// [`ChaosProxy::shutdown`]) stops the accept loop and joins every
/// connection thread.
pub struct ChaosProxy {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accepted: Arc<AtomicU64>,
    log: Arc<Mutex<Vec<(u64, Fault)>>>,
    accept_thread: Option<JoinHandle<()>>,
    workers: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl ChaosProxy {
    /// Starts a proxy on an OS-assigned loopback port.
    pub fn bind(upstream: SocketAddr, config: ChaosConfig) -> io::Result<Self> {
        Self::start(TcpListener::bind("127.0.0.1:0")?, upstream, config)
    }

    /// Starts a proxy on an already-bound listener.
    pub fn start(
        listener: TcpListener,
        upstream: SocketAddr,
        config: ChaosConfig,
    ) -> io::Result<Self> {
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let accepted = Arc::new(AtomicU64::new(0));
        let log = Arc::new(Mutex::new(Vec::new()));
        let workers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let accept_thread = {
            let (stop, accepted, log, workers) = (
                Arc::clone(&stop),
                Arc::clone(&accepted),
                Arc::clone(&log),
                Arc::clone(&workers),
            );
            let config = config.clone();
            thread::spawn(move || {
                for incoming in listener.incoming() {
                    if stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(client) = incoming else { continue };
                    let n = accepted.fetch_add(1, Ordering::SeqCst);
                    let fault = config.schedule.fault_for(n);
                    log.lock().expect("chaos log poisoned").push((n, fault));
                    let (stop, config) = (Arc::clone(&stop), config.clone());
                    let worker = thread::spawn(move || {
                        handle_connection(client, upstream, fault, &config, &stop);
                    });
                    workers.lock().expect("chaos workers poisoned").push(worker);
                }
            })
        };
        Ok(Self {
            addr,
            stop,
            accepted,
            log,
            accept_thread: Some(accept_thread),
            workers,
        })
    }

    /// The proxy's listen address (point router `--shard` flags here).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// How many connections have been accepted so far.
    pub fn connections(&self) -> u64 {
        self.accepted.load(Ordering::SeqCst)
    }

    /// The `(connection index, fault)` assignment log, in accept order.
    pub fn log(&self) -> Vec<(u64, Fault)> {
        self.log.lock().expect("chaos log poisoned").clone()
    }

    /// Stops accepting, unblocks every fault loop, and joins all
    /// threads. Bounded: every loop polls the stop flag.
    pub fn shutdown(&mut self) {
        if self.accept_thread.is_none() {
            return;
        }
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        let workers = std::mem::take(&mut *self.workers.lock().expect("chaos workers poisoned"));
        for w in workers {
            let _ = w.join();
        }
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn handle_connection(
    client: TcpStream,
    upstream: SocketAddr,
    fault: Fault,
    config: &ChaosConfig,
    stop: &AtomicBool,
) {
    match fault {
        Fault::Refuse => {
            let _ = client.shutdown(Shutdown::Both);
        }
        Fault::Stall => stall(client, config, stop),
        Fault::ResetMidBody => reset_mid_body(client),
        Fault::None | Fault::SlowLoris | Fault::Torn => {
            relay(client, upstream, fault, config, stop)
        }
    }
}

/// Hold the socket open, silent, for up to `stall_ms`. Nothing is read,
/// so the eventual close also arrives as RST if the client sent bytes.
fn stall(client: TcpStream, config: &ChaosConfig, stop: &AtomicBool) {
    let start = Instant::now();
    while start.elapsed() < Duration::from_millis(config.stall_ms) && !stop.load(Ordering::SeqCst)
    {
        thread::sleep(POLL.min(Duration::from_millis(config.stall_ms)));
    }
    let _ = client.shutdown(Shutdown::Both);
}

/// Send response headers plus a torn JSON prefix, then close with the
/// request body deliberately unread: the kernel answers the client's
/// still-buffered bytes with RST, so the client observes a connection
/// reset in the middle of a plausible-looking body.
fn reset_mid_body(mut client: TcpStream) {
    let _ = client.set_read_timeout(Some(Duration::from_secs(2)));
    let _ = client.set_nodelay(true);
    // Read only the header block, one byte at a time, leaving any body
    // bytes unread in the kernel buffer.
    let mut header = Vec::with_capacity(512);
    let mut byte = [0u8; 1];
    while header.len() < 8_192 && !header.ends_with(b"\r\n\r\n") {
        match client.read(&mut byte) {
            Ok(1) => header.push(byte[0]),
            _ => break,
        }
    }
    let torn_body = br#"{"trajectory":{"points":["#;
    let _ = client.write_all(
        b"HTTP/1.1 200 OK\r\ncontent-type: application/json\r\ncontent-length: 4096\r\n\r\n",
    );
    let _ = client.write_all(torn_body);
    let _ = client.flush();
    // Drop while the body sits unread -> RST.
}

/// Relay through to the upstream, with the response direction either
/// faithful ([`Fault::None`]), trickled ([`Fault::SlowLoris`]), or cut
/// short ([`Fault::Torn`]).
fn relay(
    client: TcpStream,
    upstream: SocketAddr,
    fault: Fault,
    config: &ChaosConfig,
    stop: &AtomicBool,
) {
    let Ok(server) = TcpStream::connect_timeout(
        &upstream,
        Duration::from_millis(config.connect_timeout_ms.max(1)),
    ) else {
        let _ = client.shutdown(Shutdown::Both);
        return;
    };
    let (Ok(client_r), Ok(server_w)) = (client.try_clone(), server.try_clone()) else {
        return;
    };
    // Request direction: always faithful, on its own thread. No stop
    // flag needed — when the response pump below exits (EOF, fault, or
    // shutdown) it closes both sockets, which errors this pump out.
    let request_pump = thread::spawn(move || pump_plain(client_r, server_w, None));
    // Response direction, maimed per the fault.
    match fault {
        Fault::None => pump_plain(server, client, Some(stop)),
        Fault::Torn => pump_torn(server, client, config.torn_after, stop),
        Fault::SlowLoris => pump_trickle(server, client, config, stop),
        _ => unreachable!("relay only handles None/SlowLoris/Torn"),
    }
    let _ = request_pump.join();
}

/// Copies `from` into `to` until EOF or error. With a stop flag, reads
/// poll so proxy shutdown unsticks the loop; without one, the loop ends
/// when either socket dies (the response pump closing both sockets).
fn pump_plain(mut from: TcpStream, mut to: TcpStream, stop: Option<&AtomicBool>) {
    let _ = from.set_read_timeout(Some(POLL));
    let mut buf = [0u8; 16 * 1024];
    loop {
        match from.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                if to.write_all(&buf[..n]).is_err() {
                    break;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if stop.is_some_and(|s| s.load(Ordering::SeqCst)) {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    let _ = to.shutdown(Shutdown::Write);
    let _ = from.shutdown(Shutdown::Read);
}

/// Relays at most `torn_after` bytes of response, then closes both
/// sockets: the client sees a clean FIN mid-response.
fn pump_torn(mut from: TcpStream, mut to: TcpStream, torn_after: usize, stop: &AtomicBool) {
    let _ = from.set_read_timeout(Some(POLL));
    let mut sent = 0usize;
    let mut buf = [0u8; 4 * 1024];
    while sent < torn_after && !stop.load(Ordering::SeqCst) {
        match from.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                let take = n.min(torn_after - sent);
                if to.write_all(&buf[..take]).is_err() {
                    break;
                }
                sent += take;
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => break,
        }
    }
    let _ = to.shutdown(Shutdown::Both);
    let _ = from.shutdown(Shutdown::Both);
}

/// Relays the response one byte at a time with `trickle_ms` between
/// bytes, up to `trickle_cap` bytes, then closes. Per-read timeouts on
/// the victim never fire; only an overall budget defeats this.
fn pump_trickle(mut from: TcpStream, mut to: TcpStream, config: &ChaosConfig, stop: &AtomicBool) {
    let _ = from.set_read_timeout(Some(POLL));
    let _ = to.set_nodelay(true);
    let mut sent = 0usize;
    let mut buf = [0u8; 1024];
    'outer: while sent < config.trickle_cap && !stop.load(Ordering::SeqCst) {
        match from.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                for &b in &buf[..n] {
                    if sent >= config.trickle_cap || stop.load(Ordering::SeqCst) {
                        break 'outer;
                    }
                    if to.write_all(&[b]).is_err() {
                        break 'outer;
                    }
                    sent += 1;
                    thread::sleep(Duration::from_millis(config.trickle_ms));
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => break,
        }
    }
    let _ = to.shutdown(Shutdown::Both);
    let _ = from.shutdown(Shutdown::Both);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny keep-alive HTTP upstream: echoes `ECHO:<body>` back with a
    /// correct Content-Length. One detached thread per connection.
    fn tiny_upstream() -> SocketAddr {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind upstream");
        let addr = listener.local_addr().unwrap();
        thread::spawn(move || {
            for stream in listener.incoming() {
                let Ok(stream) = stream else { break };
                thread::spawn(move || serve_echo(stream));
            }
        });
        addr
    }

    fn serve_echo(mut stream: TcpStream) {
        let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
        loop {
            let mut header = Vec::new();
            let mut byte = [0u8; 1];
            while !header.ends_with(b"\r\n\r\n") {
                match stream.read(&mut byte) {
                    Ok(1) => header.push(byte[0]),
                    _ => return,
                }
            }
            let text = String::from_utf8_lossy(&header);
            let length: usize = text
                .lines()
                .find_map(|l| {
                    let (k, v) = l.split_once(':')?;
                    k.eq_ignore_ascii_case("content-length")
                        .then(|| v.trim().parse().ok())?
                })
                .unwrap_or(0);
            let mut body = vec![0u8; length];
            if stream.read_exact(&mut body).is_err() {
                return;
            }
            let mut payload = b"ECHO:".to_vec();
            payload.extend_from_slice(&body);
            let head = format!(
                "HTTP/1.1 200 OK\r\ncontent-length: {}\r\n\r\n",
                payload.len()
            );
            if stream.write_all(head.as_bytes()).is_err()
                || stream.write_all(&payload).is_err()
            {
                return;
            }
        }
    }

    fn post(addr: SocketAddr, body: &[u8]) -> TcpStream {
        let mut stream =
            TcpStream::connect_timeout(&addr, Duration::from_secs(2)).expect("connect proxy");
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let head = format!("POST /v1/impute HTTP/1.1\r\ncontent-length: {}\r\n\r\n", body.len());
        let _ = stream.write_all(head.as_bytes());
        let _ = stream.write_all(body);
        stream
    }

    /// Reads one well-formed response (headers + Content-Length body).
    fn read_response(stream: &mut TcpStream) -> io::Result<Vec<u8>> {
        let mut header = Vec::new();
        let mut byte = [0u8; 1];
        while !header.ends_with(b"\r\n\r\n") {
            match stream.read(&mut byte)? {
                1 => header.push(byte[0]),
                _ => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "closed in headers",
                    ))
                }
            }
        }
        let text = String::from_utf8_lossy(&header);
        let length: usize = text
            .lines()
            .find_map(|l| {
                let (k, v) = l.split_once(':')?;
                k.eq_ignore_ascii_case("content-length")
                    .then(|| v.trim().parse().ok())?
            })
            .unwrap_or(0);
        let mut body = vec![0u8; length];
        stream.read_exact(&mut body)?;
        Ok(body)
    }

    /// Drains the socket until EOF or error, returning whatever arrived.
    fn drain(stream: &mut TcpStream) -> (Vec<u8>, Option<io::Error>) {
        let mut got = Vec::new();
        let mut buf = [0u8; 1024];
        loop {
            match stream.read(&mut buf) {
                Ok(0) => return (got, None),
                Ok(n) => got.extend_from_slice(&buf[..n]),
                Err(e) => return (got, Some(e)),
            }
        }
    }

    fn proxy_with(script: &str, tweak: impl Fn(&mut ChaosConfig)) -> (ChaosProxy, SocketAddr) {
        let upstream = tiny_upstream();
        let mut config = ChaosConfig::new(ChaosSchedule::parse_script(script).unwrap());
        tweak(&mut config);
        let proxy = ChaosProxy::bind(upstream, config).expect("start proxy");
        let addr = proxy.addr();
        (proxy, addr)
    }

    #[test]
    fn a_healthy_connection_relays_keep_alive_requests_faithfully() {
        let (_proxy, addr) = proxy_with("none", |_| {});
        let mut stream = post(addr, b"hello");
        assert_eq!(read_response(&mut stream).unwrap(), b"ECHO:hello");
        // Second request on the same connection: the relay is a pipe,
        // not a one-shot.
        let head = "POST /v1/impute HTTP/1.1\r\ncontent-length: 5\r\n\r\nworld";
        stream.write_all(head.as_bytes()).unwrap();
        assert_eq!(read_response(&mut stream).unwrap(), b"ECHO:world");
    }

    #[test]
    fn a_refused_connection_dies_before_a_byte_is_exchanged() {
        let (proxy, addr) = proxy_with("refuse", |_| {});
        let mut stream = post(addr, b"hello");
        let (got, _err) = drain(&mut stream);
        assert!(got.is_empty(), "refuse leaked bytes: {got:?}");
        assert_eq!(proxy.log(), vec![(0, Fault::Refuse)]);
    }

    #[test]
    fn a_torn_response_is_a_short_prefix_then_a_clean_fin() {
        let (_proxy, addr) = proxy_with("torn", |c| c.torn_after = 30);
        let mut stream = post(addr, b"hello");
        let (got, _err) = drain(&mut stream);
        assert!(!got.is_empty(), "torn should relay a prefix");
        assert!(got.len() <= 30, "torn relayed {} bytes", got.len());
        // The prefix is real upstream bytes, so it starts like a
        // response but never completes one.
        assert!(got.starts_with(b"HTTP/1.1 200"), "{got:?}");
        assert!(read_response(&mut post(addr, b"x")).is_err());
    }

    #[test]
    fn a_stalled_connection_never_sends_a_byte() {
        let (mut proxy, addr) = proxy_with("stall", |c| c.stall_ms = 5_000);
        let mut stream = post(addr, b"hello");
        stream
            .set_read_timeout(Some(Duration::from_millis(200)))
            .unwrap();
        let mut buf = [0u8; 64];
        let err = stream.read(&mut buf).expect_err("stall must time out");
        assert!(
            matches!(err.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut),
            "{err:?}"
        );
        // Shutdown reclaims the stalled worker in bounded time.
        let start = Instant::now();
        proxy.shutdown();
        assert!(start.elapsed() < Duration::from_secs(2), "shutdown hung");
    }

    #[test]
    fn a_slow_loris_response_is_correct_just_late() {
        let (_proxy, addr) = proxy_with("slow-loris", |c| {
            c.trickle_ms = 1;
            c.trickle_cap = 8_192;
        });
        let mut stream = post(addr, b"hello");
        assert_eq!(read_response(&mut stream).unwrap(), b"ECHO:hello");
    }

    #[test]
    fn a_mid_body_reset_never_yields_a_complete_response() {
        let (_proxy, addr) = proxy_with("reset", |_| {});
        let mut stream = post(addr, b"hello");
        // Either the read errors (RST) or the data is short of the
        // advertised content-length — never a complete parseable body.
        match read_response(&mut stream) {
            Err(_) => {}
            Ok(body) => panic!("reset yielded a complete body: {body:?}"),
        }
    }

    #[test]
    fn the_fault_log_follows_accept_order() {
        let (proxy, addr) = proxy_with("refuse,none", |_| {});
        let _ = drain(&mut post(addr, b"x"));
        for _ in 0..2 {
            // Healthy keep-alive connections hold no EOF, so read one
            // full response instead of draining.
            assert!(read_response(&mut post(addr, b"x")).is_ok());
        }
        let log = proxy.log();
        assert_eq!(
            log,
            vec![(0, Fault::Refuse), (1, Fault::None), (2, Fault::None)]
        );
    }
}

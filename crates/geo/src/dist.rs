//! Distance functions on the sphere.

use crate::point::LatLng;

/// Mean Earth radius in meters (IUGG).
pub const EARTH_RADIUS_M: f64 = 6_371_008.8;

/// Great-circle distance between two coordinates in meters (haversine).
///
/// Numerically stable for small separations; exact enough for trajectory
/// work everywhere on the globe.
pub fn haversine_m(a: LatLng, b: LatLng) -> f64 {
    let (lat1, lng1) = (a.lat.to_radians(), a.lng.to_radians());
    let (lat2, lng2) = (b.lat.to_radians(), b.lng.to_radians());
    let dlat = lat2 - lat1;
    let dlng = lng2 - lng1;
    let h = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlng / 2.0).sin().powi(2);
    2.0 * EARTH_RADIUS_M * h.sqrt().asin()
}

/// Fast equirectangular approximation of the distance in meters.
///
/// Projects onto a plane using the mean latitude; error is negligible for the
/// city-scale (< ~50 km) separations KAMEL operates on, and it is several
/// times cheaper than the haversine in hot loops (tokenization, constraints,
/// metrics).
#[inline]
pub fn equirectangular_m(a: LatLng, b: LatLng) -> f64 {
    let mean_lat = ((a.lat + b.lat) * 0.5).to_radians();
    let dx = (b.lng - a.lng).to_radians() * mean_lat.cos();
    let dy = (b.lat - a.lat).to_radians();
    EARTH_RADIUS_M * dx.hypot(dy)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Porto city hall to Porto São Bento station is roughly 560 m.
    #[test]
    fn haversine_known_city_distance() {
        let a = LatLng::new(41.1496, -8.6110);
        let b = LatLng::new(41.1456, -8.6104);
        let d = haversine_m(a, b);
        assert!((400.0..600.0).contains(&d), "unexpected distance {d}");
    }

    #[test]
    fn zero_distance_for_identical_points() {
        let p = LatLng::new(-6.2, 106.8);
        assert_eq!(haversine_m(p, p), 0.0);
        assert_eq!(equirectangular_m(p, p), 0.0);
    }

    #[test]
    fn equirectangular_matches_haversine_at_city_scale() {
        let a = LatLng::new(41.15, -8.61);
        for (dlat, dlng) in [(0.01, 0.0), (0.0, 0.02), (0.03, -0.02), (-0.05, 0.05)] {
            let b = LatLng::new(a.lat + dlat, a.lng + dlng);
            let h = haversine_m(a, b);
            let e = equirectangular_m(a, b);
            let rel = (h - e).abs() / h.max(1.0);
            assert!(rel < 1e-3, "relative error {rel} for offset {dlat},{dlng}");
        }
    }

    #[test]
    fn symmetry() {
        let a = LatLng::new(41.15, -8.61);
        let b = LatLng::new(41.20, -8.55);
        assert!((haversine_m(a, b) - haversine_m(b, a)).abs() < 1e-9);
        assert!((equirectangular_m(a, b) - equirectangular_m(b, a)).abs() < 1e-9);
    }

    #[test]
    fn antimeridian_safe_haversine() {
        let a = LatLng::new(0.0, 179.95);
        let b = LatLng::new(0.0, -179.95);
        // Haversine handles wrap-around correctly: ~11.1 km, not ~40000 km.
        let d = haversine_m(a, b);
        assert!((10_000.0..13_000.0).contains(&d), "got {d}");
    }
}

//! Continual learning from live traffic for the KAMEL reproduction.
//!
//! The serving path answers `/v1/impute` requests from a model trained
//! offline; this crate closes the loop so the model keeps up with the
//! road network it serves. Four layers:
//!
//! * **capture** ([`capture`]) — the server tees completed imputations
//!   and `/v1/feedback` ground-truth corrections through a bounded
//!   channel into a crash-safe, CRC-framed, append-only capture log.
//!   The serving path never blocks on learning: a full queue drops the
//!   record and counts it.
//! * **selection** ([`select`]) — an active-learning scorer ranks
//!   pyramid cells by retraining need (feedback disagreement, low beam
//!   confidence, traffic volume, staleness) so the budget goes where the
//!   model is demonstrably weak.
//! * **training** ([`trainer`]) — a background pass loads a *private*
//!   copy of the model, retrains only the selected cells on captured
//!   corrections and high-confidence pseudo-labels, and re-gates
//!   quantization (a side effect of maintenance).
//! * **rollout** ([`trainer::ModelOps`]) — the retrained checkpoint must
//!   beat a replay regression gate against the serving generation; only
//!   then is it saved and hot-reloaded (`/admin/reload`), bumping the
//!   generation so cached answers never mix generations. A failing gate
//!   rolls back: nothing is saved and the old generation keeps serving.
//!
//! [`Learner`] glues the layers into one background thread; the serving
//! process talks to it only through the non-blocking [`CaptureSink`].

#![warn(missing_docs)]

pub mod capture;
pub mod select;
pub mod sink;
pub mod trainer;

pub use capture::{drain_sealed, CaptureConfig, CaptureLog, CaptureRecord, RecordKind};
pub use select::{need_score, select_cells, CellStats, SelectionConfig};
pub use sink::{points_to_traj, traj_to_points, CaptureSink, ContextFn, LearnStats};
pub use trainer::{retrain_pass, ModelOps, PassReport, TrainerConfig};

use capture::CaptureRecord as Record;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Everything the learner thread needs to run.
pub struct LearnerConfig {
    /// Where and how the capture log persists.
    pub capture: CaptureConfig,
    /// Retrain cadence, selection, and gate thresholds.
    pub trainer: TrainerConfig,
}

/// The background learning daemon: drains the capture channel into the
/// durable log, and periodically runs a [`retrain_pass`] over the
/// accumulated batch.
pub struct Learner {
    handle: Option<JoinHandle<()>>,
    stop: Arc<AtomicBool>,
    stats: Arc<LearnStats>,
}

impl Learner {
    /// Spawns the learner thread. `rx` and `stats` come from
    /// [`CaptureSink::channel`] / [`CaptureSink::stats`]; `model` is how
    /// the trainer loads, saves, and rolls out checkpoints.
    pub fn spawn(
        config: LearnerConfig,
        rx: Receiver<Record>,
        stats: Arc<LearnStats>,
        model: ModelOps,
    ) -> std::io::Result<Learner> {
        let mut log = CaptureLog::open(config.capture)?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let thread_stats = Arc::clone(&stats);
        let trainer_cfg = config.trainer;
        let handle = std::thread::Builder::new()
            .name("kamel-learn".into())
            .spawn(move || {
                run_loop(&mut log, &rx, &thread_stop, &thread_stats, &trainer_cfg, &model);
            })?;
        Ok(Learner {
            handle: Some(handle),
            stop,
            stats,
        })
    }

    /// The shared counters (same instance the sink updates).
    pub fn stats(&self) -> Arc<LearnStats> {
        Arc::clone(&self.stats)
    }

    /// Asks the thread to stop after persisting everything already
    /// queued, and waits for it.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Learner {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// Moves one record from the channel into the durable log.
fn absorb(log: &mut CaptureLog, stats: &LearnStats, record: Record) {
    stats.queue_records.fetch_sub(1, Ordering::Relaxed);
    if let Err(e) = log.append(&record) {
        eprintln!("kamel-learn: capture append failed: {e}");
    }
}

fn run_loop(
    log: &mut CaptureLog,
    rx: &Receiver<Record>,
    stop: &AtomicBool,
    stats: &LearnStats,
    cfg: &TrainerConfig,
    model: &ModelOps,
) {
    let mut last_pass = Instant::now();
    let mut round: u64 = 1;
    let mut cell_rounds: HashMap<u64, u64> = HashMap::new();
    // The log reports cumulative drop-oldest evictions; publish deltas.
    let mut dropped_seen = log.dropped_records();
    loop {
        // Drain the channel (blocking briefly so shutdown stays snappy),
        // then opportunistically batch whatever else is already queued.
        match rx.recv_timeout(Duration::from_millis(50)) {
            Ok(record) => {
                absorb(log, stats, record);
                while let Ok(more) = rx.try_recv() {
                    absorb(log, stats, more);
                }
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => {
                // All sinks gone; persist what we have and wind down.
                stop.store(true, Ordering::Release);
            }
        }
        stats.queue_bytes.store(log.total_bytes(), Ordering::Relaxed);
        let log_dropped = log.dropped_records();
        if log_dropped > dropped_seen {
            // Fold log-side drop-oldest evictions into the same counter
            // as queue drops: both are records learning never saw.
            stats
                .dropped_total
                .fetch_add(log_dropped - dropped_seen, Ordering::Relaxed);
            dropped_seen = log_dropped;
        }
        if stop.load(Ordering::Acquire) {
            break;
        }
        if last_pass.elapsed() >= cfg.interval && log.records() >= cfg.batch_min as u64 {
            let records = match log.drain() {
                Ok(records) => records,
                Err(e) => {
                    eprintln!("kamel-learn: capture drain failed: {e}");
                    last_pass = Instant::now();
                    continue;
                }
            };
            match retrain_pass(&records, round, &mut cell_rounds, cfg, model) {
                Ok(Some(report)) if report.rolled_out => {
                    stats.retrains_total.fetch_add(1, Ordering::Relaxed);
                    stats
                        .cells_retrained_total
                        .fetch_add(report.selected_cells.len() as u64, Ordering::Relaxed);
                    stats
                        .last_generation
                        .store(report.generation, Ordering::Relaxed);
                    stats
                        .last_retrain_unix_ms
                        .store(sink::unix_ms(), Ordering::Relaxed);
                }
                Ok(Some(report)) => {
                    stats.rollbacks_total.fetch_add(1, Ordering::Relaxed);
                    eprintln!(
                        "kamel-learn: rollout aborted by regression gate \
                         (old {:.3}, new {:.3}); serving generation unchanged",
                        report.gate.old_score, report.gate.new_score
                    );
                }
                Ok(None) => {}
                Err(e) => eprintln!("kamel-learn: retrain pass failed: {e}"),
            }
            round += 1;
            last_pass = Instant::now();
        }
    }
    // Shutdown: everything still in the channel becomes durable before
    // the thread exits, and the active segment is sealed.
    while let Ok(record) = rx.try_recv() {
        absorb(log, stats, record);
    }
    if let Err(e) = log.seal() {
        eprintln!("kamel-learn: final seal failed: {e}");
    }
    stats.queue_bytes.store(log.total_bytes(), Ordering::Relaxed);
}

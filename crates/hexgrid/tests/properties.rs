//! Property-based tests for the tessellations.

use kamel_geo::Xy;
use kamel_hexgrid::{CellId, HexGrid, SquareGrid, Tessellation};
use proptest::prelude::*;

proptest! {
    /// A point always lies within the circumradius of its cell centroid.
    #[test]
    fn hex_point_within_circumradius(x in -50_000.0..50_000.0f64, y in -50_000.0..50_000.0f64,
                                     edge in 10.0..500.0f64) {
        let g = HexGrid::new(edge);
        let p = Xy::new(x, y);
        let c = g.cell_of(p);
        prop_assert!(g.centroid(c).dist(&p) <= edge + 1e-6);
    }

    /// Cell assignment is stable: the centroid maps back to the same cell.
    #[test]
    fn hex_centroid_roundtrip(q in -1000i32..1000, r in -1000i32..1000, edge in 10.0..500.0f64) {
        let g = HexGrid::new(edge);
        let c = CellId::from_coords(q, r);
        prop_assert_eq!(g.cell_of(g.centroid(c)), c);
    }

    /// Hex distance is a metric: symmetric and triangle inequality holds.
    #[test]
    fn hex_distance_is_metric(a in (-200i32..200, -200i32..200),
                              b in (-200i32..200, -200i32..200),
                              c in (-200i32..200, -200i32..200)) {
        let g = HexGrid::new(75.0);
        let (ca, cb, cc) = (
            CellId::from_coords(a.0, a.1),
            CellId::from_coords(b.0, b.1),
            CellId::from_coords(c.0, c.1),
        );
        prop_assert_eq!(g.grid_distance(ca, cb), g.grid_distance(cb, ca));
        prop_assert!(g.grid_distance(ca, cc) <= g.grid_distance(ca, cb) + g.grid_distance(cb, cc));
        prop_assert_eq!(g.grid_distance(ca, ca), 0);
    }

    /// Lines between any two cells are connected chains of neighbors with the
    /// right endpoints.
    #[test]
    fn hex_line_connected(a in (-300i32..300, -300i32..300), b in (-300i32..300, -300i32..300)) {
        let g = HexGrid::new(75.0);
        let ca = CellId::from_coords(a.0, a.1);
        let cb = CellId::from_coords(b.0, b.1);
        let line = g.line(ca, cb);
        prop_assert_eq!(line[0], ca);
        prop_assert_eq!(*line.last().unwrap(), cb);
        for w in line.windows(2) {
            prop_assert_eq!(g.grid_distance(w[0], w[1]), 1);
        }
    }

    /// Square grid: same contract.
    #[test]
    fn square_point_within_circumradius(x in -50_000.0..50_000.0f64, y in -50_000.0..50_000.0f64,
                                        edge in 10.0..500.0f64) {
        let g = SquareGrid::new(edge);
        let p = Xy::new(x, y);
        let c = g.cell_of(p);
        prop_assert!(g.centroid(c).dist(&p) <= g.neighbor_spacing_m() / 2.0 * 1.0001 + 1e-6);
    }

    #[test]
    fn square_line_connected(a in (-300i32..300, -300i32..300), b in (-300i32..300, -300i32..300)) {
        let g = SquareGrid::new(120.0);
        let ca = CellId::from_coords(a.0, a.1);
        let cb = CellId::from_coords(b.0, b.1);
        let line = g.line(ca, cb);
        prop_assert_eq!(line[0], ca);
        prop_assert_eq!(*line.last().unwrap(), cb);
        prop_assert_eq!(line.len() as u32, g.grid_distance(ca, cb) + 1);
        for w in line.windows(2) {
            prop_assert_eq!(g.grid_distance(w[0], w[1]), 1);
        }
    }

    /// Rings tile disks exactly, for both tessellations.
    #[test]
    fn rings_tile_the_disk(q in -200i32..200, r in -200i32..200, radius in 0u32..6) {
        for grid in [&HexGrid::new(75.0) as &dyn Tessellation, &SquareGrid::new(120.0)] {
            let c = CellId::from_coords(q, r);
            let mut from_rings: Vec<CellId> =
                (0..=radius).flat_map(|k| grid.ring(c, k)).collect();
            from_rings.sort();
            from_rings.dedup();
            let mut disk = grid.disk(c, radius);
            disk.sort();
            prop_assert_eq!(from_rings, disk, "{} radius {}", grid.kind(), radius);
        }
    }

    /// Disks contain exactly the cells within the radius.
    #[test]
    fn hex_disk_membership(radius in 0u32..8) {
        let g = HexGrid::new(75.0);
        let c = CellId::from_coords(0, 0);
        let disk = g.disk(c, radius);
        prop_assert_eq!(disk.len() as u32, 3 * radius * (radius + 1) + 1);
        for m in disk {
            prop_assert!(g.grid_distance(c, m) <= radius);
        }
    }
}

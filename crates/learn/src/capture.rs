//! The crash-safe capture log: served traffic, durably queued for the
//! background trainer.
//!
//! An append-only segment log under one directory:
//!
//! * `capture.active` — the segment being written. Starts with an 12-byte
//!   header (`KAMELCAP` magic + a `u32` format version); every record is
//!   a CRC-framed blob: `[u32 len][u32 crc32c(payload)][payload]`, all
//!   little-endian.
//! * `NNNNNNNN.seg` — sealed segments, numbered in append order. Sealing
//!   is atomic: the active file is fsynced, then renamed into place via
//!   the checkpoint I/O seam ([`kamel::checkpoint::CkptIo`]), so the
//!   fault-injection shim can kill the process at any point and reopening
//!   recovers everything durable.
//! * A **byte cap** bounds the whole directory: once sealed segments push
//!   the total past `max_bytes`, the oldest sealed segments are deleted —
//!   drop-oldest, never block. Capture loss is always acceptable; slowing
//!   serving never is.
//!
//! Reopening tolerates a torn tail: the active file is scanned frame by
//! frame and truncated at the first incomplete or CRC-corrupt frame, so a
//! crash mid-append costs at most the record being written.
//!
//! The format is hand-encoded (no serde): capture must stay `std`-only so
//! the durability matrix runs everywhere the checkpoint tests do.

use kamel::checkpoint::{crc32c, CkptIo, RealIo};
use std::collections::VecDeque;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Magic + version prefix of every segment file.
const SEGMENT_MAGIC: &[u8; 8] = b"KAMELCAP";
/// Bump on any incompatible record-encoding change.
const FORMAT_VERSION: u32 = 1;
/// Header length: magic + version.
const HEADER_LEN: u64 = 12;
/// Frame prefix: payload length + CRC32C.
const FRAME_PREFIX: usize = 8;
/// Hard sanity bound on one record's payload (a trajectory of ~40k fixes).
const MAX_PAYLOAD: u32 = 4 << 20;

/// What kind of traffic a record captures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordKind {
    /// A completed `/v1/impute` answer: `sparse` request, imputed
    /// `answer`, and the beam confidence of the weakest gap.
    Impute,
    /// A `POST /v1/feedback` correction: `sparse` request and the dense
    /// ground-truth `answer`.
    Feedback,
}

/// One captured request, the unit the trainer consumes.
#[derive(Debug, Clone, PartialEq)]
pub struct CaptureRecord {
    /// Impute answer or feedback ground truth.
    pub kind: RecordKind,
    /// Capture wall-clock, milliseconds since the epoch.
    pub unix_ms: u64,
    /// Minimum beam confidence across the answer's gaps (1.0 = every gap
    /// trivial or highly confident; 0.0 = some gap failed). Unused (0.0)
    /// for feedback records.
    pub confidence: f64,
    /// Gap-context cell ids of the sparse trajectory, when the producer
    /// could resolve them (empty otherwise — the trainer re-derives cells
    /// from the checkpoint's tokenizer at drain time).
    pub cells: Vec<u64>,
    /// The sparse request fixes as `(lat, lng, t)` triples.
    pub sparse: Vec<[f64; 3]>,
    /// The imputed answer (`Impute`) or ground truth (`Feedback`) fixes.
    pub answer: Vec<[f64; 3]>,
}

impl CaptureRecord {
    /// Serialized payload (excluding the CRC frame).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(
            1 + 8 + 8 + 4 + self.cells.len() * 8
                + 8 + (self.sparse.len() + self.answer.len()) * 24,
        );
        out.push(match self.kind {
            RecordKind::Impute => 0u8,
            RecordKind::Feedback => 1u8,
        });
        out.extend_from_slice(&self.unix_ms.to_le_bytes());
        out.extend_from_slice(&self.confidence.to_le_bytes());
        out.extend_from_slice(&(self.cells.len() as u32).to_le_bytes());
        for c in &self.cells {
            out.extend_from_slice(&c.to_le_bytes());
        }
        for traj in [&self.sparse, &self.answer] {
            out.extend_from_slice(&(traj.len() as u32).to_le_bytes());
            for p in traj.iter() {
                for v in p {
                    out.extend_from_slice(&v.to_le_bytes());
                }
            }
        }
        out
    }

    /// Inverse of [`CaptureRecord::encode`]; `None` on any malformation.
    pub fn decode(payload: &[u8]) -> Option<Self> {
        let mut at = 0usize;
        let u8_at = |at: &mut usize| -> Option<u8> {
            let v = *payload.get(*at)?;
            *at += 1;
            Some(v)
        };
        fn u32_at(payload: &[u8], at: &mut usize) -> Option<u32> {
            let b = payload.get(*at..*at + 4)?;
            *at += 4;
            Some(u32::from_le_bytes(b.try_into().ok()?))
        }
        fn u64_at(payload: &[u8], at: &mut usize) -> Option<u64> {
            let b = payload.get(*at..*at + 8)?;
            *at += 8;
            Some(u64::from_le_bytes(b.try_into().ok()?))
        }
        fn f64_at(payload: &[u8], at: &mut usize) -> Option<f64> {
            Some(f64::from_bits(u64_at(payload, at)?))
        }
        let kind = match u8_at(&mut at)? {
            0 => RecordKind::Impute,
            1 => RecordKind::Feedback,
            _ => return None,
        };
        let unix_ms = u64_at(payload, &mut at)?;
        let confidence = f64_at(payload, &mut at)?;
        let ncells = u32_at(payload, &mut at)? as usize;
        let mut cells = Vec::with_capacity(ncells.min(1 << 16));
        for _ in 0..ncells {
            cells.push(u64_at(payload, &mut at)?);
        }
        let mut trajs = [Vec::new(), Vec::new()];
        for traj in &mut trajs {
            let n = u32_at(payload, &mut at)? as usize;
            traj.reserve(n.min(1 << 16));
            for _ in 0..n {
                let lat = f64_at(payload, &mut at)?;
                let lng = f64_at(payload, &mut at)?;
                let t = f64_at(payload, &mut at)?;
                traj.push([lat, lng, t]);
            }
        }
        if at != payload.len() {
            return None; // trailing garbage
        }
        let [sparse, answer] = trajs;
        Some(Self {
            kind,
            unix_ms,
            confidence,
            cells,
            sparse,
            answer,
        })
    }

    /// Bytes this record occupies on disk (frame included).
    pub fn framed_len(&self) -> u64 {
        (FRAME_PREFIX + self.encode().len()) as u64
    }
}

/// One sealed segment on disk.
#[derive(Debug, Clone)]
struct Segment {
    seq: u64,
    bytes: u64,
    records: u64,
}

/// Capture-log sizing.
#[derive(Debug, Clone)]
pub struct CaptureConfig {
    /// Directory holding the active file and sealed segments (created on
    /// open).
    pub dir: PathBuf,
    /// Total on-disk budget; past it the oldest sealed segments are
    /// deleted (drop-oldest).
    pub max_bytes: u64,
    /// Seal the active file once it grows past this.
    pub segment_bytes: u64,
}

impl CaptureConfig {
    /// Defaults: 64 MiB total, 1 MiB segments.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            max_bytes: 64 << 20,
            segment_bytes: 1 << 20,
        }
    }
}

/// The single-owner capture log (producers reach it through the learner's
/// bounded channel, never directly).
pub struct CaptureLog {
    config: CaptureConfig,
    io: Box<dyn CkptIo + Send>,
    active: File,
    active_bytes: u64,
    active_records: u64,
    sealed: VecDeque<Segment>,
    next_seq: u64,
    /// Records lost to the byte cap (drop-oldest) since open.
    dropped_records: u64,
}

impl CaptureLog {
    /// Opens (or creates) the log at `config.dir` with real I/O.
    pub fn open(config: CaptureConfig) -> std::io::Result<Self> {
        Self::open_with(config, Box::new(RealIo))
    }

    /// Opens with an injectable I/O shim (the durability tests).
    pub fn open_with(
        config: CaptureConfig,
        io: Box<dyn CkptIo + Send>,
    ) -> std::io::Result<Self> {
        std::fs::create_dir_all(&config.dir)?;
        // Inventory sealed segments.
        let mut sealed: Vec<Segment> = Vec::new();
        for entry in std::fs::read_dir(&config.dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some(stem) = name.strip_suffix(".seg") else {
                continue;
            };
            let Ok(seq) = stem.parse::<u64>() else { continue };
            let (records, bytes) = scan_segment(&entry.path());
            sealed.push(Segment {
                seq,
                bytes,
                records,
            });
        }
        sealed.sort_by_key(|s| s.seq);
        let next_seq = sealed.last().map_or(0, |s| s.seq + 1);
        // Recover the active file: truncate any torn tail, then append.
        let active_path = config.dir.join("capture.active");
        let (active, active_bytes, active_records) = open_active(&active_path)?;
        Ok(Self {
            config,
            io,
            active,
            active_bytes,
            active_records,
            sealed: sealed.into(),
            next_seq,
            dropped_records: 0,
        })
    }

    /// Appends one record, sealing and rotating as needed. Never blocks on
    /// anything but local file I/O; callers on the serving path must go
    /// through the learner's bounded channel instead.
    pub fn append(&mut self, record: &CaptureRecord) -> std::io::Result<()> {
        let payload = record.encode();
        let mut frame = Vec::with_capacity(FRAME_PREFIX + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32c(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        self.io.write_all(&mut self.active, &frame)?;
        self.active_bytes += frame.len() as u64;
        self.active_records += 1;
        if self.active_bytes >= self.config.segment_bytes {
            self.seal()?;
        }
        self.enforce_cap();
        Ok(())
    }

    /// Seals the active file into a numbered segment (fsync + atomic
    /// rename through the I/O seam) and starts a fresh active file. A
    /// no-op while the active file holds no records.
    pub fn seal(&mut self) -> std::io::Result<()> {
        if self.active_records == 0 {
            return Ok(());
        }
        self.io.sync(&self.active)?;
        let seq = self.next_seq;
        let from = self.config.dir.join("capture.active");
        let to = self.segment_path(seq);
        self.io.before_rotate()?;
        self.io.rename(&from, &to)?;
        self.sealed.push_back(Segment {
            seq,
            bytes: self.active_bytes,
            records: self.active_records,
        });
        self.next_seq = seq + 1;
        let (active, bytes, records) = open_active(&from)?;
        self.active = active;
        self.active_bytes = bytes;
        self.active_records = records;
        Ok(())
    }

    /// Drop-oldest: deletes sealed segments until the directory fits the
    /// byte cap. The active file is never dropped.
    fn enforce_cap(&mut self) {
        while self.total_bytes() > self.config.max_bytes {
            let Some(oldest) = self.sealed.pop_front() else {
                break;
            };
            let _ = std::fs::remove_file(self.segment_path(oldest.seq));
            self.dropped_records += oldest.records;
        }
    }

    /// Drains every durable record, oldest first: seals the active file,
    /// reads all sealed segments, deletes them, and returns the decoded
    /// records. A segment scan stops at its first corrupt frame (framing
    /// alignment is untrustworthy past it); the lost tail counts as
    /// dropped.
    pub fn drain(&mut self) -> std::io::Result<Vec<CaptureRecord>> {
        self.seal()?;
        let mut out = Vec::new();
        while let Some(seg) = self.sealed.pop_front() {
            let path = self.segment_path(seg.seq);
            let (records, _) = read_segment(&path);
            let got = records.len() as u64;
            if got < seg.records {
                self.dropped_records += seg.records - got;
            }
            out.extend(records);
            std::fs::remove_file(&path)?;
        }
        Ok(out)
    }

    /// Records currently queued (active + sealed).
    pub fn records(&self) -> u64 {
        self.active_records + self.sealed.iter().map(|s| s.records).sum::<u64>()
    }

    /// Bytes currently on disk (active + sealed).
    pub fn total_bytes(&self) -> u64 {
        self.active_bytes + self.sealed.iter().map(|s| s.bytes).sum::<u64>()
    }

    /// Records lost to the byte cap or to corrupt frames since open.
    pub fn dropped_records(&self) -> u64 {
        self.dropped_records
    }

    fn segment_path(&self, seq: u64) -> PathBuf {
        self.config.dir.join(format!("{seq:08}.seg"))
    }
}

/// Consumes every *sealed* segment under `dir`, oldest first: decodes
/// their records, deletes the files, and never touches `capture.active`.
///
/// This is the cross-process handoff for the standalone `kamel learn`
/// daemon: a capture-only serving process appends and seals segments,
/// and the trainer process drains them. Sealed files are immutable
/// (rename is the commit point), so the only contention is a concurrent
/// seal adding a new file — which a later drain picks up.
pub fn drain_sealed(dir: &Path) -> std::io::Result<Vec<CaptureRecord>> {
    let mut seqs: Vec<(u64, PathBuf)> = Vec::new();
    if !dir.exists() {
        return Ok(Vec::new());
    }
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        if let Some(seq) = name
            .strip_suffix(".seg")
            .and_then(|stem| stem.parse::<u64>().ok())
        {
            seqs.push((seq, path));
        }
    }
    seqs.sort_by_key(|&(seq, _)| seq);
    let mut out = Vec::new();
    for (_, path) in seqs {
        let (records, _) = read_segment(&path);
        out.extend(records);
        std::fs::remove_file(&path)?;
    }
    Ok(out)
}

/// Opens (creating if absent) an active file, recovering a torn tail:
/// scans frames from the header and truncates at the first bad one.
/// Returns the writable handle positioned at the end, plus the byte and
/// record counts of the surviving prefix.
fn open_active(path: &Path) -> std::io::Result<(File, u64, u64)> {
    let mut file = OpenOptions::new()
        .create(true)
        .read(true)
        .write(true)
        .truncate(false)
        .open(path)?;
    let len = file.metadata()?.len();
    if len < HEADER_LEN {
        // New (or hopelessly truncated) file: write a fresh header.
        file.set_len(0)?;
        file.seek(SeekFrom::Start(0))?;
        file.write_all(SEGMENT_MAGIC)?;
        file.write_all(&FORMAT_VERSION.to_le_bytes())?;
        return Ok((file, HEADER_LEN, 0));
    }
    let mut bytes = Vec::with_capacity(len as usize);
    file.seek(SeekFrom::Start(0))?;
    file.read_to_end(&mut bytes)?;
    let (records, good_len) = scan_frames(&bytes);
    if good_len < bytes.len() as u64 {
        file.set_len(good_len)?; // torn tail: drop it
    }
    file.seek(SeekFrom::Start(good_len))?;
    Ok((file, good_len, records))
}

/// Walks a segment's frames, returning `(valid records, byte offset of
/// the first invalid frame — i.e. the durable prefix length)`. A file
/// with a bad header scans as empty.
fn scan_frames(bytes: &[u8]) -> (u64, u64) {
    if bytes.len() < HEADER_LEN as usize
        || &bytes[..8] != SEGMENT_MAGIC
        || u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes")) != FORMAT_VERSION
    {
        return (0, 0);
    }
    let mut at = HEADER_LEN as usize;
    let mut records = 0u64;
    while let Some(prefix) = bytes.get(at..at + FRAME_PREFIX) {
        let len = u32::from_le_bytes(prefix[..4].try_into().expect("4 bytes"));
        let crc = u32::from_le_bytes(prefix[4..].try_into().expect("4 bytes"));
        if len > MAX_PAYLOAD {
            break;
        }
        let Some(payload) = bytes.get(at + FRAME_PREFIX..at + FRAME_PREFIX + len as usize)
        else {
            break;
        };
        if crc32c(payload) != crc {
            break;
        }
        records += 1;
        at += FRAME_PREFIX + len as usize;
    }
    (records, at as u64)
}

/// Counts a sealed segment's valid records and on-disk bytes.
fn scan_segment(path: &Path) -> (u64, u64) {
    let Ok(bytes) = std::fs::read(path) else {
        return (0, 0);
    };
    let (records, _) = scan_frames(&bytes);
    (records, bytes.len() as u64)
}

/// Decodes every valid record of a segment, stopping at the first bad
/// frame; `bool` is true when the whole file was valid.
fn read_segment(path: &Path) -> (Vec<CaptureRecord>, bool) {
    let Ok(bytes) = std::fs::read(path) else {
        return (Vec::new(), false);
    };
    let mut out = Vec::new();
    let (_, good_len) = scan_frames(&bytes);
    let mut at = HEADER_LEN as usize;
    while (at as u64) < good_len {
        let len =
            u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4 bytes")) as usize;
        if let Some(rec) = CaptureRecord::decode(&bytes[at + FRAME_PREFIX..at + FRAME_PREFIX + len])
        {
            out.push(rec);
        }
        at += FRAME_PREFIX + len;
    }
    (out, good_len == bytes.len() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kamel::checkpoint::faults::{Fault, FaultyIo, CRASH};

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "kamel_capture_{tag}_{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn record(i: u64) -> CaptureRecord {
        CaptureRecord {
            kind: if i % 2 == 0 {
                RecordKind::Impute
            } else {
                RecordKind::Feedback
            },
            unix_ms: 1_700_000_000_000 + i,
            confidence: (i as f64 / 100.0).min(1.0),
            cells: vec![i, i + 1, i + 2],
            sparse: vec![[41.15, -8.61 + i as f64 * 1e-3, i as f64]; 3],
            answer: vec![[41.15, -8.61 + i as f64 * 1e-3, i as f64]; 7],
        }
    }

    #[test]
    fn record_roundtrip_is_exact() {
        for i in 0..5 {
            let rec = record(i);
            let decoded = CaptureRecord::decode(&rec.encode()).expect("decodes");
            assert_eq!(decoded, rec);
        }
        // Trailing garbage and truncation are both rejected.
        let mut bytes = record(0).encode();
        bytes.push(0);
        assert!(CaptureRecord::decode(&bytes).is_none());
        let bytes = record(0).encode();
        assert!(CaptureRecord::decode(&bytes[..bytes.len() - 1]).is_none());
    }

    #[test]
    fn append_drain_roundtrip() {
        let dir = tempdir("roundtrip");
        let mut log = CaptureLog::open(CaptureConfig::new(&dir)).unwrap();
        let records: Vec<CaptureRecord> = (0..20).map(record).collect();
        for r in &records {
            log.append(r).unwrap();
        }
        assert_eq!(log.records(), 20);
        let drained = log.drain().unwrap();
        assert_eq!(drained, records);
        assert_eq!(log.records(), 0);
        // Drained segments are gone from disk.
        assert!(std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .all(|e| e.file_name() == "capture.active"));
    }

    #[test]
    fn reopen_recovers_everything_durable() {
        let dir = tempdir("reopen");
        let cfg = CaptureConfig {
            segment_bytes: 400, // force several sealed segments
            ..CaptureConfig::new(&dir)
        };
        let records: Vec<CaptureRecord> = (0..10).map(record).collect();
        {
            let mut log = CaptureLog::open(cfg.clone()).unwrap();
            for r in &records {
                log.append(r).unwrap();
            }
            assert!(log.records() == 10);
            // Dropped without drain — simulating a process exit.
        }
        let mut log = CaptureLog::open(cfg).unwrap();
        assert_eq!(log.records(), 10, "reopen must see every record");
        assert_eq!(log.drain().unwrap(), records);
    }

    #[test]
    fn torn_tail_is_truncated_on_reopen() {
        let dir = tempdir("torn");
        let cfg = CaptureConfig::new(&dir);
        {
            let mut log = CaptureLog::open(cfg.clone()).unwrap();
            for i in 0..5 {
                log.append(&record(i)).unwrap();
            }
        }
        // Tear the tail: chop the last 11 bytes mid-frame.
        let path = dir.join("capture.active");
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 11]).unwrap();
        let mut log = CaptureLog::open(cfg.clone()).unwrap();
        assert_eq!(log.records(), 4, "the torn record is dropped");
        let drained = log.drain().unwrap();
        assert_eq!(drained, (0..4).map(record).collect::<Vec<_>>());
        // The log keeps working after recovery.
        log.append(&record(99)).unwrap();
        assert_eq!(log.records(), 1);
    }

    #[test]
    fn corrupt_frame_truncates_the_scan() {
        let dir = tempdir("corrupt");
        let cfg = CaptureConfig::new(&dir);
        {
            let mut log = CaptureLog::open(cfg.clone()).unwrap();
            for i in 0..3 {
                log.append(&record(i)).unwrap();
            }
        }
        // Flip one payload byte of the middle record.
        let path = dir.join("capture.active");
        let mut bytes = std::fs::read(&path).unwrap();
        let first_len = u32::from_le_bytes(
            bytes[HEADER_LEN as usize..HEADER_LEN as usize + 4]
                .try_into()
                .unwrap(),
        ) as usize;
        let middle = HEADER_LEN as usize + FRAME_PREFIX + first_len + FRAME_PREFIX + 3;
        bytes[middle] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        // Scanning stops at the corrupt frame: only the prefix survives.
        let mut log = CaptureLog::open(cfg).unwrap();
        assert_eq!(log.records(), 1);
        assert_eq!(log.drain().unwrap(), vec![record(0)]);
    }

    #[test]
    fn byte_cap_drops_oldest_sealed_segments() {
        let dir = tempdir("cap");
        let per_record = record(0).framed_len();
        let cfg = CaptureConfig {
            // Room for ~2 records per segment, ~3 segments total.
            segment_bytes: HEADER_LEN + per_record * 2,
            max_bytes: (HEADER_LEN + per_record * 2) * 3,
            ..CaptureConfig::new(&dir)
        };
        let mut log = CaptureLog::open(cfg).unwrap();
        for i in 0..40 {
            log.append(&record(i)).unwrap();
        }
        assert!(
            log.total_bytes() <= (HEADER_LEN + per_record * 2) * 3 + per_record,
            "cap not enforced: {} bytes",
            log.total_bytes()
        );
        assert!(log.dropped_records() > 0, "nothing was dropped");
        // The survivors are the NEWEST records (drop-oldest).
        let drained = log.drain().unwrap();
        assert!(!drained.is_empty());
        assert_eq!(drained.last(), Some(&record(39)));
        let first_kept = drained[0].unix_ms - 1_700_000_000_000;
        assert!(first_kept > 0, "oldest record must have been dropped");
    }

    #[test]
    fn injected_crash_during_seal_loses_nothing_durable() {
        let dir = tempdir("crash_seal");
        // Each test record frames to ~301 bytes: the third append crosses
        // the 700-byte threshold and trips the (crashing) seal, with two
        // full records already durable ahead of it.
        let cfg = CaptureConfig {
            segment_bytes: 700,
            ..CaptureConfig::new(&dir)
        };
        // Write a few records, then crash exactly before the seal rename.
        {
            let mut log = CaptureLog::open_with(
                cfg.clone(),
                Box::new(FaultyIo::new(Fault::CrashBeforeRename)),
            )
            .unwrap();
            let mut crashed = false;
            for i in 0..10 {
                match log.append(&record(i)) {
                    Ok(()) => {}
                    Err(e) => {
                        assert_eq!(e.kind(), CRASH);
                        crashed = true;
                        break;
                    }
                }
            }
            assert!(crashed, "the segment-bytes threshold must trip a seal");
        }
        // Reopen with healthy I/O: every appended record is still there
        // (the rename never ran, so they all sit in the active file).
        let mut log = CaptureLog::open(cfg).unwrap();
        assert!(log.records() >= 2);
        let drained = log.drain().unwrap();
        for (i, rec) in drained.iter().enumerate() {
            assert_eq!(*rec, record(i as u64));
        }
    }

    #[test]
    fn injected_torn_write_recovers_prefix() {
        let dir = tempdir("torn_write");
        let cfg = CaptureConfig::new(&dir);
        let keep = (HEADER_LEN + record(0).framed_len() + record(1).framed_len() + 5) as usize;
        {
            let mut log = CaptureLog::open_with(
                cfg.clone(),
                Box::new(FaultyIo::new(Fault::ShortWrite { keep })),
            )
            .unwrap();
            let mut crashed = false;
            for i in 0..5 {
                if let Err(e) = log.append(&record(i)) {
                    assert_eq!(e.kind(), CRASH);
                    crashed = true;
                    break;
                }
            }
            assert!(crashed);
        }
        let mut log = CaptureLog::open(cfg).unwrap();
        // `keep` admits the first two frames in full plus a torn prefix
        // of the third; recovery truncates the tear.
        assert_eq!(log.records(), 2);
        assert_eq!(log.drain().unwrap(), vec![record(0), record(1)]);
    }

    #[test]
    fn drain_sealed_consumes_only_sealed_segments() {
        let dir = tempdir("drain_sealed");
        let cfg = CaptureConfig {
            segment_bytes: 700, // two ~301-byte records per sealed segment
            ..CaptureConfig::new(&dir)
        };
        let mut log = CaptureLog::open(cfg).unwrap();
        for i in 0..5 {
            log.append(&record(i)).unwrap();
        }
        // Some prefix of the records lives in sealed segments; the tail
        // sits in the writer-owned active file, which a cross-process
        // drain must never touch.
        let sealed = drain_sealed(&dir).unwrap();
        assert!(!sealed.is_empty() && sealed.len() < 5);
        assert_eq!(sealed, (0..sealed.len() as u64).map(record).collect::<Vec<_>>());
        assert!(dir.join("capture.active").exists());
        assert!(drain_sealed(&dir).unwrap().is_empty(), "segments deleted");
        // Sealing hands the tail over; nothing is lost or reordered.
        log.seal().unwrap();
        let tail = drain_sealed(&dir).unwrap();
        assert_eq!(tail, (sealed.len() as u64..5).map(record).collect::<Vec<_>>());
        // A directory that does not exist yet drains to nothing.
        assert!(drain_sealed(&dir.join("missing")).unwrap().is_empty());
    }
}

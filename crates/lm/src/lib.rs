//! Masked-token language models for KAMEL.
//!
//! KAMEL treats a trajectory as a sentence of hexagonal-cell tokens and asks
//! a language model to fill a masked slot (§1–2). This crate defines that
//! contract and provides two interchangeable engines:
//!
//! * [`BertMlm`] — the paper's engine: the from-scratch BERT of
//!   [`kamel_nn`] trained on tokenized trajectories with the standard MLM
//!   recipe. Faithful but CPU-expensive; used by the quickstart, tests, and
//!   the dedicated BERT benchmarks.
//! * [`NgramMlm`] — a bidirectional interpolated n-gram MLM. It estimates
//!   `P(token | left context, right context)` from trajectory counts, which
//!   is the same conditional the BERT head produces for a masked slot. It
//!   trains in milliseconds, making the paper's full evaluation sweeps
//!   feasible on CPU (see DESIGN.md §2, substitution 2).
//!
//! Both are wrapped in the serializable [`TrainedModel`] enum so KAMEL's
//! model repository (§4) can persist them, and both are built through
//! [`EngineConfig`], the trainer the Partitioning module invokes per
//! pyramid cell.
//!
//! Tokens at this layer are opaque `u64` keys (KAMEL passes raw
//! `CellId`s); each model maintains its own [`Vocab`] internally.

#![warn(missing_docs)]

pub mod bert_engine;
pub mod eval;
pub mod ngram;
pub mod vocab;

pub use bert_engine::{BertEngineConfig, BertMlm, BertScale};
pub use eval::{masked_quality, MlmQuality};
pub use ngram::{NgramConfig, NgramMlm};
pub use vocab::Vocab;

use serde::{Deserialize, Serialize};

/// A candidate token for a masked slot, with its model probability.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Candidate {
    /// The opaque token key (a KAMEL cell id).
    pub key: u64,
    /// Model probability of this token filling the slot.
    pub prob: f64,
}

/// The contract KAMEL's imputation modules require: given a token sequence
/// with one masked slot, return a ranked probability distribution over
/// candidate tokens ("calling BERT", §2).
pub trait MaskedTokenModel: Send + Sync {
    /// Predicts the `top_k` most likely tokens for position `pos` of `seq`
    /// (the value at `seq[pos]` is ignored — it is the masked slot).
    /// Candidates are sorted by descending probability.
    ///
    /// Implementations must tolerate out-of-vocabulary context tokens.
    fn predict_masked(&self, seq: &[u64], pos: usize, top_k: usize) -> Vec<Candidate>;

    /// Batched variant of [`MaskedTokenModel::predict_masked`]: answers many
    /// `(sequence, masked position)` requests in one call. Element `i` of
    /// the result is exactly `predict_masked(&reqs[i].0, reqs[i].1, top_k)`.
    ///
    /// The default implementation loops over the single-request method, so
    /// every engine gets the batched API with identical results for free.
    /// Engines with a fused forward ([`BertMlm`]) override it to push the
    /// whole batch through one model call — still bit-identical.
    fn predict_masked_batch(&self, reqs: &[(Vec<u64>, usize)], top_k: usize) -> Vec<Vec<Candidate>> {
        reqs.iter()
            .map(|(seq, pos)| self.predict_masked(seq, *pos, top_k))
            .collect()
    }

    /// Number of distinct regular tokens this model was trained on.
    fn vocab_len(&self) -> usize;

    /// Total number of training tokens seen (the paper's "training data
    /// factor" numerator, §1 challenge 2).
    fn trained_tokens(&self) -> u64;
}

/// A trained model in serializable form, as stored in the model repository.
// Boxed variants: the engines differ hugely in inline size, and the
// repository stores many of these.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum TrainedModel {
    /// Bidirectional n-gram engine.
    Ngram(Box<NgramMlm>),
    /// BERT engine.
    Bert(Box<BertMlm>),
}

impl TrainedModel {
    /// Switches a BERT model to the int8 weight-quantized serving path.
    /// Returns `true` when the engine supports quantization (BERT only;
    /// n-gram models have no weights to quantize and are unaffected).
    /// Accuracy gating belongs to the caller — see
    /// [`TrainedModel::quantization_agreement`].
    pub fn enable_quantization(&mut self) -> bool {
        match self {
            TrainedModel::Ngram(_) => false,
            TrainedModel::Bert(m) => {
                m.enable_quantization();
                true
            }
        }
    }

    /// Reverts a BERT model to the f32 serving path (no-op for n-gram).
    pub fn disable_quantization(&mut self) {
        if let TrainedModel::Bert(m) = self {
            m.disable_quantization();
        }
    }

    /// Whether predictions currently run a quantized path.
    pub fn is_quantized(&self) -> bool {
        match self {
            TrainedModel::Ngram(_) => false,
            TrainedModel::Bert(m) => m.is_quantized(),
        }
    }

    /// Top-1 agreement between the f32 and int8 paths over seeded random
    /// probes; `None` for engines without a quantized path.
    pub fn quantization_agreement(&self, probes: usize, seed: u64) -> Option<f64> {
        match self {
            TrainedModel::Ngram(_) => None,
            TrainedModel::Bert(m) => Some(m.quantization_agreement(probes, seed)),
        }
    }

    /// The int8 artifact this model currently *serves* with, or `None`
    /// when it serves f32 (n-gram engines, quantization disabled, or a
    /// rejected gate). `kamel pack` serializes exactly this next to the
    /// cell's f32 record, so a store materializing the record reproduces
    /// the packed system's serving path — including its gate decisions —
    /// rather than re-deciding quantization on its own.
    pub fn quant_artifact(&self) -> Option<kamel_nn::QuantizedBertMlm> {
        match self {
            TrainedModel::Ngram(_) => None,
            TrainedModel::Bert(m) => m.installed_quant_artifact(),
        }
    }

    /// Installs pre-built int8 weights (e.g. a zero-copy view into a
    /// mapped store record) and enables the quantized path. Errors for
    /// engines without a quantized path or on a shape mismatch.
    pub fn install_quantization(
        &mut self,
        quant: kamel_nn::QuantizedBertMlm,
    ) -> Result<(), String> {
        match self {
            TrainedModel::Ngram(_) => Err("n-gram models have no quantized path".to_string()),
            TrainedModel::Bert(m) => m.install_quantization(quant),
        }
    }
}

impl MaskedTokenModel for TrainedModel {
    fn predict_masked(&self, seq: &[u64], pos: usize, top_k: usize) -> Vec<Candidate> {
        match self {
            TrainedModel::Ngram(m) => m.predict_masked(seq, pos, top_k),
            TrainedModel::Bert(m) => m.predict_masked(seq, pos, top_k),
        }
    }

    fn predict_masked_batch(&self, reqs: &[(Vec<u64>, usize)], top_k: usize) -> Vec<Vec<Candidate>> {
        match self {
            TrainedModel::Ngram(m) => m.predict_masked_batch(reqs, top_k),
            TrainedModel::Bert(m) => m.predict_masked_batch(reqs, top_k),
        }
    }

    fn vocab_len(&self) -> usize {
        match self {
            TrainedModel::Ngram(m) => m.vocab_len(),
            TrainedModel::Bert(m) => m.vocab_len(),
        }
    }

    fn trained_tokens(&self) -> u64 {
        match self {
            TrainedModel::Ngram(m) => m.trained_tokens(),
            TrainedModel::Bert(m) => m.trained_tokens(),
        }
    }
}

/// Which engine the Partitioning module trains for each pyramid cell, with
/// its hyper-parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum EngineConfig {
    /// Train [`NgramMlm`] models (default for large sweeps).
    Ngram(NgramConfig),
    /// Train [`BertMlm`] models (the paper's engine).
    Bert(BertEngineConfig),
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig::Ngram(NgramConfig::default())
    }
}

impl EngineConfig {
    /// Trains a model of the configured kind on a corpus of token-key
    /// sequences.
    pub fn train(&self, corpus: &[Vec<u64>]) -> TrainedModel {
        match self {
            EngineConfig::Ngram(cfg) => TrainedModel::Ngram(Box::new(NgramMlm::train(cfg, corpus))),
            EngineConfig::Bert(cfg) => TrainedModel::Bert(Box::new(BertMlm::train(cfg, corpus))),
        }
    }

    /// Short engine name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            EngineConfig::Ngram(_) => "ngram",
            EngineConfig::Bert(_) => "bert",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Both engines learn the same trivial chain corpus and rank the true
    /// missing token first.
    #[test]
    fn engines_agree_on_a_chain_corpus() {
        let corpus: Vec<Vec<u64>> = (0..30).map(|_| vec![100, 200, 300, 400, 500]).collect();
        for engine in [
            EngineConfig::Ngram(NgramConfig::default()),
            EngineConfig::Bert(BertEngineConfig::for_tests()),
        ] {
            let model = engine.train(&corpus);
            let preds = model.predict_masked(&[100, 200, 0, 400, 500], 2, 3);
            assert!(!preds.is_empty(), "{} produced nothing", engine.name());
            assert_eq!(
                preds[0].key, 300,
                "{} failed to learn the chain: {preds:?}",
                engine.name()
            );
        }
    }

    #[test]
    fn trained_model_roundtrips_through_serde() {
        let corpus: Vec<Vec<u64>> = (0..10).map(|_| vec![7, 8, 9]).collect();
        let model = EngineConfig::default().train(&corpus);
        let json = serde_json::to_string(&model).expect("serialize");
        let back: TrainedModel = serde_json::from_str(&json).expect("deserialize");
        let a = model.predict_masked(&[7, 0, 9], 1, 2);
        let b = back.predict_masked(&[7, 0, 9], 1, 2);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.key, y.key);
            assert!((x.prob - y.prob).abs() < 1e-12);
        }
    }
}

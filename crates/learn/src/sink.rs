//! The serving-side capture producer: a [`kamel_server::LearnSink`] that
//! turns completed answers into [`CaptureRecord`]s and `try_send`s them
//! into the learner's bounded queue.
//!
//! Nothing here ever blocks: a full queue drops the record and bumps
//! `dropped_total`. The serving path's only cost is encoding a record and
//! one failed/successful channel push.

use crate::capture::{CaptureRecord, RecordKind};
use kamel::ImputedTrajectory;
use kamel_geo::{GpsPoint, LatLng, Trajectory};
use kamel_server::{LearnSink, LearningInfo};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, RwLock};

/// Resolves a sparse trajectory's gap-context cells, when the producer
/// can (the CLI wires a weak reference to the serving engine). `None`
/// leaves cell attribution to the trainer.
pub type ContextFn = Box<dyn Fn(&Trajectory) -> Option<Vec<u64>> + Send + Sync>;

/// Shared counters behind every observability surface
/// (`kamel_learn_*` metrics, the `/v1/info` `learning` block).
#[derive(Debug, Default)]
pub struct LearnStats {
    /// Records accepted into the queue.
    pub captured_total: AtomicU64,
    /// Records dropped by queue backpressure.
    pub dropped_total: AtomicU64,
    /// Records currently in the channel (not yet durable in the log).
    pub queue_records: AtomicU64,
    /// Bytes currently held by the capture log.
    pub queue_bytes: AtomicU64,
    /// Successful retrain + rollout passes.
    pub retrains_total: AtomicU64,
    /// Passes aborted by the regression gate.
    pub rollbacks_total: AtomicU64,
    /// Cells retrained across all passes.
    pub cells_retrained_total: AtomicU64,
    /// Generation after the last rollout.
    pub last_generation: AtomicU64,
    /// Wall-clock ms of the last rollout.
    pub last_retrain_unix_ms: AtomicU64,
}

impl LearnStats {
    /// Snapshot for the wire surfaces.
    pub fn info(&self) -> LearningInfo {
        LearningInfo {
            captured_total: self.captured_total.load(Ordering::Relaxed),
            dropped_total: self.dropped_total.load(Ordering::Relaxed),
            queue_records: self.queue_records.load(Ordering::Relaxed),
            queue_bytes: self.queue_bytes.load(Ordering::Relaxed),
            retrains_total: self.retrains_total.load(Ordering::Relaxed),
            rollbacks_total: self.rollbacks_total.load(Ordering::Relaxed),
            cells_retrained_total: self.cells_retrained_total.load(Ordering::Relaxed),
            last_generation: self.last_generation.load(Ordering::Relaxed),
            last_retrain_unix_ms: self.last_retrain_unix_ms.load(Ordering::Relaxed),
        }
    }
}

/// Milliseconds since the Unix epoch.
pub fn unix_ms() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// Converts a trajectory to the capture log's `(lat, lng, t)` triples.
pub fn traj_to_points(traj: &Trajectory) -> Vec<[f64; 3]> {
    traj.points
        .iter()
        .map(|p| [p.pos.lat, p.pos.lng, p.t])
        .collect()
}

/// Inverse of [`traj_to_points`].
pub fn points_to_traj(points: &[[f64; 3]]) -> Trajectory {
    Trajectory::new(
        points
            .iter()
            .map(|&[lat, lng, t]| GpsPoint::new(LatLng::new(lat, lng), t))
            .collect(),
    )
}

/// The producer half of the learning loop.
pub struct CaptureSink {
    tx: SyncSender<CaptureRecord>,
    stats: Arc<LearnStats>,
    context: RwLock<Option<ContextFn>>,
}

impl CaptureSink {
    /// Creates the bounded capture channel: the sink for the serving
    /// engine, and the receiver the [`crate::Learner`] drains. `queue_cap`
    /// bounds records buffered in memory between sink and log.
    pub fn channel(queue_cap: usize) -> (Arc<CaptureSink>, Receiver<CaptureRecord>) {
        let (tx, rx) = sync_channel(queue_cap.max(1));
        let sink = Arc::new(CaptureSink {
            tx,
            stats: Arc::new(LearnStats::default()),
            context: RwLock::new(None),
        });
        (sink, rx)
    }

    /// Wires the gap-context resolver (typically a weak reference to the
    /// serving engine, so captured records carry their cells without the
    /// trainer having to re-derive them).
    pub fn set_context(&self, f: ContextFn) {
        *self.context.write().expect("context lock poisoned") = Some(f);
    }

    /// The shared counters (hand these to the learner thread).
    pub fn stats(&self) -> Arc<LearnStats> {
        Arc::clone(&self.stats)
    }

    fn cells_of(&self, sparse: &Trajectory) -> Vec<u64> {
        self.context
            .read()
            .ok()
            .and_then(|g| g.as_ref().and_then(|f| f(sparse)))
            .unwrap_or_default()
    }

    /// Non-blocking push; a full queue drops the record.
    pub fn push(&self, record: CaptureRecord) {
        match self.tx.try_send(record) {
            Ok(()) => {
                self.stats.captured_total.fetch_add(1, Ordering::Relaxed);
                self.stats.queue_records.fetch_add(1, Ordering::Relaxed);
            }
            Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => {
                self.stats.dropped_total.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

impl LearnSink for CaptureSink {
    fn on_impute(&self, sparse: &Trajectory, result: &ImputedTrajectory) {
        if result.gaps.is_empty() {
            return; // nothing was imputed; nothing to learn from
        }
        // The weakest gap bounds the whole answer's trustworthiness.
        let confidence = result
            .gaps
            .iter()
            .map(|g| g.outcome.confidence)
            .fold(1.0_f64, f64::min);
        self.push(CaptureRecord {
            kind: RecordKind::Impute,
            unix_ms: unix_ms(),
            confidence,
            cells: self.cells_of(sparse),
            sparse: traj_to_points(sparse),
            answer: traj_to_points(&result.trajectory),
        });
    }

    fn on_feedback(&self, sparse: &Trajectory, truth: &Trajectory) {
        self.push(CaptureRecord {
            kind: RecordKind::Feedback,
            unix_ms: unix_ms(),
            confidence: 0.0,
            cells: self.cells_of(sparse),
            sparse: traj_to_points(sparse),
            answer: traj_to_points(truth),
        });
    }

    fn learning(&self) -> LearningInfo {
        self.stats.info()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn traj(n: usize) -> Trajectory {
        Trajectory::new(
            (0..n)
                .map(|i| GpsPoint::from_parts(41.15, -8.61 + i as f64 * 0.01, i as f64 * 60.0))
                .collect(),
        )
    }

    #[test]
    fn trajectory_point_roundtrip() {
        let t = traj(7);
        assert_eq!(points_to_traj(&traj_to_points(&t)), t);
    }

    #[test]
    fn full_queue_drops_without_blocking() {
        let (sink, _rx) = CaptureSink::channel(2);
        let truth = traj(5);
        let sparse = truth.sparsify(2_000.0);
        let start = std::time::Instant::now();
        for _ in 0..50 {
            sink.on_feedback(&sparse, &truth);
        }
        // 2 accepted, 48 dropped, and nobody waited on anything.
        assert!(
            start.elapsed() < std::time::Duration::from_millis(500),
            "capture must never block the caller"
        );
        let info = sink.learning();
        assert_eq!(info.captured_total, 2);
        assert_eq!(info.dropped_total, 48);
        assert_eq!(info.queue_records, 2);
    }
}

//! The BERT engine: KAMEL's paper-faithful masked-token model.
//!
//! Wraps [`kamel_nn::BertMlmModel`] with a [`Vocab`]: training maps cell
//! keys to dense ids, brackets sequences with `[CLS]`/`[SEP]`, and runs the
//! standard MLM recipe; prediction inserts `[MASK]` at the gap and reads the
//! head's distribution back as cell keys.

use crate::vocab::Vocab;
use crate::{Candidate, MaskedTokenModel};
use kamel_nn::{
    BertConfig, BertMlmModel, InferScratch, MlmBatcher, QuantizedBertMlm, TrainOptions, Trainer,
};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::sync::Arc;

thread_local! {
    /// Per-thread inference scratch. `predict_masked` takes `&self` and is
    /// called concurrently (server workers, batch-imputation threads), so
    /// the arena cannot live in the model; a thread-local gives every
    /// caller warm, allocation-free buffers without locking.
    static INFER_SCRATCH: RefCell<InferScratch> = RefCell::new(InferScratch::new());
}

/// Model scale presets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BertScale {
    /// 32 hidden / 2 layers / 2 heads: seconds to train, for tests and the
    /// quickstart.
    Tiny,
    /// 64 hidden / 4 layers / 4 heads: minutes to train.
    Small,
    /// The paper's 768 / 12 / 12 deployment scale (TPU-class training; not
    /// used by the test suite).
    Paper,
}

/// Hyper-parameters for training a [`BertMlm`].
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct BertEngineConfig {
    /// Architecture scale.
    pub scale: BertScale,
    /// Passes over the corpus.
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Sequences per optimizer step.
    pub batch_size: usize,
    /// Embedding dropout during training (0 disables; BERT's corpus-scale
    /// default is 0.1).
    pub dropout: f32,
    /// RNG seed (initialization + masking): training is deterministic.
    pub seed: u64,
}

impl Default for BertEngineConfig {
    fn default() -> Self {
        Self {
            scale: BertScale::Small,
            epochs: 15,
            lr: 1e-3,
            batch_size: 8,
            dropout: 0.0,
            seed: 0xBEB7,
        }
    }
}

impl BertEngineConfig {
    /// A fast configuration for unit and integration tests.
    pub fn for_tests() -> Self {
        Self {
            scale: BertScale::Tiny,
            epochs: 12,
            lr: 3e-3,
            batch_size: 8,
            dropout: 0.0,
            seed: 0xBEB7,
        }
    }

    fn bert_config(&self, vocab_size: usize) -> BertConfig {
        match self.scale {
            BertScale::Tiny => BertConfig::tiny(vocab_size),
            BertScale::Small => BertConfig::small(vocab_size),
            BertScale::Paper => BertConfig::paper(vocab_size),
        }
    }
}

/// A trained BERT masked-token model over cell keys.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BertMlm {
    vocab: Vocab,
    model: BertMlmModel,
    trained_tokens: u64,
    /// Int8 serving weights, derived from `model` when quantization is
    /// enabled. Never serialized: the f32 weights are the source of truth
    /// and the artifact is rebuilt (and re-gated) on load. `Arc` keeps
    /// clones of a quantized model cheap.
    #[serde(skip)]
    quant: Option<Arc<QuantizedBertMlm>>,
}

impl BertMlm {
    /// Builds the vocabulary, initializes the network, and runs MLM training
    /// over the corpus.
    pub fn train(config: &BertEngineConfig, corpus: &[Vec<u64>]) -> Self {
        let mut vocab = Vocab::new();
        let mut sequences: Vec<Vec<u32>> = Vec::with_capacity(corpus.len());
        let mut trained_tokens = 0u64;
        for seq in corpus {
            trained_tokens += seq.len() as u64;
            let mut ids = Vec::with_capacity(seq.len() + 2);
            ids.push(Vocab::CLS);
            ids.extend(seq.iter().map(|&k| vocab.get_or_insert(k)));
            ids.push(Vocab::SEP);
            sequences.push(ids);
        }
        let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
        let bert_config = config.bert_config(vocab.total_len().max(Vocab::FIRST_REGULAR as usize + 1));
        let mut model = BertMlmModel::new(bert_config, &mut rng);
        if !sequences.is_empty() && !vocab.is_empty() {
            let trainer = Trainer::new(
                MlmBatcher::new(Vocab::MASK, vocab.regular_range()),
                TrainOptions {
                    epochs: config.epochs,
                    lr: config.lr,
                    batch_size: config.batch_size,
                    mask_prob: 0.15,
                    warmup_frac: 0.1,
                    dropout: config.dropout,
                    seed: config.seed,
                },
            );
            trainer.train(&mut model, &sequences);
        }
        Self {
            vocab,
            model,
            trained_tokens,
            quant: None,
        }
    }

    /// The vocabulary this model was trained with.
    pub fn vocab(&self) -> &Vocab {
        &self.vocab
    }

    /// Switches prediction to the int8 weight-quantized path (building the
    /// quantized weights from the f32 model). Gating against an accuracy
    /// bound is the caller's job — see
    /// [`BertMlm::quantization_agreement`].
    pub fn enable_quantization(&mut self) {
        if self.quant.is_none() {
            self.quant = Some(Arc::new(QuantizedBertMlm::from_model(&self.model)));
        }
    }

    /// Reverts prediction to the f32 path, dropping the int8 weights.
    pub fn disable_quantization(&mut self) {
        self.quant = None;
    }

    /// Builds (without installing) the int8 artifact for this model —
    /// reuses the installed one when quantization is already enabled, so
    /// packing a quantized checkpoint serializes exactly the weights it
    /// serves.
    pub fn build_quant_artifact(&self) -> QuantizedBertMlm {
        match &self.quant {
            Some(q) => (**q).clone(),
            None => QuantizedBertMlm::from_model(&self.model),
        }
    }

    /// The currently *installed* int8 artifact, or `None` when this model
    /// serves f32. Unlike [`Self::build_quant_artifact`] this never builds
    /// one — exporters use it so a packed store mirrors exactly the
    /// serving state (and gate decisions) of the system being packed.
    pub fn installed_quant_artifact(&self) -> Option<QuantizedBertMlm> {
        self.quant.as_deref().cloned()
    }

    /// Installs pre-built int8 weights (typically a zero-copy view into a
    /// mapped model-store record) and switches prediction to the
    /// quantized path. Rejects weights whose shape does not fit this
    /// model — a store record paired with the wrong cell must fail
    /// loudly, not serve garbage.
    pub fn install_quantization(&mut self, quant: QuantizedBertMlm) -> Result<(), String> {
        if !quant.matches(&self.model) {
            return Err(format!(
                "quantized weights ({} layers, {} bytes) do not fit this model ({} layers)",
                quant.layer_count(),
                quant.weight_bytes(),
                self.model.config.n_layers
            ));
        }
        self.quant = Some(Arc::new(quant));
        Ok(())
    }

    /// Whether predictions currently run the int8 path.
    pub fn is_quantized(&self) -> bool {
        self.quant.is_some()
    }

    /// Top-1 agreement between the f32 and int8 paths over `probes`
    /// seeded random masked probes (uniform regular tokens, random mask
    /// slot). Returns 1.0 for an empty vocabulary or zero probes. Does
    /// not require (or toggle) quantization being enabled; `kamel-core`
    /// uses this as the accuracy gate before enabling the path.
    pub fn quantization_agreement(&self, probes: usize, seed: u64) -> f64 {
        if probes == 0 || self.vocab.is_empty() {
            return 1.0;
        }
        let quant = match &self.quant {
            Some(q) => Arc::clone(q),
            None => Arc::new(QuantizedBertMlm::from_model(&self.model)),
        };
        let (lo, hi) = self.vocab.regular_range();
        let max_body = self.model.config.max_seq_len.saturating_sub(2).max(1);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut scratch = InferScratch::new();
        let mut agree = 0usize;
        for _ in 0..probes {
            let len = rng.gen_range(3..=8usize).min(max_body);
            let pos = rng.gen_range(0..len);
            let mut ids = Vec::with_capacity(len + 2);
            ids.push(Vocab::CLS);
            for i in 0..len {
                ids.push(if i == pos {
                    Vocab::MASK
                } else {
                    rng.gen_range(lo..hi)
                });
            }
            ids.push(Vocab::SEP);
            let mask_index = pos + 1;
            let exact_top = rank_regulars(self.model.predict_with(&mut scratch, &ids, mask_index), 1)
                .first()
                .map(|&(id, _)| id);
            let quant_top = rank_regulars(
                self.model.predict_quant_with(&quant, &mut scratch, &ids, mask_index),
                1,
            )
            .first()
            .map(|&(id, _)| id);
            if exact_top == quant_top {
                agree += 1;
            }
        }
        agree as f64 / probes as f64
    }

    /// Trainable parameter count of the underlying network.
    pub fn param_count(&mut self) -> usize {
        self.model.param_count()
    }

    /// Builds the network input for one masked request: `[CLS] seq [SEP]`
    /// with `[MASK]` at the slot, windowed around the mask when the
    /// bracketed sequence exceeds the model's `max_seq_len`. Returns the
    /// token ids and the mask's index within them.
    fn build_masked_input(&self, seq: &[u64], pos: usize) -> (Vec<u32>, usize) {
        let mut ids = Vec::with_capacity(seq.len() + 2);
        ids.push(Vocab::CLS);
        for (i, &key) in seq.iter().enumerate() {
            ids.push(if i == pos {
                Vocab::MASK
            } else {
                self.vocab.id_of(key)
            });
        }
        ids.push(Vocab::SEP);
        // Clamp to the model's window around the mask if the sequence is
        // long (imputation sequences are short, but be safe).
        let max_len = self.model.config.max_seq_len;
        if ids.len() <= max_len {
            (ids, pos + 1)
        } else {
            let mask_at = pos + 1;
            let half = max_len / 2;
            let start = mask_at.saturating_sub(half).min(ids.len() - max_len);
            (ids[start..start + max_len].to_vec(), mask_at - start)
        }
    }
}

/// Ranks the regular-token probabilities of one masked slot: the `top_k`
/// highest-probability ids (ties broken by ascending id), each normalized
/// over the total regular mass.
///
/// Selection uses `select_nth_unstable_by` (O(vocab) expected) followed by a
/// sort of only the kept `top_k` entries, instead of sorting the full
/// vocabulary. The comparator is a total order (descending prob, then
/// ascending id), so the kept set and its order are exactly those of a full
/// descending sort. The normalization mass is summed in ascending-id order
/// — a fixed order independent of `top_k` and of how selection permutes the
/// array. (The pre-partial-top-k code summed in descending-sorted order;
/// f32 addition is order-sensitive, so normalized probabilities may differ
/// from that retired path in the last ulp. See DESIGN.md §10.)
fn rank_regulars(probs: &[f32], top_k: usize) -> Vec<(u32, f64)> {
    let mut scored: Vec<(u32, f32)> = probs
        .iter()
        .enumerate()
        .skip(Vocab::FIRST_REGULAR as usize)
        .map(|(id, &p)| (id as u32, p))
        .collect();
    let regular_mass: f32 = scored.iter().map(|(_, p)| p).sum();
    if regular_mass <= 0.0 {
        return Vec::new();
    }
    let by_rank = |a: &(u32, f32), b: &(u32, f32)| {
        b.1.partial_cmp(&a.1)
            .expect("finite probabilities")
            .then(a.0.cmp(&b.0))
    };
    if top_k < scored.len() {
        scored.select_nth_unstable_by(top_k, by_rank);
        scored.truncate(top_k);
    }
    scored.sort_unstable_by(by_rank);
    scored
        .into_iter()
        .map(|(id, p)| (id, (p / regular_mass) as f64))
        .collect()
}

impl MaskedTokenModel for BertMlm {
    fn predict_masked(&self, seq: &[u64], pos: usize, top_k: usize) -> Vec<Candidate> {
        assert!(pos < seq.len(), "mask position {pos} out of range");
        if top_k == 0 || self.vocab.is_empty() {
            return Vec::new();
        }
        let (ids, mask_index) = self.build_masked_input(seq, pos);
        INFER_SCRATCH.with(|cell| {
            let mut scratch = cell.borrow_mut();
            // Grad-free forward + masked-row head: bit-identical to
            // `self.model.predict(&ids, mask_index)` (property-tested).
            // With quantization enabled, the int8 path runs instead; its
            // accuracy is gated upstream before enablement.
            let probs = match &self.quant {
                Some(q) => self.model.predict_quant_with(q, &mut scratch, &ids, mask_index),
                None => self.model.predict_with(&mut scratch, &ids, mask_index),
            };
            rank_regulars(probs, top_k)
                .into_iter()
                .filter_map(|(id, prob)| {
                    self.vocab.key_of(id).map(|key| Candidate { key, prob })
                })
                .collect()
        })
    }

    fn predict_masked_batch(&self, reqs: &[(Vec<u64>, usize)], top_k: usize) -> Vec<Vec<Candidate>> {
        for (seq, pos) in reqs {
            assert!(*pos < seq.len(), "mask position {pos} out of range");
        }
        if top_k == 0 || self.vocab.is_empty() {
            return vec![Vec::new(); reqs.len()];
        }
        let inputs: Vec<(Vec<u32>, usize)> = reqs
            .iter()
            .map(|(seq, pos)| self.build_masked_input(seq, *pos))
            .collect();
        let views: Vec<(&[u32], usize)> = inputs
            .iter()
            .map(|(ids, mask)| (ids.as_slice(), *mask))
            .collect();
        INFER_SCRATCH.with(|cell| {
            let mut scratch = cell.borrow_mut();
            // One fused forward for the whole batch; row `i` is
            // bit-identical to the single-request path for `reqs[i]`.
            let probs = match &self.quant {
                Some(q) => self.model.predict_batch_quant_with(q, &mut scratch, &views),
                None => self.model.predict_batch_with(&mut scratch, &views),
            };
            (0..reqs.len())
                .map(|i| {
                    rank_regulars(probs.row(i), top_k)
                        .into_iter()
                        .filter_map(|(id, prob)| {
                            self.vocab.key_of(id).map(|key| Candidate { key, prob })
                        })
                        .collect()
                })
                .collect()
        })
    }

    fn vocab_len(&self) -> usize {
        self.vocab.regular_len()
    }

    fn trained_tokens(&self) -> u64 {
        self.trained_tokens
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_a_deterministic_chain() {
        let corpus: Vec<Vec<u64>> = (0..40).map(|_| vec![11u64, 22, 33, 44]).collect();
        let model = BertMlm::train(&BertEngineConfig::for_tests(), &corpus);
        let preds = model.predict_masked(&[11, 22, 0, 44], 2, 4);
        assert!(!preds.is_empty());
        assert_eq!(preds[0].key, 33, "predictions: {preds:?}");
    }

    #[test]
    fn candidate_probs_are_normalized_over_regulars() {
        let corpus: Vec<Vec<u64>> = (0..20).map(|_| vec![1u64, 2, 3]).collect();
        let model = BertMlm::train(&BertEngineConfig::for_tests(), &corpus);
        let all = model.predict_masked(&[1, 0, 3], 1, usize::MAX);
        let sum: f64 = all.iter().map(|c| c.prob).sum();
        assert!((sum - 1.0).abs() < 1e-4, "sum {sum}");
    }

    #[test]
    fn empty_corpus_predicts_nothing() {
        let model = BertMlm::train(&BertEngineConfig::for_tests(), &[]);
        assert!(model.predict_masked(&[5, 0, 6], 1, 3).is_empty());
        assert_eq!(model.vocab_len(), 0);
    }

    #[test]
    fn unknown_context_tokens_do_not_panic() {
        let corpus: Vec<Vec<u64>> = (0..10).map(|_| vec![1u64, 2, 3]).collect();
        let model = BertMlm::train(&BertEngineConfig::for_tests(), &corpus);
        let preds = model.predict_masked(&[777, 0, 888], 1, 3);
        assert!(!preds.is_empty());
    }

    /// The retired full-sort ranking, kept as the test reference (mass in
    /// ascending-id order, matching the live implementation's definition).
    fn rank_regulars_reference(probs: &[f32], top_k: usize) -> Vec<(u32, f64)> {
        let mut scored: Vec<(u32, f32)> = probs
            .iter()
            .enumerate()
            .skip(Vocab::FIRST_REGULAR as usize)
            .map(|(id, &p)| (id as u32, p))
            .collect();
        let regular_mass: f32 = scored.iter().map(|(_, p)| p).sum();
        if regular_mass <= 0.0 {
            return Vec::new();
        }
        scored.sort_unstable_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .expect("finite probabilities")
                .then(a.0.cmp(&b.0))
        });
        scored
            .into_iter()
            .take(top_k)
            .map(|(id, p)| (id, (p / regular_mass) as f64))
            .collect()
    }

    #[test]
    fn partial_topk_matches_full_sort_including_ties() {
        // Distributions with duplicate probabilities, zeros, and values in
        // special-token slots (which must be skipped, not ranked).
        let cases: Vec<Vec<f32>> = vec![
            vec![0.5, 0.1, 0.1, 0.05, 0.05, 0.08, 0.02, 0.08, 0.02, 0.1],
            vec![0.0; 12],
            vec![0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1],
            vec![0.9, 0.0, 0.0, 0.0, 0.0, 0.025, 0.025, 0.025, 0.025],
            (0..40).map(|i| ((i * 7) % 11) as f32 / 100.0).collect(),
        ];
        for probs in &cases {
            let regulars = probs.len() - Vocab::FIRST_REGULAR as usize;
            for top_k in [0, 1, 2, 3, regulars, regulars + 5, usize::MAX] {
                let got = rank_regulars(probs, top_k);
                let want = rank_regulars_reference(probs, top_k);
                assert_eq!(got, want, "diverged at top_k={top_k} on {probs:?}");
            }
        }
    }

    #[test]
    fn topk_ties_break_by_ascending_id() {
        // Ids 5..9 all share the top probability; top-3 must be 5, 6, 7.
        let mut probs = vec![0.0f32; 10];
        for id in 5..10 {
            probs[id] = 0.2;
        }
        let got = rank_regulars(&probs, 3);
        let ids: Vec<u32> = got.iter().map(|(id, _)| *id).collect();
        assert_eq!(ids, vec![5, 6, 7]);
    }

    #[test]
    fn batched_predictions_match_single_calls() {
        let corpus: Vec<Vec<u64>> = (0..30).map(|_| vec![11u64, 22, 33, 44, 55]).collect();
        let model = BertMlm::train(&BertEngineConfig::for_tests(), &corpus);
        let reqs: Vec<(Vec<u64>, usize)> = vec![
            (vec![11, 22, 0, 44, 55], 2),
            (vec![11, 0, 33], 1),
            (vec![22, 33, 44, 0], 3),
            (vec![777, 0, 888], 1),
        ];
        let batched = model.predict_masked_batch(&reqs, 4);
        assert_eq!(batched.len(), reqs.len());
        for (i, (seq, pos)) in reqs.iter().enumerate() {
            let single = model.predict_masked(seq, *pos, 4);
            assert_eq!(batched[i].len(), single.len(), "request {i}");
            for (a, b) in batched[i].iter().zip(&single) {
                assert_eq!(a.key, b.key, "request {i}");
                assert_eq!(a.prob.to_bits(), b.prob.to_bits(), "request {i}");
            }
        }
    }

    #[test]
    fn quantized_model_still_learns_the_chain() {
        let corpus: Vec<Vec<u64>> = (0..40).map(|_| vec![11u64, 22, 33, 44]).collect();
        let mut model = BertMlm::train(&BertEngineConfig::for_tests(), &corpus);
        assert!(!model.is_quantized());
        model.enable_quantization();
        assert!(model.is_quantized());
        let preds = model.predict_masked(&[11, 22, 0, 44], 2, 4);
        assert!(!preds.is_empty());
        assert_eq!(preds[0].key, 33, "int8 predictions: {preds:?}");
        model.disable_quantization();
        assert!(!model.is_quantized());
    }

    #[test]
    fn quantization_agreement_is_high_on_a_trained_model() {
        let corpus: Vec<Vec<u64>> = (0..40).map(|_| vec![1u64, 2, 3, 4, 5]).collect();
        let model = BertMlm::train(&BertEngineConfig::for_tests(), &corpus);
        let agreement = model.quantization_agreement(64, 0xA9EE);
        assert!(
            agreement >= 0.9,
            "int8 top-1 agreement collapsed: {agreement}"
        );
        // Deterministic for a fixed seed.
        assert_eq!(agreement, model.quantization_agreement(64, 0xA9EE));
    }

    #[test]
    fn quantized_batch_matches_quantized_single_calls() {
        let corpus: Vec<Vec<u64>> = (0..30).map(|_| vec![11u64, 22, 33, 44, 55]).collect();
        let mut model = BertMlm::train(&BertEngineConfig::for_tests(), &corpus);
        model.enable_quantization();
        let reqs: Vec<(Vec<u64>, usize)> =
            vec![(vec![11, 22, 0, 44, 55], 2), (vec![11, 0, 33], 1)];
        let batched = model.predict_masked_batch(&reqs, 4);
        for (i, (seq, pos)) in reqs.iter().enumerate() {
            let single = model.predict_masked(seq, *pos, 4);
            assert_eq!(batched[i].len(), single.len(), "request {i}");
            for (a, b) in batched[i].iter().zip(&single) {
                assert_eq!(a.key, b.key, "request {i}");
                assert_eq!(a.prob.to_bits(), b.prob.to_bits(), "request {i}");
            }
        }
    }

    #[test]
    fn installed_packed_artifact_predicts_bit_identically() {
        let corpus: Vec<Vec<u64>> = (0..30).map(|_| vec![11u64, 22, 33, 44, 55]).collect();
        let mut model = BertMlm::train(&BertEngineConfig::for_tests(), &corpus);
        model.enable_quantization();
        let owned = model.predict_masked(&[11, 22, 0, 44, 55], 2, 4);

        // Pack the artifact and re-install it as a zero-copy view — the
        // store serving path. Integer weight math is exact, so the view
        // must reproduce the owned artifact's predictions bit-for-bit.
        let packed: std::sync::Arc<dyn kamel_nn::ByteSource> =
            std::sync::Arc::new(model.build_quant_artifact().write_packed());
        let len = packed.bytes().len();
        let view = QuantizedBertMlm::read_packed(std::sync::Arc::clone(&packed), 0, len)
            .expect("read packed artifact");
        let mut served = model.clone();
        served.disable_quantization();
        served.install_quantization(view).expect("install view");
        assert!(served.is_quantized());
        let mapped = served.predict_masked(&[11, 22, 0, 44, 55], 2, 4);
        assert_eq!(owned.len(), mapped.len());
        for (a, b) in owned.iter().zip(&mapped) {
            assert_eq!(a.key, b.key);
            assert_eq!(a.prob.to_bits(), b.prob.to_bits());
        }
    }

    #[test]
    fn install_rejects_mismatched_artifact() {
        let corpus: Vec<Vec<u64>> = (0..10).map(|_| vec![7u64, 8, 9]).collect();
        let mut small = BertMlm::train(&BertEngineConfig::for_tests(), &corpus);
        let wide: Vec<Vec<u64>> = (0..10).map(|i| vec![i as u64, i as u64 + 50]).collect();
        let other = BertMlm::train(&BertEngineConfig::for_tests(), &wide);
        let artifact = other.build_quant_artifact();
        if artifact.matches(&small.model) {
            // Identical shapes by construction would make this vacuous;
            // the configs' vocabs differ, so the head dims must differ.
            panic!("test models unexpectedly share a shape");
        }
        assert!(small.install_quantization(artifact).is_err());
        assert!(!small.is_quantized());
    }

    #[test]
    fn quantization_survives_serde_as_disabled() {
        let corpus: Vec<Vec<u64>> = (0..10).map(|_| vec![7u64, 8, 9]).collect();
        let mut model = BertMlm::train(&BertEngineConfig::for_tests(), &corpus);
        model.enable_quantization();
        let json = serde_json::to_string(&model).expect("serialize");
        let back: BertMlm = serde_json::from_str(&json).expect("deserialize");
        // The int8 artifact is derived state: it does not persist and must
        // be re-enabled (and re-gated) after a load.
        assert!(!back.is_quantized());
    }

    #[test]
    fn long_sequences_are_windowed() {
        let corpus: Vec<Vec<u64>> = (0..5).map(|_| vec![1u64, 2, 3]).collect();
        let model = BertMlm::train(&BertEngineConfig::for_tests(), &corpus);
        // Tiny config caps sequences at 64; feed 200 with the mask deep
        // inside.
        let long: Vec<u64> = (0..200).map(|i| 1 + (i % 3) as u64).collect();
        let preds = model.predict_masked(&long, 150, 2);
        assert!(!preds.is_empty());
    }
}

//! The BERT engine: KAMEL's paper-faithful masked-token model.
//!
//! Wraps [`kamel_nn::BertMlmModel`] with a [`Vocab`]: training maps cell
//! keys to dense ids, brackets sequences with `[CLS]`/`[SEP]`, and runs the
//! standard MLM recipe; prediction inserts `[MASK]` at the gap and reads the
//! head's distribution back as cell keys.

use crate::vocab::Vocab;
use crate::{Candidate, MaskedTokenModel};
use kamel_nn::{BertConfig, BertMlmModel, MlmBatcher, TrainOptions, Trainer};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Model scale presets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BertScale {
    /// 32 hidden / 2 layers / 2 heads: seconds to train, for tests and the
    /// quickstart.
    Tiny,
    /// 64 hidden / 4 layers / 4 heads: minutes to train.
    Small,
    /// The paper's 768 / 12 / 12 deployment scale (TPU-class training; not
    /// used by the test suite).
    Paper,
}

/// Hyper-parameters for training a [`BertMlm`].
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct BertEngineConfig {
    /// Architecture scale.
    pub scale: BertScale,
    /// Passes over the corpus.
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Sequences per optimizer step.
    pub batch_size: usize,
    /// Embedding dropout during training (0 disables; BERT's corpus-scale
    /// default is 0.1).
    pub dropout: f32,
    /// RNG seed (initialization + masking): training is deterministic.
    pub seed: u64,
}

impl Default for BertEngineConfig {
    fn default() -> Self {
        Self {
            scale: BertScale::Small,
            epochs: 15,
            lr: 1e-3,
            batch_size: 8,
            dropout: 0.0,
            seed: 0xBEB7,
        }
    }
}

impl BertEngineConfig {
    /// A fast configuration for unit and integration tests.
    pub fn for_tests() -> Self {
        Self {
            scale: BertScale::Tiny,
            epochs: 12,
            lr: 3e-3,
            batch_size: 8,
            dropout: 0.0,
            seed: 0xBEB7,
        }
    }

    fn bert_config(&self, vocab_size: usize) -> BertConfig {
        match self.scale {
            BertScale::Tiny => BertConfig::tiny(vocab_size),
            BertScale::Small => BertConfig::small(vocab_size),
            BertScale::Paper => BertConfig::paper(vocab_size),
        }
    }
}

/// A trained BERT masked-token model over cell keys.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BertMlm {
    vocab: Vocab,
    model: BertMlmModel,
    trained_tokens: u64,
}

impl BertMlm {
    /// Builds the vocabulary, initializes the network, and runs MLM training
    /// over the corpus.
    pub fn train(config: &BertEngineConfig, corpus: &[Vec<u64>]) -> Self {
        let mut vocab = Vocab::new();
        let mut sequences: Vec<Vec<u32>> = Vec::with_capacity(corpus.len());
        let mut trained_tokens = 0u64;
        for seq in corpus {
            trained_tokens += seq.len() as u64;
            let mut ids = Vec::with_capacity(seq.len() + 2);
            ids.push(Vocab::CLS);
            ids.extend(seq.iter().map(|&k| vocab.get_or_insert(k)));
            ids.push(Vocab::SEP);
            sequences.push(ids);
        }
        let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
        let bert_config = config.bert_config(vocab.total_len().max(Vocab::FIRST_REGULAR as usize + 1));
        let mut model = BertMlmModel::new(bert_config, &mut rng);
        if !sequences.is_empty() && !vocab.is_empty() {
            let trainer = Trainer::new(
                MlmBatcher::new(Vocab::MASK, vocab.regular_range()),
                TrainOptions {
                    epochs: config.epochs,
                    lr: config.lr,
                    batch_size: config.batch_size,
                    mask_prob: 0.15,
                    warmup_frac: 0.1,
                    dropout: config.dropout,
                    seed: config.seed,
                },
            );
            trainer.train(&mut model, &sequences);
        }
        Self {
            vocab,
            model,
            trained_tokens,
        }
    }

    /// The vocabulary this model was trained with.
    pub fn vocab(&self) -> &Vocab {
        &self.vocab
    }

    /// Trainable parameter count of the underlying network.
    pub fn param_count(&mut self) -> usize {
        self.model.param_count()
    }
}

impl MaskedTokenModel for BertMlm {
    fn predict_masked(&self, seq: &[u64], pos: usize, top_k: usize) -> Vec<Candidate> {
        assert!(pos < seq.len(), "mask position {pos} out of range");
        if top_k == 0 || self.vocab.is_empty() {
            return Vec::new();
        }
        // [CLS] seq [SEP], with the slot replaced by [MASK].
        let mut ids = Vec::with_capacity(seq.len() + 2);
        ids.push(Vocab::CLS);
        for (i, &key) in seq.iter().enumerate() {
            ids.push(if i == pos {
                Vocab::MASK
            } else {
                self.vocab.id_of(key)
            });
        }
        ids.push(Vocab::SEP);
        // Clamp to the model's window around the mask if the sequence is
        // long (imputation sequences are short, but be safe).
        let max_len = self.model.config.max_seq_len;
        let (ids, mask_index) = if ids.len() <= max_len {
            (ids, pos + 1)
        } else {
            let mask_at = pos + 1;
            let half = max_len / 2;
            let start = mask_at.saturating_sub(half).min(ids.len() - max_len);
            (ids[start..start + max_len].to_vec(), mask_at - start)
        };
        let probs = self.model.predict(&ids, mask_index);
        // Rank regular tokens only.
        let mut scored: Vec<(u32, f32)> = probs
            .iter()
            .enumerate()
            .skip(Vocab::FIRST_REGULAR as usize)
            .map(|(id, &p)| (id as u32, p))
            .collect();
        scored.sort_unstable_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .expect("finite probabilities")
                .then(a.0.cmp(&b.0))
        });
        let regular_mass: f32 = scored.iter().map(|(_, p)| p).sum();
        if regular_mass <= 0.0 {
            return Vec::new();
        }
        scored
            .into_iter()
            .take(top_k)
            .filter_map(|(id, p)| {
                self.vocab.key_of(id).map(|key| Candidate {
                    key,
                    prob: (p / regular_mass) as f64,
                })
            })
            .collect()
    }

    fn vocab_len(&self) -> usize {
        self.vocab.regular_len()
    }

    fn trained_tokens(&self) -> u64 {
        self.trained_tokens
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_a_deterministic_chain() {
        let corpus: Vec<Vec<u64>> = (0..40).map(|_| vec![11u64, 22, 33, 44]).collect();
        let model = BertMlm::train(&BertEngineConfig::for_tests(), &corpus);
        let preds = model.predict_masked(&[11, 22, 0, 44], 2, 4);
        assert!(!preds.is_empty());
        assert_eq!(preds[0].key, 33, "predictions: {preds:?}");
    }

    #[test]
    fn candidate_probs_are_normalized_over_regulars() {
        let corpus: Vec<Vec<u64>> = (0..20).map(|_| vec![1u64, 2, 3]).collect();
        let model = BertMlm::train(&BertEngineConfig::for_tests(), &corpus);
        let all = model.predict_masked(&[1, 0, 3], 1, usize::MAX);
        let sum: f64 = all.iter().map(|c| c.prob).sum();
        assert!((sum - 1.0).abs() < 1e-4, "sum {sum}");
    }

    #[test]
    fn empty_corpus_predicts_nothing() {
        let model = BertMlm::train(&BertEngineConfig::for_tests(), &[]);
        assert!(model.predict_masked(&[5, 0, 6], 1, 3).is_empty());
        assert_eq!(model.vocab_len(), 0);
    }

    #[test]
    fn unknown_context_tokens_do_not_panic() {
        let corpus: Vec<Vec<u64>> = (0..10).map(|_| vec![1u64, 2, 3]).collect();
        let model = BertMlm::train(&BertEngineConfig::for_tests(), &corpus);
        let preds = model.predict_masked(&[777, 0, 888], 1, 3);
        assert!(!preds.is_empty());
    }

    #[test]
    fn long_sequences_are_windowed() {
        let corpus: Vec<Vec<u64>> = (0..5).map(|_| vec![1u64, 2, 3]).collect();
        let model = BertMlm::train(&BertEngineConfig::for_tests(), &corpus);
        // Tiny config caps sequences at 64; feed 200 with the mask deep
        // inside.
        let long: Vec<u64> = (0..200).map(|i| 1 + (i % 3) as u64).collect();
        let preds = model.predict_masked(&long, 150, 2);
        assert!(!preds.is_empty());
    }
}

//! End-to-end model store tests: pack → open → materialize must serve
//! byte-identical predictions vs. the heap repository it was packed
//! from, under a byte budget smaller than the full model set; and every
//! corruption mode must fail loudly at open or materialize, never
//! silently serve damaged weights.

use kamel::checkpoint::faults::{Fault, FaultyIo};
use kamel::checkpoint::write_atomic_with;
use kamel::{Kamel, KamelConfig};
use kamel_geo::{GpsPoint, Trajectory};
use kamel_lm::{BertEngineConfig, EngineConfig};
use kamel_store::{load_kamel, pack, pack_bytes, Store, StoreError, FLAG_QUANT};
use proptest::prelude::*;
use std::path::PathBuf;

/// `expect_err` without requiring `Kamel: Debug`.
fn must_fail(result: Result<Kamel, StoreError>, what: &str) -> StoreError {
    match result {
        Ok(_) => panic!("{what}"),
        Err(e) => e,
    }
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("kamel_store_e2e_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// A straight east-west street at `lat`, `n` fixes ~84 m apart.
fn street(lat: f64, lng0: f64, n: usize) -> Trajectory {
    Trajectory::new(
        (0..n)
            .map(|i| GpsPoint::from_parts(lat, lng0 + i as f64 * 0.001, i as f64 * 10.0))
            .collect(),
    )
}

/// Two-district n-gram pyramid: several models across levels, so the
/// store has real eviction pressure and pair/upper-level records.
fn district_kamel() -> Kamel {
    let kamel = Kamel::new(
        KamelConfig::builder()
            .pyramid_height(3)
            .pyramid_maintained(3)
            .model_threshold_k(60)
            .build(),
    );
    let mut corpus = Vec::new();
    for _ in 0..30 {
        corpus.push(street(41.15, -8.61, 25));
        corpus.push(street(41.25, -8.61, 25));
    }
    kamel.train(&corpus);
    kamel
}

fn sparse_queries() -> Vec<Trajectory> {
    vec![
        Trajectory::new(vec![
            GpsPoint::from_parts(41.15, -8.608, 0.0),
            GpsPoint::from_parts(41.15, -8.592, 160.0),
        ]),
        Trajectory::new(vec![
            GpsPoint::from_parts(41.25, -8.608, 0.0),
            GpsPoint::from_parts(41.25, -8.592, 160.0),
        ]),
        street(41.15, -8.61, 25).sparsify(500.0),
    ]
}

#[test]
fn packed_store_imputes_byte_identically_under_a_tight_budget() {
    let heap = district_kamel();
    let dir = tmp_dir("identity");
    let path = dir.join("city.kstore");
    let stats = pack(&heap, &path).expect("pack");
    assert!(stats.models >= 2, "expected a multi-model pyramid");

    // Budget of half the file: the boot sweep must evict.
    let budget = stats.bytes / 2;
    let stored = load_kamel(&path, Some(budget)).expect("load store");
    let residency = stored.residency().expect("store-backed system has residency");
    assert_eq!(residency.total_models, stats.models);
    assert!(
        residency.evictions_total >= 1,
        "budget {budget} of {} bytes must evict during the boot sweep",
        stats.bytes
    );
    assert!(
        residency.resident_models < residency.total_models,
        "everything stayed resident under a half-size budget"
    );

    // Byte-identical imputation, including re-materialization of evicted
    // cells on later queries.
    for (i, sparse) in sparse_queries().iter().enumerate() {
        assert_eq!(
            heap.impute(sparse),
            stored.impute(sparse),
            "query {i} diverged from the heap repository"
        );
    }
    // And again, so answers after eviction/re-materialization also match.
    for sparse in &sparse_queries() {
        assert_eq!(heap.impute(sparse), stored.impute(sparse));
    }
    assert_eq!(
        heap.model_summaries(),
        stored.model_summaries(),
        "summaries must serve verbatim from the meta record"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn budget_caps_unpinned_resident_bytes() {
    // A single maintained level means no upper-level pins, so the budget
    // bounds *all* resident bytes exactly.
    let kamel = Kamel::new(
        KamelConfig::builder()
            .pyramid_height(3)
            .pyramid_maintained(1)
            .model_threshold_k(60)
            .build(),
    );
    let mut corpus = Vec::new();
    for _ in 0..30 {
        corpus.push(street(41.15, -8.61, 25));
        corpus.push(street(41.25, -8.61, 25));
    }
    kamel.train(&corpus);
    let dir = tmp_dir("cap");
    let path = dir.join("leaves.kstore");
    let stats = pack(&kamel, &path).expect("pack");
    assert!(stats.models >= 2);
    let budget = stats.bytes / 2;
    let stored = load_kamel(&path, Some(budget)).expect("load");
    for sparse in &sparse_queries() {
        stored.impute(sparse);
        let residency = stored.residency().expect("residency");
        assert!(
            residency.bytes_resident <= budget,
            "resident bytes {} exceed the cap {budget} mid-serving",
            residency.bytes_resident
        );
        assert_eq!(residency.pinned_models, 0, "one level must pin nothing");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn unbounded_budget_keeps_everything_resident() {
    let heap = district_kamel();
    let dir = tmp_dir("unbounded");
    let path = dir.join("city.kstore");
    pack(&heap, &path).expect("pack");
    let stored = load_kamel(&path, None).expect("load store");
    let residency = stored.residency().expect("residency");
    assert_eq!(residency.evictions_total, 0);
    assert_eq!(residency.resident_models, residency.total_models);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn quantized_store_serves_packed_int8_byte_identically() {
    let kamel = Kamel::new(
        KamelConfig::builder()
            .pyramid_height(1)
            .pyramid_maintained(1)
            .model_threshold_k(40)
            .engine(EngineConfig::Bert(BertEngineConfig::for_tests()))
            .quantize(true)
            .quantize_min_agreement(0.0)
            .build(),
    );
    let corpus: Vec<Trajectory> = (0..20).map(|_| street(41.15, -8.61, 25)).collect();
    kamel.train(&corpus);
    assert!(kamel.is_quantized(), "gate at min_agreement 0 must pass");

    let dir = tmp_dir("quant");
    let path = dir.join("bert.kstore");
    let stats = pack(&kamel, &path).expect("pack");
    assert!(
        stats.quant_models >= 1,
        "a quantized system must pack int8 records"
    );
    let store = Store::open(&path).expect("open");
    assert_eq!(store.flags() & FLAG_QUANT, FLAG_QUANT);

    let stored = load_kamel(&path, None).expect("load store");
    let sparse = street(41.15, -8.61, 25).sparsify(900.0);
    assert_eq!(
        kamel.impute(&sparse),
        stored.impute(&sparse),
        "zero-copy int8 serving diverged from the heap engine"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn f32_system_packs_no_quant_records() {
    let heap = district_kamel();
    let dir = tmp_dir("f32");
    let path = dir.join("city.kstore");
    let stats = pack(&heap, &path).expect("pack");
    assert_eq!(
        stats.quant_models, 0,
        "an unquantized system must not grow int8 records in the store"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corruption_matrix_fails_loudly() {
    let heap = district_kamel();
    let clean = pack_bytes(&heap).expect("pack");
    let dir = tmp_dir("corrupt");
    let write = |name: &str, bytes: &[u8]| {
        let p = dir.join(name);
        std::fs::write(&p, bytes).expect("write variant");
        p
    };

    // Truncations at every structural boundary.
    for cut in [0, 20, 60, clean.len() / 2, clean.len() - 1] {
        let p = write("trunc.kstore", &clean[..cut]);
        let err = must_fail(load_kamel(&p, None), "truncated store must not load");
        assert!(matches!(err, StoreError::Corrupt(_)), "cut {cut}: {err}");
    }

    // One flipped byte in the last record's payload: open succeeds (the
    // index is intact) but the boot sweep catches it.
    let mut flipped = clean.clone();
    let last = flipped.len() - 3;
    flipped[last] ^= 0x10;
    let p = write("flip.kstore", &flipped);
    let err = must_fail(load_kamel(&p, None), "flipped byte must not serve");
    assert!(
        matches!(err, StoreError::Corrupt(ref m) if m.contains("checksum")
            || m.contains("decode") || m.contains("invalid")),
        "unexpected error: {err}"
    );

    // Wrong config digest (header bytes 16..24).
    let mut skewed = clean.clone();
    skewed[16] ^= 0xFF;
    let p = write("digest.kstore", &skewed);
    let err = must_fail(load_kamel(&p, None), "digest mismatch must not serve");
    assert!(matches!(err, StoreError::Incompatible(_)), "{err}");

    // Format version skew (header bytes 8..12).
    let mut vskew = clean.clone();
    vskew[8..12].copy_from_slice(&99u32.to_le_bytes());
    let p = write("version.kstore", &vskew);
    let err = must_fail(load_kamel(&p, None), "version skew must not serve");
    assert!(matches!(err, StoreError::Incompatible(_)), "{err}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn repack_write_fault_leaves_the_previous_store_serving() {
    let heap = district_kamel();
    let dir = tmp_dir("fault");
    let path = dir.join("city.kstore");
    pack(&heap, &path).expect("initial pack");
    let sparse = &sparse_queries()[0];
    let want = heap.impute(sparse);

    // A re-pack whose temp-file write dies after 64 bytes: the rename
    // never runs, so the serving store must stay intact.
    let bytes = pack_bytes(&heap).expect("pack bytes");
    let io = FaultyIo::new(Fault::ShortWrite { keep: 64 });
    write_atomic_with(&io, &path, &bytes, false).expect_err("short write must fail");

    let stored = load_kamel(&path, None).expect("previous store must still load");
    assert_eq!(want, stored.impute(sparse));
    std::fs::remove_dir_all(&dir).ok();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Pack → open → materialize round-trips bit-identical predictions
    /// against the heap repository for arbitrary sparsification of the
    /// training streets.
    #[test]
    fn pack_round_trip_is_bit_identical(
        gap_m in 300.0f64..1200.0,
        lat_idx in 0usize..2,
        budget_div in 1u64..4,
    ) {
        let heap = district_kamel();
        let dir = tmp_dir("prop");
        let path = dir.join("prop.kstore");
        let stats = pack(&heap, &path).expect("pack");
        let stored = load_kamel(&path, Some(stats.bytes / budget_div)).expect("load");
        let lat = [41.15, 41.25][lat_idx];
        let sparse = street(lat, -8.61, 25).sparsify(gap_m);
        prop_assert_eq!(heap.impute(&sparse), stored.impute(&sparse));
        std::fs::remove_dir_all(&dir).ok();
    }
}

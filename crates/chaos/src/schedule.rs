//! Deterministic fault schedules: which fault the Nth accepted
//! connection suffers, as a pure function of the schedule and N.

use std::fmt;

/// A network fault the proxy can inject on one connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Fault {
    /// Faithful full-duplex relay: the connection behaves exactly like a
    /// direct connection to the upstream.
    None,
    /// Accept, then close immediately without exchanging a byte — the
    /// observable shape of a refused/actively-down backend.
    Refuse,
    /// Accept, then go silent: never read, never write, hold the socket
    /// open until the stall cap (or proxy shutdown).
    Stall,
    /// Relay the upstream response one byte at a time with a delay
    /// between bytes, up to a byte cap, then close.
    SlowLoris,
    /// Answer with response headers plus a torn JSON prefix, then close
    /// with the request body deliberately left unread so the kernel
    /// replies with RST — a mid-body connection reset.
    ResetMidBody,
    /// Relay a short prefix of the real upstream response, then a clean
    /// FIN: a torn/short response that must not parse as success.
    Torn,
}

impl Fault {
    /// Every fault, in the order the seeded schedule maps onto.
    pub const ALL: [Fault; 6] = [
        Fault::None,
        Fault::Refuse,
        Fault::Stall,
        Fault::SlowLoris,
        Fault::ResetMidBody,
        Fault::Torn,
    ];

    /// The script/CLI name of this fault.
    pub fn name(self) -> &'static str {
        match self {
            Fault::None => "none",
            Fault::Refuse => "refuse",
            Fault::Stall => "stall",
            Fault::SlowLoris => "slow-loris",
            Fault::ResetMidBody => "reset",
            Fault::Torn => "torn",
        }
    }

    /// Parses a script/CLI fault name.
    pub fn parse(s: &str) -> Result<Fault, String> {
        Fault::ALL
            .into_iter()
            .find(|f| f.name() == s)
            .ok_or_else(|| {
                let names: Vec<&str> = Fault::ALL.iter().map(|f| f.name()).collect();
                format!("unknown fault {s:?} (expected one of: {})", names.join(", "))
            })
    }
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// SplitMix64: the same tiny deterministic mixer the serving client uses
/// for retry jitter. Good avalanche behavior, no state, no dependencies.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Decides the fault for each accepted connection, deterministically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChaosSchedule {
    /// Pseudo-random but reproducible: connection `i` suffers
    /// `splitmix64(seed ⊕ mix(i)) mod 6` mapped over [`Fault::ALL`]. A
    /// pure function of `(seed, i)` — no RNG state, so concurrent
    /// accepts cannot reorder the assignment.
    Seeded {
        /// The reproducibility seed.
        seed: u64,
    },
    /// An explicit fault sequence: `(fault, count)` runs, consumed in
    /// order; once exhausted, the **last entry repeats forever**.
    Scripted {
        /// The `(fault, repeat count)` runs, in order. Never empty.
        entries: Vec<(Fault, u64)>,
    },
}

impl ChaosSchedule {
    /// A seeded pseudo-random schedule.
    pub fn seeded(seed: u64) -> Self {
        ChaosSchedule::Seeded { seed }
    }

    /// Parses a script like `refuse*20,none` or `stall,torn*3,none`:
    /// comma-separated fault names, each with an optional `*count`
    /// (default 1). The last entry repeats forever.
    pub fn parse_script(s: &str) -> Result<Self, String> {
        let mut entries = Vec::new();
        for part in s.split(',') {
            let part = part.trim();
            if part.is_empty() {
                return Err("empty script entry (stray comma?)".into());
            }
            let (name, count) = match part.split_once('*') {
                None => (part, 1),
                Some((name, count)) => {
                    let count: u64 = count
                        .parse()
                        .map_err(|_| format!("bad repeat count in {part:?}"))?;
                    if count == 0 {
                        return Err(format!("zero repeat count in {part:?}"));
                    }
                    (name.trim(), count)
                }
            };
            entries.push((Fault::parse(name)?, count));
        }
        if entries.is_empty() {
            return Err("empty chaos script".into());
        }
        Ok(ChaosSchedule::Scripted { entries })
    }

    /// The fault the `connection`-th accepted connection (0-based, accept
    /// order) suffers. Pure: same schedule + index → same fault, always.
    pub fn fault_for(&self, connection: u64) -> Fault {
        match self {
            ChaosSchedule::Seeded { seed } => {
                let h = splitmix64(seed ^ splitmix64(connection));
                Fault::ALL[(h % Fault::ALL.len() as u64) as usize]
            }
            ChaosSchedule::Scripted { entries } => {
                let mut at = connection;
                for &(fault, count) in entries {
                    if at < count {
                        return fault;
                    }
                    at -= count;
                }
                entries.last().expect("script never empty").0
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_seeded_schedule_is_a_pure_function_of_seed_and_index() {
        let a = ChaosSchedule::seeded(42);
        let b = ChaosSchedule::seeded(42);
        let run: Vec<Fault> = (0..200).map(|i| a.fault_for(i)).collect();
        assert_eq!(run, (0..200).map(|i| b.fault_for(i)).collect::<Vec<_>>());
        // A different seed produces a different sequence...
        let c = ChaosSchedule::seeded(43);
        assert_ne!(run, (0..200).map(|i| c.fault_for(i)).collect::<Vec<_>>());
        // ...and 200 draws exercise every fault kind.
        for fault in Fault::ALL {
            assert!(run.contains(&fault), "seed 42 never drew {fault}");
        }
    }

    #[test]
    fn a_script_expands_counts_and_repeats_its_last_entry() {
        let s = ChaosSchedule::parse_script("refuse*3, slow-loris ,none*2").unwrap();
        let want = [
            Fault::Refuse,
            Fault::Refuse,
            Fault::Refuse,
            Fault::SlowLoris,
            Fault::None,
            Fault::None,
        ];
        for (i, &fault) in want.iter().enumerate() {
            assert_eq!(s.fault_for(i as u64), fault, "index {i}");
        }
        // Past the end, the last entry repeats forever.
        assert_eq!(s.fault_for(6), Fault::None);
        assert_eq!(s.fault_for(10_000), Fault::None);
        let t = ChaosSchedule::parse_script("none,torn").unwrap();
        assert_eq!(t.fault_for(0), Fault::None);
        assert_eq!(t.fault_for(1), Fault::Torn);
        assert_eq!(t.fault_for(99), Fault::Torn);
    }

    #[test]
    fn bad_scripts_are_rejected_with_a_reason() {
        for bad in ["", "banana", "refuse*0", "refuse*", "refuse*x", "none,,torn"] {
            let err = ChaosSchedule::parse_script(bad).unwrap_err();
            assert!(!err.is_empty(), "{bad:?} accepted");
        }
    }

    #[test]
    fn fault_names_round_trip() {
        for fault in Fault::ALL {
            assert_eq!(Fault::parse(fault.name()).unwrap(), fault);
        }
        assert!(Fault::parse("banana").is_err());
    }
}

//! Adam optimizer with bias correction and optional decoupled weight decay.

use crate::layers::Param;

/// The Adam optimizer (Kingma & Ba) as used for BERT pretraining.
#[derive(Debug, Clone)]
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    /// Exponential decay for the first moment.
    pub beta1: f32,
    /// Exponential decay for the second moment.
    pub beta2: f32,
    /// Numerical stabilizer.
    pub eps: f32,
    /// Decoupled (AdamW-style) weight decay; 0 disables it.
    pub weight_decay: f32,
    /// Gradient-norm clip applied per parameter tensor; 0 disables it.
    pub clip: f32,
    t: u64,
}

impl Adam {
    /// Adam with standard BERT hyper-parameters and the given learning rate.
    pub fn new(lr: f32) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            clip: 1.0,
            t: 0,
        }
    }

    /// Builder-style weight decay.
    pub fn with_weight_decay(mut self, wd: f32) -> Self {
        self.weight_decay = wd;
        self
    }

    /// Number of steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Applies one update to every parameter using its accumulated gradient.
    /// Does not clear gradients; call `zero_grad` afterwards.
    pub fn step(&mut self, params: &mut [&mut Param]) {
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for p in params.iter_mut() {
            // Optional per-tensor gradient clipping.
            let scale = if self.clip > 0.0 {
                let norm = p.g.norm_sq().sqrt();
                if norm > self.clip {
                    self.clip / norm
                } else {
                    1.0
                }
            } else {
                1.0
            };
            let n = p.w.data().len();
            for i in 0..n {
                let g = p.g.data()[i] * scale;
                let m = self.beta1 * p.m.data()[i] + (1.0 - self.beta1) * g;
                let v = self.beta2 * p.v.data()[i] + (1.0 - self.beta2) * g * g;
                p.m.data_mut()[i] = m;
                p.v.data_mut()[i] = v;
                let mhat = m / bc1;
                let vhat = v / bc2;
                let mut w = p.w.data()[i];
                w -= self.lr * (mhat / (vhat.sqrt() + self.eps) + self.weight_decay * w);
                p.w.data_mut()[i] = w;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;

    /// Minimizing f(w) = (w - 3)^2 converges to w = 3.
    #[test]
    fn adam_minimizes_a_quadratic() {
        let mut p = Param::new(Matrix::zeros(1, 1));
        let mut opt = Adam::new(0.1);
        for _ in 0..500 {
            let w = p.w.get(0, 0);
            p.g.set(0, 0, 2.0 * (w - 3.0));
            opt.step(&mut [&mut p]);
            p.zero_grad();
        }
        assert!((p.w.get(0, 0) - 3.0).abs() < 1e-2, "w = {}", p.w.get(0, 0));
    }

    #[test]
    fn weight_decay_pulls_toward_zero() {
        let mut p = Param::new(Matrix::from_vec(1, 1, vec![5.0]));
        let mut opt = Adam::new(0.05).with_weight_decay(0.5);
        for _ in 0..400 {
            // No task gradient at all: decay alone should shrink the weight.
            opt.step(&mut [&mut p]);
        }
        assert!(p.w.get(0, 0).abs() < 0.5, "w = {}", p.w.get(0, 0));
    }

    #[test]
    fn clipping_bounds_the_update() {
        let mut p = Param::new(Matrix::zeros(1, 1));
        let mut opt = Adam::new(0.1);
        opt.clip = 1.0;
        p.g.set(0, 0, 1e6);
        opt.step(&mut [&mut p]);
        // First Adam step magnitude is at most lr regardless of grad size.
        assert!(p.w.get(0, 0).abs() <= 0.11);
    }

    #[test]
    fn step_counter_advances() {
        let mut opt = Adam::new(0.1);
        let mut p = Param::new(Matrix::zeros(1, 1));
        assert_eq!(opt.steps(), 0);
        opt.step(&mut [&mut p]);
        opt.step(&mut [&mut p]);
        assert_eq!(opt.steps(), 2);
    }
}

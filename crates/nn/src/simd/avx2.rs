//! AVX2 kernels: one 8-lane `ymm` register per canonical 8-slot
//! accumulator.
//!
//! Every reduction keeps the scalar reference's lane assignment (lane
//! `l` sees elements `8k + l`) and combines lanes sequentially after the
//! vector loop, so results are bit-identical to [`super::scalar`].
//! Multiplies and adds stay separate instructions — **no FMA** — because
//! the scalar reference rounds twice per multiply-add (see the module
//! docs of [`super`]).
//!
//! # Safety
//! Every function is `#[target_feature(enable = "avx2")]`: callers must
//! ensure the host supports AVX2 (the dispatcher in [`super`] only
//! routes here when `is_x86_feature_detected!("avx2")` held).

#![allow(unsafe_op_in_unsafe_fn)]

use std::arch::x86_64::*;

/// Dot product; bit-identical to [`super::scalar::dot`].
#[target_feature(enable = "avx2")]
pub unsafe fn dot(a: &[f32], b: &[f32]) -> f32 {
    let n8 = a.len() / 8 * 8;
    let mut acc = _mm256_setzero_ps();
    let mut i = 0;
    while i < n8 {
        let va = _mm256_loadu_ps(a.as_ptr().add(i));
        let vb = _mm256_loadu_ps(b.as_ptr().add(i));
        acc = _mm256_add_ps(acc, _mm256_mul_ps(va, vb));
        i += 8;
    }
    let mut lanes = [0.0f32; 8];
    _mm256_storeu_ps(lanes.as_mut_ptr(), acc);
    let mut s: f32 = lanes.iter().sum();
    while i < a.len() {
        s += a[i] * b[i];
        i += 1;
    }
    s
}

/// `out[i] += a * x[i]`; element-wise, identical to the scalar loop.
#[target_feature(enable = "avx2")]
pub unsafe fn axpy(out: &mut [f32], a: f32, x: &[f32]) {
    let n8 = out.len() / 8 * 8;
    let va = _mm256_set1_ps(a);
    let mut i = 0;
    while i < n8 {
        let vx = _mm256_loadu_ps(x.as_ptr().add(i));
        let vo = _mm256_loadu_ps(out.as_ptr().add(i));
        _mm256_storeu_ps(
            out.as_mut_ptr().add(i),
            _mm256_add_ps(vo, _mm256_mul_ps(va, vx)),
        );
        i += 8;
    }
    while i < out.len() {
        out[i] += a * x[i];
        i += 1;
    }
}

/// `out[i] += x[i]`.
#[target_feature(enable = "avx2")]
pub unsafe fn add_assign(out: &mut [f32], x: &[f32]) {
    let n8 = out.len() / 8 * 8;
    let mut i = 0;
    while i < n8 {
        let vx = _mm256_loadu_ps(x.as_ptr().add(i));
        let vo = _mm256_loadu_ps(out.as_ptr().add(i));
        _mm256_storeu_ps(out.as_mut_ptr().add(i), _mm256_add_ps(vo, vx));
        i += 8;
    }
    while i < out.len() {
        out[i] += x[i];
        i += 1;
    }
}

/// `out[i] = a[i] + b[i]`.
#[target_feature(enable = "avx2")]
pub unsafe fn add(a: &[f32], b: &[f32], out: &mut [f32]) {
    let n8 = out.len() / 8 * 8;
    let mut i = 0;
    while i < n8 {
        let va = _mm256_loadu_ps(a.as_ptr().add(i));
        let vb = _mm256_loadu_ps(b.as_ptr().add(i));
        _mm256_storeu_ps(out.as_mut_ptr().add(i), _mm256_add_ps(va, vb));
        i += 8;
    }
    while i < out.len() {
        out[i] = a[i] + b[i];
        i += 1;
    }
}

/// `out[i] *= s`.
#[target_feature(enable = "avx2")]
pub unsafe fn scale(out: &mut [f32], s: f32) {
    let n8 = out.len() / 8 * 8;
    let vs = _mm256_set1_ps(s);
    let mut i = 0;
    while i < n8 {
        let vo = _mm256_loadu_ps(out.as_ptr().add(i));
        _mm256_storeu_ps(out.as_mut_ptr().add(i), _mm256_mul_ps(vo, vs));
        i += 8;
    }
    while i < out.len() {
        out[i] *= s;
        i += 1;
    }
}

/// 8-lane maximum; bit-identical to [`super::scalar::max`] for non-NaN
/// input.
#[target_feature(enable = "avx2")]
pub unsafe fn max(x: &[f32]) -> f32 {
    let n8 = x.len() / 8 * 8;
    let mut acc = _mm256_set1_ps(f32::NEG_INFINITY);
    let mut i = 0;
    while i < n8 {
        acc = _mm256_max_ps(acc, _mm256_loadu_ps(x.as_ptr().add(i)));
        i += 8;
    }
    let mut lanes = [0.0f32; 8];
    _mm256_storeu_ps(lanes.as_mut_ptr(), acc);
    let mut m = lanes[0];
    for &lane in &lanes[1..] {
        m = m.max(lane);
    }
    while i < x.len() {
        m = m.max(x[i]);
        i += 1;
    }
    m
}

/// 8-lane sum; bit-identical to [`super::scalar::sum`].
#[target_feature(enable = "avx2")]
pub unsafe fn sum(x: &[f32]) -> f32 {
    let n8 = x.len() / 8 * 8;
    let mut acc = _mm256_setzero_ps();
    let mut i = 0;
    while i < n8 {
        acc = _mm256_add_ps(acc, _mm256_loadu_ps(x.as_ptr().add(i)));
        i += 8;
    }
    let mut lanes = [0.0f32; 8];
    _mm256_storeu_ps(lanes.as_mut_ptr(), acc);
    let mut s: f32 = lanes.iter().sum();
    while i < x.len() {
        s += x[i];
        i += 1;
    }
    s
}

/// 8-lane `Σ (x[i] - mean)²`; bit-identical to
/// [`super::scalar::sum_sq_diff`].
#[target_feature(enable = "avx2")]
pub unsafe fn sum_sq_diff(x: &[f32], mean: f32) -> f32 {
    let n8 = x.len() / 8 * 8;
    let vm = _mm256_set1_ps(mean);
    let mut acc = _mm256_setzero_ps();
    let mut i = 0;
    while i < n8 {
        let d = _mm256_sub_ps(_mm256_loadu_ps(x.as_ptr().add(i)), vm);
        acc = _mm256_add_ps(acc, _mm256_mul_ps(d, d));
        i += 8;
    }
    let mut lanes = [0.0f32; 8];
    _mm256_storeu_ps(lanes.as_mut_ptr(), acc);
    let mut s: f32 = lanes.iter().sum();
    while i < x.len() {
        let d = x[i] - mean;
        s += d * d;
        i += 1;
    }
    s
}

/// 8-lane replica of [`crate::math::exp_f32`]: the same IEEE-exact
/// operation sequence (min/max clamp, `floor`-based range reduction,
/// Cody–Waite subtraction, Horner polynomial with separate mul/add,
/// exponent-field scale), so every lane is bit-identical to the scalar
/// call.
#[target_feature(enable = "avx2")]
unsafe fn exp_ps(x: __m256) -> __m256 {
    let x = _mm256_max_ps(x, _mm256_set1_ps(crate::math::EXP_LO));
    let x = _mm256_min_ps(x, _mm256_set1_ps(crate::math::EXP_HI));
    let log2e = _mm256_set1_ps(std::f32::consts::LOG2_E);
    let half = _mm256_set1_ps(0.5);
    let fx = _mm256_floor_ps(_mm256_add_ps(_mm256_mul_ps(x, log2e), half));
    let r = _mm256_sub_ps(x, _mm256_mul_ps(fx, _mm256_set1_ps(crate::math::LN2_HI)));
    let r = _mm256_sub_ps(r, _mm256_mul_ps(fx, _mm256_set1_ps(crate::math::LN2_LO)));
    let z = _mm256_mul_ps(r, r);
    let poly = crate::math::EXP_POLY;
    let mut y = _mm256_set1_ps(poly[0]);
    for c in &poly[1..] {
        y = _mm256_add_ps(_mm256_mul_ps(y, r), _mm256_set1_ps(*c));
    }
    y = _mm256_add_ps(_mm256_mul_ps(y, z), r);
    y = _mm256_add_ps(y, _mm256_set1_ps(1.0));
    // 2^n: (n + 127) << 23 in the exponent field, exact after the clamp.
    let n = _mm256_cvttps_epi32(fx);
    let pow2n = _mm256_castsi256_ps(_mm256_slli_epi32::<23>(_mm256_add_epi32(
        n,
        _mm256_set1_epi32(127),
    )));
    _mm256_mul_ps(y, pow2n)
}

/// GELU, fully in-register: the tanh-argument polynomial in the scalar
/// reference's exact multiply/add order, `tanh` via [`exp_ps`] — the
/// 8-lane replica of the `math::tanh_f32` sequence the scalar path calls
/// — so outputs are bit-identical to [`super::scalar::gelu_map`].
#[target_feature(enable = "avx2")]
pub unsafe fn gelu_map(x: &[f32], out: &mut [f32]) {
    const C: f32 = 0.797_884_6; // sqrt(2/pi), as in `layers::gelu`
    let n8 = x.len() / 8 * 8;
    let vc = _mm256_set1_ps(C);
    let vk = _mm256_set1_ps(0.044_715);
    let half = _mm256_set1_ps(0.5);
    let one = _mm256_set1_ps(1.0);
    let sat = _mm256_set1_ps(9.0);
    let nsat = _mm256_set1_ps(-9.0);
    let mut i = 0;
    while i < n8 {
        let vx = _mm256_loadu_ps(x.as_ptr().add(i));
        // ((0.044715 * x) * x) * x — same association as the scalar code.
        let x3 = _mm256_mul_ps(_mm256_mul_ps(_mm256_mul_ps(vk, vx), vx), vx);
        let inner = _mm256_mul_ps(vc, _mm256_add_ps(vx, x3));
        // tanh(inner) exactly as `math::tanh_f32`: clamp, e = exp(2a),
        // (e - 1) / (e + 1) — division is IEEE-exact per lane.
        let a = _mm256_min_ps(_mm256_max_ps(inner, nsat), sat);
        let e = exp_ps(_mm256_add_ps(a, a));
        let vt = _mm256_div_ps(_mm256_sub_ps(e, one), _mm256_add_ps(e, one));
        let vy = _mm256_mul_ps(_mm256_mul_ps(half, vx), _mm256_add_ps(one, vt));
        _mm256_storeu_ps(out.as_mut_ptr().add(i), vy);
        i += 8;
    }
    while i < x.len() {
        out[i] = crate::layers::gelu(x[i]);
        i += 1;
    }
}

/// Softmax core: `row[i] = exp(row[i] - max)`, returning the sum in the
/// canonical 8-lane accumulation order. Bit-identical to
/// [`super::scalar::exp_sum`]: [`exp_ps`] replays the `math::exp_f32`
/// sequence and the accumulator register is the scalar 8-slot layout.
#[target_feature(enable = "avx2")]
pub unsafe fn exp_sum(row: &mut [f32], max: f32) -> f32 {
    let n8 = row.len() / 8 * 8;
    let vmax = _mm256_set1_ps(max);
    let mut acc = _mm256_setzero_ps();
    let mut i = 0;
    while i < n8 {
        let e = exp_ps(_mm256_sub_ps(_mm256_loadu_ps(row.as_ptr().add(i)), vmax));
        _mm256_storeu_ps(row.as_mut_ptr().add(i), e);
        acc = _mm256_add_ps(acc, e);
        i += 8;
    }
    let mut lanes = [0.0f32; 8];
    _mm256_storeu_ps(lanes.as_mut_ptr(), acc);
    let mut s: f32 = lanes.iter().sum();
    while i < row.len() {
        let e = crate::math::exp_f32(row[i] - max);
        row[i] = e;
        s += e;
        i += 1;
    }
    s
}

/// Fused NN matmul block: `out[ri] += a_row × b` over a whole row chunk
/// with **one** dispatch, register-blocking the output stripe (4 `ymm`
/// accumulators = 32 columns held across the entire `k` loop, so the
/// per-`k` out-row load/store traffic of the axpy-stripe reference
/// disappears). Per output element the `k` axis accumulates ascending
/// with separate mul/add — the exact order of the stripe reference — so
/// results are bit-identical.
#[target_feature(enable = "avx2")]
pub unsafe fn nn_block(a: &[f32], b: &[f32], out: &mut [f32], row0: usize, k: usize, n: usize) {
    if n == 0 {
        return;
    }
    let rows = out.len() / n;
    for ri in 0..rows {
        let a_row = &a[(row0 + ri) * k..(row0 + ri + 1) * k];
        let out_row = &mut out[ri * n..(ri + 1) * n];
        let bp = b.as_ptr();
        let mut j = 0;
        while j + 32 <= n {
            let op = out_row.as_mut_ptr().add(j);
            let mut acc0 = _mm256_loadu_ps(op);
            let mut acc1 = _mm256_loadu_ps(op.add(8));
            let mut acc2 = _mm256_loadu_ps(op.add(16));
            let mut acc3 = _mm256_loadu_ps(op.add(24));
            for (kk, &av) in a_row.iter().enumerate() {
                let va = _mm256_set1_ps(av);
                let bk = bp.add(kk * n + j);
                acc0 = _mm256_add_ps(acc0, _mm256_mul_ps(va, _mm256_loadu_ps(bk)));
                acc1 = _mm256_add_ps(acc1, _mm256_mul_ps(va, _mm256_loadu_ps(bk.add(8))));
                acc2 = _mm256_add_ps(acc2, _mm256_mul_ps(va, _mm256_loadu_ps(bk.add(16))));
                acc3 = _mm256_add_ps(acc3, _mm256_mul_ps(va, _mm256_loadu_ps(bk.add(24))));
            }
            _mm256_storeu_ps(op, acc0);
            _mm256_storeu_ps(op.add(8), acc1);
            _mm256_storeu_ps(op.add(16), acc2);
            _mm256_storeu_ps(op.add(24), acc3);
            j += 32;
        }
        while j + 8 <= n {
            let op = out_row.as_mut_ptr().add(j);
            let mut acc = _mm256_loadu_ps(op);
            for (kk, &av) in a_row.iter().enumerate() {
                let va = _mm256_set1_ps(av);
                acc = _mm256_add_ps(acc, _mm256_mul_ps(va, _mm256_loadu_ps(bp.add(kk * n + j))));
            }
            _mm256_storeu_ps(op, acc);
            j += 8;
        }
        while j < n {
            let mut s = out_row[j];
            for (kk, &av) in a_row.iter().enumerate() {
                s += av * b[kk * n + j];
            }
            out_row[j] = s;
            j += 1;
        }
    }
}

/// Fused NT matmul block: row-by-row dot products, four output columns
/// at a time. The four accumulator registers form independent add chains
/// (hiding `addps` latency, which serializes a single canonical 8-lane
/// accumulator) and share each `a`-row load; each output's own
/// accumulation order — 8-lane vector loop, sequential lane fold,
/// ascending tail — is exactly [`super::scalar::dot`], so results are
/// bit-identical to the per-dot reference.
#[target_feature(enable = "avx2")]
pub unsafe fn nt_block(a: &[f32], b: &[f32], out: &mut [f32], row0: usize, k: usize, n: usize) {
    if n == 0 {
        return;
    }
    let rows = out.len() / n;
    let k8 = k / 8 * 8;
    for ri in 0..rows {
        let a_row = &a[(row0 + ri) * k..(row0 + ri + 1) * k];
        let out_row = &mut out[ri * n..(ri + 1) * n];
        let ap = a_row.as_ptr();
        let mut j = 0;
        while j + 4 <= n {
            let b0 = b.as_ptr().add(j * k);
            let b1 = b.as_ptr().add((j + 1) * k);
            let b2 = b.as_ptr().add((j + 2) * k);
            let b3 = b.as_ptr().add((j + 3) * k);
            let mut acc0 = _mm256_setzero_ps();
            let mut acc1 = _mm256_setzero_ps();
            let mut acc2 = _mm256_setzero_ps();
            let mut acc3 = _mm256_setzero_ps();
            let mut i = 0;
            while i < k8 {
                let va = _mm256_loadu_ps(ap.add(i));
                acc0 = _mm256_add_ps(acc0, _mm256_mul_ps(va, _mm256_loadu_ps(b0.add(i))));
                acc1 = _mm256_add_ps(acc1, _mm256_mul_ps(va, _mm256_loadu_ps(b1.add(i))));
                acc2 = _mm256_add_ps(acc2, _mm256_mul_ps(va, _mm256_loadu_ps(b2.add(i))));
                acc3 = _mm256_add_ps(acc3, _mm256_mul_ps(va, _mm256_loadu_ps(b3.add(i))));
                i += 8;
            }
            for (t, acc) in [acc0, acc1, acc2, acc3].into_iter().enumerate() {
                let mut lanes = [0.0f32; 8];
                _mm256_storeu_ps(lanes.as_mut_ptr(), acc);
                let mut s: f32 = lanes.iter().sum();
                let bt = &b[(j + t) * k..(j + t + 1) * k];
                for i in k8..k {
                    s += a_row[i] * bt[i];
                }
                out_row[j + t] = s;
            }
            j += 4;
        }
        while j < n {
            out_row[j] = dot(a_row, &b[j * k..(j + 1) * k]);
            j += 1;
        }
    }
}

/// LayerNorm affine step; element-wise, identical to the scalar loop.
#[target_feature(enable = "avx2")]
pub unsafe fn ln_affine(
    x: &[f32],
    mean: f32,
    rstd: f32,
    gamma: &[f32],
    beta: &[f32],
    out: &mut [f32],
) {
    let n8 = x.len() / 8 * 8;
    let vm = _mm256_set1_ps(mean);
    let vr = _mm256_set1_ps(rstd);
    let mut i = 0;
    while i < n8 {
        let h = _mm256_mul_ps(_mm256_sub_ps(_mm256_loadu_ps(x.as_ptr().add(i)), vm), vr);
        let vg = _mm256_loadu_ps(gamma.as_ptr().add(i));
        let vb = _mm256_loadu_ps(beta.as_ptr().add(i));
        _mm256_storeu_ps(
            out.as_mut_ptr().add(i),
            _mm256_add_ps(_mm256_mul_ps(h, vg), vb),
        );
        i += 8;
    }
    while i < x.len() {
        let h = (x[i] - mean) * rstd;
        out[i] = h * gamma[i] + beta[i];
        i += 1;
    }
}

/// Absolute maximum plus an all-finite flag, in one pass. `max` over
/// absolute values is associative for finite input, so the lane fold
/// agrees with [`super::scalar::abs_max_finite`] exactly (the quantizer
/// only uses the maximum when the flag is true). Finiteness is
/// `|v| <= f32::MAX` as an ordered compare, which fails for both NaN
/// and ±inf.
#[target_feature(enable = "avx2")]
pub unsafe fn abs_max_finite(row: &[f32]) -> (f32, bool) {
    let n8 = row.len() / 8 * 8;
    // Clearing the sign bit is `abs` for every input, including NaN.
    let absmask = _mm256_castsi256_ps(_mm256_set1_epi32(0x7FFF_FFFF));
    let vbig = _mm256_set1_ps(f32::MAX);
    let mut vamax = _mm256_setzero_ps();
    let mut vfin = _mm256_castsi256_ps(_mm256_set1_epi32(-1));
    let mut i = 0;
    while i < n8 {
        let vabs = _mm256_and_ps(_mm256_loadu_ps(row.as_ptr().add(i)), absmask);
        // Second operand wins on NaN (`maxps`), so NaN lanes never stick.
        vamax = _mm256_max_ps(vabs, vamax);
        vfin = _mm256_and_ps(vfin, _mm256_cmp_ps::<_CMP_LE_OQ>(vabs, vbig));
        i += 8;
    }
    let mut lanes = [0.0f32; 8];
    _mm256_storeu_ps(lanes.as_mut_ptr(), vamax);
    let mut amax = lanes[0];
    for &lane in &lanes[1..] {
        amax = crate::math::vmax(lane, amax);
    }
    let mut finite = _mm256_movemask_ps(vfin) == 0xFF;
    while i < row.len() {
        amax = crate::math::vmax(row[i].abs(), amax);
        finite &= row[i].is_finite();
        i += 1;
    }
    (amax, finite)
}

/// Activation quantization: `out[i] = round_ties_even(row[i] * inv)`
/// clamped to ±127, 16 codes per step. `vroundps` nearest is
/// ties-to-even — exactly `f32::round_ties_even` — and the max/min
/// clamp uses the same operand order as the scalar reference, so codes
/// are bit-identical to [`super::scalar::quantize_i8`].
#[target_feature(enable = "avx2")]
pub unsafe fn quantize_i8(row: &[f32], inv: f32, out: &mut [i8]) {
    const NEAREST: i32 = _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC;
    let n16 = row.len() / 16 * 16;
    let vinv = _mm256_set1_ps(inv);
    let lo = _mm256_set1_ps(-127.0);
    let hi = _mm256_set1_ps(127.0);
    let mut i = 0;
    while i < n16 {
        let q0 = _mm256_round_ps::<NEAREST>(_mm256_mul_ps(_mm256_loadu_ps(row.as_ptr().add(i)), vinv));
        let q1 = _mm256_round_ps::<NEAREST>(_mm256_mul_ps(
            _mm256_loadu_ps(row.as_ptr().add(i + 8)),
            vinv,
        ));
        let c0 = _mm256_cvtps_epi32(_mm256_min_ps(_mm256_max_ps(q0, lo), hi));
        let c1 = _mm256_cvtps_epi32(_mm256_min_ps(_mm256_max_ps(q1, lo), hi));
        // packs interleaves 128-bit halves: [c0.lo, c1.lo | c0.hi, c1.hi];
        // the 64-bit permute (0b11011000) restores element order.
        let w16 = _mm256_permute4x64_epi64::<0b1101_1000>(_mm256_packs_epi32(c0, c1));
        let codes = _mm_packs_epi16(
            _mm256_castsi256_si128(w16),
            _mm256_extracti128_si256::<1>(w16),
        );
        _mm_storeu_si128(out.as_mut_ptr().add(i) as *mut __m128i, codes);
        i += 16;
    }
    while i < row.len() {
        let q = (row[i] * inv).round_ties_even();
        out[i] = crate::math::vmin(crate::math::vmax(q, -127.0), 127.0) as i8;
        i += 1;
    }
}

/// Widening `i8 × i8 → i32` dot: 16 bytes per step through
/// `cvtepi8_epi16` + `madd_epi16`. Integer arithmetic is exact, so this
/// equals [`super::scalar::dot_i8`] for any accumulation order.
#[target_feature(enable = "avx2")]
pub unsafe fn dot_i8(a: &[i8], b: &[i8]) -> i32 {
    let n16 = a.len() / 16 * 16;
    let mut acc = _mm256_setzero_si256();
    let mut i = 0;
    while i < n16 {
        let va = _mm_loadu_si128(a.as_ptr().add(i) as *const __m128i);
        let vb = _mm_loadu_si128(b.as_ptr().add(i) as *const __m128i);
        let wa = _mm256_cvtepi8_epi16(va);
        let wb = _mm256_cvtepi8_epi16(vb);
        acc = _mm256_add_epi32(acc, _mm256_madd_epi16(wa, wb));
        i += 16;
    }
    let mut lanes = [0i32; 8];
    _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, acc);
    let mut s: i32 = lanes.iter().sum();
    while i < a.len() {
        s += a[i] as i32 * b[i] as i32;
        i += 1;
    }
    s
}

/// Whole int8 matvec plus rescale in one dispatch:
/// `out[o] = (Σ_i xq[i]·wq[o·k+i]) as f32 × (x_scale·scales[o]) + bias[o]`.
/// Four weight rows share each activation load; the four row sums reduce
/// together with an integer hadd transpose (exact, so any order matches
/// the scalar fold), and the rescale runs the scalar expression's exact
/// multiply/add sequence in 4 lanes — no FMA — so results are
/// bit-identical to the per-dot reference.
#[target_feature(enable = "avx2")]
pub unsafe fn quant_matvec(
    xq: &[i8],
    x_scale: f32,
    wq: &[i8],
    scales: &[f32],
    bias: &[f32],
    out: &mut [f32],
) {
    let k = xq.len();
    let n = out.len();
    let n16 = k / 16 * 16;
    let vxs = _mm_set1_ps(x_scale);
    let mut o = 0;
    while o + 4 <= n {
        let mut acc = [_mm256_setzero_si256(); 4];
        let mut i = 0;
        while i < n16 {
            let wa = _mm256_cvtepi8_epi16(_mm_loadu_si128(xq.as_ptr().add(i) as *const __m128i));
            for (t, at) in acc.iter_mut().enumerate() {
                let wb = _mm256_cvtepi8_epi16(_mm_loadu_si128(
                    wq.as_ptr().add((o + t) * k + i) as *const __m128i
                ));
                *at = _mm256_add_epi32(*at, _mm256_madd_epi16(wa, wb));
            }
            i += 16;
        }
        // hadd transpose: one 4-lane register holding the four row sums.
        let h01 = _mm256_hadd_epi32(acc[0], acc[1]);
        let h23 = _mm256_hadd_epi32(acc[2], acc[3]);
        let h = _mm256_hadd_epi32(h01, h23);
        let mut sums =
            _mm_add_epi32(_mm256_castsi256_si128(h), _mm256_extracti128_si256::<1>(h));
        if i < k {
            let mut tails = [0i32; 4];
            for (t, tail) in tails.iter_mut().enumerate() {
                let mut s = 0i32;
                for ii in i..k {
                    s += xq[ii] as i32 * wq[(o + t) * k + ii] as i32;
                }
                *tail = s;
            }
            sums = _mm_add_epi32(sums, _mm_loadu_si128(tails.as_ptr() as *const __m128i));
        }
        let accf = _mm_cvtepi32_ps(sums);
        let vs = _mm_mul_ps(vxs, _mm_loadu_ps(scales.as_ptr().add(o)));
        let vy = _mm_add_ps(_mm_mul_ps(accf, vs), _mm_loadu_ps(bias.as_ptr().add(o)));
        _mm_storeu_ps(out.as_mut_ptr().add(o), vy);
        o += 4;
    }
    while o < n {
        let acc = dot_i8(xq, &wq[o * k..(o + 1) * k]);
        out[o] = acc as f32 * (x_scale * scales[o]) + bias[o];
        o += 1;
    }
}

/// Four int8 dots against four consecutive weight rows (`w.len() == 4 *
/// a.len()`), sharing each activation load and keeping four independent
/// accumulator chains. Integer arithmetic is exact, so this equals four
/// [`super::scalar::dot_i8`] calls.
#[target_feature(enable = "avx2")]
pub unsafe fn dot_i8x4(a: &[i8], w: &[i8]) -> [i32; 4] {
    let k = a.len();
    debug_assert_eq!(w.len(), 4 * k);
    let n16 = k / 16 * 16;
    let mut acc = [_mm256_setzero_si256(); 4];
    let mut i = 0;
    while i < n16 {
        let wa = _mm256_cvtepi8_epi16(_mm_loadu_si128(a.as_ptr().add(i) as *const __m128i));
        for (t, at) in acc.iter_mut().enumerate() {
            let wb = _mm256_cvtepi8_epi16(_mm_loadu_si128(
                w.as_ptr().add(t * k + i) as *const __m128i
            ));
            *at = _mm256_add_epi32(*at, _mm256_madd_epi16(wa, wb));
        }
        i += 16;
    }
    let mut out = [0i32; 4];
    for (t, (o, at)) in out.iter_mut().zip(acc).enumerate() {
        let mut lanes = [0i32; 8];
        _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, at);
        let mut s: i32 = lanes.iter().sum();
        for ii in i..k {
            s += a[ii] as i32 * w[t * k + ii] as i32;
        }
        *o = s;
    }
    out
}

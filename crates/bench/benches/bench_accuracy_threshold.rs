//! Criterion bench for the Figure 10 path: metric scoring across accuracy
//! thresholds δ (imputation output is δ-independent, so this isolates the
//! discretized recall/precision evaluation cost).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kamel_baselines::TrajectoryImputer;
use kamel_bench::{default_kamel_config, City};
use kamel_eval::harness::train_kamel;
use kamel_eval::MetricsAccumulator;
use kamel_roadsim::DatasetScale;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let dataset = City::Porto.dataset(DatasetScale::Small);
    let (kamel, _) = train_kamel(&dataset, default_kamel_config().pyramid_height(3).model_threshold_k(150).build());
    let proj = dataset.projection();
    // Pre-impute a slice so the bench isolates metric computation.
    let pairs: Vec<_> = dataset
        .test
        .iter()
        .take(8)
        .map(|gt| (gt.clone(), kamel.impute(&gt.sparsify(1_000.0)).trajectory))
        .collect();
    let mut group = c.benchmark_group("fig10_accuracy_threshold");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    for delta_m in [5.0f64, 25.0, 50.0, 100.0] {
        group.bench_with_input(
            BenchmarkId::from_parameter(delta_m as u64),
            &delta_m,
            |b, &delta| {
                b.iter(|| {
                    let mut acc = MetricsAccumulator::default();
                    for (gt, imp) in &pairs {
                        acc.add_pair(gt, imp, &proj, 100.0, delta);
                    }
                    std::hint::black_box(acc.point_metrics())
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Replay-based regression gating for continual-learning rollouts.
//!
//! Before a retrained checkpoint replaces the serving generation, both
//! systems impute the same held-out replay set (sparse request → known
//! ground truth, typically from `/v1/feedback` corrections) and are
//! scored with the core's recall proxy. The rollout proceeds only when
//! the new model's score has not dropped by more than an epsilon — a
//! cheap, deterministic answer to "did this retrain make serving worse?".

use kamel::{replay_recall, Kamel};
use kamel_geo::Trajectory;

/// One held-out replay example.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayCase {
    /// The sparse trajectory as a client would submit it.
    pub sparse: Trajectory,
    /// The dense ground truth for the same trip.
    pub truth: Trajectory,
}

/// The gate's verdict, with both scores for the audit log.
#[derive(Debug, Clone, PartialEq)]
pub struct GateReport {
    /// Replay cases scored.
    pub cases: usize,
    /// Mean replay recall of the serving (old) system.
    pub old_score: f64,
    /// Mean replay recall of the retrained (new) system.
    pub new_score: f64,
    /// Allowed score drop.
    pub epsilon: f64,
    /// `true` when the new system may roll out.
    pub pass: bool,
}

/// Mean replay recall of `kamel` over `cases` at threshold `delta_m`.
/// An empty case list scores 0.
pub fn replay_score(kamel: &Kamel, cases: &[ReplayCase], delta_m: f64) -> f64 {
    if cases.is_empty() {
        return 0.0;
    }
    let total: f64 = cases
        .iter()
        .map(|c| replay_recall(&c.truth, &kamel.impute(&c.sparse).trajectory, delta_m))
        .sum();
    total / cases.len() as f64
}

/// Scores `old` and `new` on the same replay set and passes iff the new
/// score is within `epsilon` of the old one (improvements always pass).
/// An empty replay set passes vacuously — with nothing to compare, the
/// gate cannot justify blocking a rollout.
pub fn regression_gate(
    old: &Kamel,
    new: &Kamel,
    cases: &[ReplayCase],
    delta_m: f64,
    epsilon: f64,
) -> GateReport {
    let old_score = replay_score(old, cases, delta_m);
    let new_score = replay_score(new, cases, delta_m);
    GateReport {
        cases: cases.len(),
        old_score,
        new_score,
        epsilon,
        pass: cases.is_empty() || new_score + epsilon >= old_score,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kamel::KamelConfig;
    use kamel_geo::GpsPoint;

    /// Trips along an L-shaped street (east, then a 90° turn north),
    /// fixes every ~84–111 m. The corner matters: an untrained system's
    /// straight-line fallback cuts it, so only a trained model scores
    /// well here.
    fn street_corpus(n: usize) -> Vec<Trajectory> {
        (0..n)
            .map(|_| {
                Trajectory::new(
                    (0..30)
                        .map(|i| {
                            let (lat, lng) = if i < 15 {
                                (41.15, -8.61 + i as f64 * 0.001)
                            } else {
                                (41.15 + (i - 14) as f64 * 0.001, -8.61 + 14.0 * 0.001)
                            };
                            GpsPoint::from_parts(lat, lng, i as f64 * 10.0)
                        })
                        .collect(),
                )
            })
            .collect()
    }

    /// Small pyramid + low model threshold so 30 trips are enough to
    /// build serving models.
    fn trained_config() -> KamelConfig {
        KamelConfig::builder()
            .model_threshold_k(50)
            .pyramid_height(3)
            .build()
    }

    fn replay_cases(corpus: &[Trajectory]) -> Vec<ReplayCase> {
        corpus
            .iter()
            .take(3)
            .map(|gt| ReplayCase {
                sparse: gt.sparsify(1000.0),
                truth: gt.clone(),
            })
            .collect()
    }

    #[test]
    fn trained_beats_untrained_and_gate_blocks_the_downgrade() {
        let corpus = street_corpus(30);
        let cases = replay_cases(&corpus);
        let trained = Kamel::new(trained_config());
        trained.train(&corpus);
        let untrained = Kamel::new(trained_config());
        let up = regression_gate(&untrained, &trained, &cases, 50.0, 0.01);
        assert!(up.pass, "improvement must pass: {up:?}");
        assert!(up.new_score > up.old_score);
        let down = regression_gate(&trained, &untrained, &cases, 50.0, 0.01);
        assert!(!down.pass, "regression must be blocked: {down:?}");
    }

    #[test]
    fn identical_systems_pass_at_zero_epsilon() {
        let corpus = street_corpus(30);
        let cases = replay_cases(&corpus);
        let kamel = Kamel::new(trained_config());
        kamel.train(&corpus);
        let report = regression_gate(&kamel, &kamel, &cases, 50.0, 0.0);
        assert!(report.pass);
        assert_eq!(report.old_score, report.new_score);
    }

    #[test]
    fn empty_replay_set_passes_vacuously() {
        let a = Kamel::new(KamelConfig::default());
        let b = Kamel::new(KamelConfig::default());
        let report = regression_gate(&a, &b, &[], 50.0, 0.0);
        assert!(report.pass);
        assert_eq!(report.cases, 0);
    }
}

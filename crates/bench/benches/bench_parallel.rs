//! Sequential-vs-parallel speedup of the three compute tiers: matmul
//! kernels, per-cell pyramid maintenance, and batch imputation. Writes
//! `BENCH_parallel.json` at the repo root so the perf trajectory is
//! tracked across PRs.
//!
//! Run with `cargo bench --bench bench_parallel`. Not a criterion bench:
//! each tier is timed best-of-N with `Instant` because the parallel paths
//! are compared against their own sequential twins, and bit-identity is
//! asserted along the way.

use kamel::partition::Repository;
use kamel::{Kamel, KamelConfig};
use kamel_bench::{default_kamel_config, City};
use kamel_geo::{BBox, Trajectory, Xy};
use kamel_hexgrid::CellId;
use kamel_lm::EngineConfig;
use kamel_nn::Matrix;
use kamel_roadsim::DatasetScale;
use kamel_trajstore::{TokenTrajectory, TrajStore};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde_json::json;
use std::time::Instant;

/// Best-of-`reps` wall time of `f` in seconds.
fn best_of<T>(reps: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        let out = f();
        best = best.min(t0.elapsed().as_secs_f64());
        last = Some(out);
    }
    (best, last.expect("reps >= 1"))
}

fn speedup(seq_s: f64, par_s: f64) -> f64 {
    if par_s > 0.0 {
        seq_s / par_s
    } else {
        f64::INFINITY
    }
}

/// Matmul sweep: square NN products, sequential kernel vs the parallel one
/// on the full thread budget.
fn bench_matmul(budget: usize) -> Vec<serde_json::Value> {
    let mut rows = Vec::new();
    for size in [64usize, 128, 256, 384] {
        let mut rng = ChaCha8Rng::seed_from_u64(size as u64);
        let a = Matrix::randn(size, size, 1.0, &mut rng);
        let b = Matrix::randn(size, size, 1.0, &mut rng);
        let reps = if size <= 128 { 20 } else { 8 };
        let (seq_s, seq) = best_of(reps, || a.matmul_seq(&b));
        let (par_s, par) = best_of(reps, || a.matmul_par_with(&b, budget));
        assert_eq!(seq.data(), par.data(), "parallel kernel diverged at {size}");
        rows.push(json!({
            "size": size,
            "seq_s": seq_s,
            "par_s": par_s,
            "speedup": speedup(seq_s, par_s),
        }));
    }
    rows
}

/// Inserts `n` short trajectories confined to `region` into the store
/// (same synthetic traffic shape as the partition unit tests).
fn fill_region(store: &mut TrajStore, region: BBox, n: usize) {
    let w = region.width();
    let h = region.height();
    for i in 0..n {
        let base_x = region.min.x + w * 0.2 + (i as f64 * 13.0) % (w * 0.6);
        let base_y = region.min.y + h * 0.2 + (i as f64 * 7.0) % (h * 0.6);
        let xy: Vec<Xy> = (0..5)
            .map(|j| Xy::new(base_x + j as f64 * 5.0, base_y))
            .collect();
        let cells: Vec<CellId> = xy
            .iter()
            .map(|p| CellId::from_coords((p.x / 75.0) as i32, (p.y / 75.0) as i32))
            .collect();
        let t: Vec<f64> = (0..5).map(|j| j as f64).collect();
        store.insert(TokenTrajectory::new(cells, xy, t));
    }
}

/// One full `maintain` pass over a multi-cell pyramid, 1 worker vs budget.
fn bench_maintain(budget: usize) -> serde_json::Value {
    let root = BBox::new(Xy::new(0.0, 0.0), Xy::new(1600.0, 1600.0));
    let config = KamelConfig::builder()
        .pyramid_height(3)
        .pyramid_maintained(3)
        .model_threshold_k(10)
        .build();
    let mut store = TrajStore::new(200.0);
    fill_region(&mut store, root, 2_000);
    let engine = EngineConfig::default();
    let (seq_s, seq_repo) = best_of(3, || {
        let mut repo = Repository::new(root, &config);
        repo.maintain_with_threads(&store, &root, &engine, 1);
        repo
    });
    let (par_s, par_repo) = best_of(3, || {
        let mut repo = Repository::new(root, &config);
        repo.maintain_with_threads(&store, &root, &engine, budget);
        repo
    });
    assert_eq!(
        seq_repo.model_count(),
        par_repo.model_count(),
        "parallel maintenance diverged"
    );
    json!({
        "models": seq_repo.model_count(),
        "seq_s": seq_s,
        "par_s": par_s,
        "speedup": speedup(seq_s, par_s),
    })
}

/// Batch imputation over the Porto analogue's test slice, 1 worker vs
/// budget.
fn bench_impute(budget: usize) -> serde_json::Value {
    let dataset = City::Porto.dataset(DatasetScale::Small);
    let kamel = Kamel::new(default_kamel_config().build());
    kamel.train(&dataset.train);
    let sparse: Vec<Trajectory> = dataset
        .test
        .iter()
        .take(60)
        .map(|t| t.sparsify(1_000.0))
        .collect();
    let (seq_s, seq) = best_of(3, || kamel.impute_batch_with_threads(&sparse, 1));
    let (par_s, par) = best_of(3, || kamel.impute_batch_with_threads(&sparse, budget));
    assert_eq!(seq, par, "parallel batch imputation diverged");
    json!({
        "trajectories": sparse.len(),
        "seq_s": seq_s,
        "par_s": par_s,
        "speedup": speedup(seq_s, par_s),
    })
}

fn main() {
    let host = kamel_nn::available_threads();
    let budget = kamel_nn::thread_budget();
    eprintln!("bench_parallel: host threads = {host}, budget = {budget}");
    // A sequential-vs-parallel comparison on one hardware thread measures
    // scheduling overhead, not speedup. Say so loudly and tag the output
    // instead of silently writing numbers that look like a regression.
    let status = if host > 1 && budget > 1 {
        "measured"
    } else {
        eprintln!(
            "WARNING: bench_parallel is running with host_threads={host}, \
             thread_budget={budget}.\n\
             WARNING: parallel speedups measured here are NOT representative; \
             the output will carry status \"measured-single-core\".\n\
             WARNING: rerun on a multi-core host (and unset KAMEL_THREADS) \
             for real numbers."
        );
        "measured-single-core"
    };
    let matmul = bench_matmul(budget);
    eprintln!("matmul sweep done");
    let maintain = bench_maintain(budget);
    eprintln!("maintain pass done");
    let impute = bench_impute(budget);
    eprintln!("batch impute done");
    let doc = json!({
        "bench": "bench_parallel",
        "status": status,
        "host_threads": host,
        "thread_budget": budget,
        "matmul": matmul,
        "maintain": maintain,
        "impute_batch": impute,
    });
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_parallel.json");
    std::fs::write(path, serde_json::to_string_pretty(&doc).expect("serialize"))
        .expect("write BENCH_parallel.json");
    println!("{}", serde_json::to_string_pretty(&doc).expect("serialize"));
    println!("wrote {path}");
}

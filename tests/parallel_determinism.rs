//! The parallel execution layer's determinism contract, end to end: the
//! worker-thread budget may only change wall-clock time, never results.
//! Training must serialize to byte-identical JSON and batch imputation
//! must return element-identical output for any thread count.

use kamel::{Kamel, KamelConfig, KamelConfigBuilder};
use kamel_geo::{GpsPoint, Trajectory};

/// A straight east-west street at `lat`, `n` fixes ~84 m apart.
fn street(lat: f64, lng0: f64, n: usize) -> Trajectory {
    Trajectory::new(
        (0..n)
            .map(|i| GpsPoint::from_parts(lat, lng0 + i as f64 * 0.001, i as f64 * 10.0))
            .collect(),
    )
}

/// A corpus spread over several districts so maintenance builds models in
/// multiple pyramid cells — the parallel fan-out has real work to race on.
fn multi_cell_corpus() -> Vec<Trajectory> {
    let mut corpus = Vec::new();
    for _ in 0..30 {
        corpus.push(street(41.15, -8.61, 25));
        corpus.push(street(41.25, -8.61, 25));
        corpus.push(street(41.20, -8.52, 25));
    }
    corpus
}

fn builder() -> KamelConfigBuilder {
    KamelConfig::builder()
        .pyramid_height(3)
        .pyramid_maintained(3)
        .model_threshold_k(60)
}

#[test]
fn training_serializes_identically_across_thread_budgets() {
    let seq = Kamel::new(builder().threads(Some(1)).build());
    seq.train(&multi_cell_corpus());
    let par = Kamel::new(builder().threads(Some(4)).build());
    par.train(&multi_cell_corpus());
    assert!(seq.stats().expect("trained").models > 1, "want several models");
    // The configs differ only in the `threads` knob itself; null it out so
    // the comparison covers every trained artifact (store, repository,
    // detokenizer, speed cap).
    let normalize = |kamel: &Kamel| {
        let mut v: serde_json::Value =
            serde_json::from_str(&kamel.to_json().expect("serialize")).expect("json");
        v["config"]["threads"] = serde_json::Value::Null;
        v.to_string()
    };
    assert_eq!(
        normalize(&seq),
        normalize(&par),
        "trained state must not depend on the thread budget"
    );
}

#[test]
fn batch_imputation_is_thread_count_invariant_and_order_preserving() {
    let kamel = Kamel::new(builder().build());
    kamel.train(&multi_cell_corpus());
    // One sparse trajectory per district, each with a large gap, plus a
    // degenerate single-point one to exercise the pass-through path.
    let sparse = vec![
        street(41.15, -8.61, 25).sparsify(800.0),
        street(41.25, -8.61, 25).sparsify(800.0),
        street(41.20, -8.52, 25).sparsify(800.0),
        Trajectory::new(vec![GpsPoint::from_parts(41.15, -8.61, 0.0)]),
        street(41.15, -8.61, 25).sparsify(600.0),
    ];
    let seq = kamel.impute_batch_with_threads(&sparse, 1);
    for threads in [2, 4, 8] {
        let par = kamel.impute_batch_with_threads(&sparse, threads);
        assert_eq!(seq, par, "results diverged at {threads} threads");
    }
    // Order preserved: output i corresponds to input i.
    assert_eq!(seq.len(), sparse.len());
    for (s, r) in sparse.iter().zip(&seq) {
        assert!(r.trajectory.len() >= s.len(), "output shorter than input");
    }
}

//! End-to-end test of the paper's BERT engine: the full pipeline
//! (tokenize → pyramid → BERT MLM → constraints → beam → detokenize) with
//! the from-scratch transformer doing the predicting.
//!
//! Kept at street scale so the suite stays fast: a tiny BERT trains in
//! seconds on a ~40-cell vocabulary.

use kamel::{Kamel, KamelConfig};
use kamel_geo::{GpsPoint, Trajectory};
use kamel_lm::{BertEngineConfig, EngineConfig};

/// Trips along one straight street, fixes every ~84 m.
fn street_corpus(n: usize) -> Vec<Trajectory> {
    (0..n)
        .map(|_| {
            Trajectory::new(
                (0..25)
                    .map(|i| GpsPoint::from_parts(41.15, -8.61 + i as f64 * 0.001, i as f64 * 10.0))
                    .collect(),
            )
        })
        .collect()
}

fn bert_kamel() -> Kamel {
    // A one-level pyramid (root only) so exactly one BERT is trained —
    // per-cell BERTs would slow the suite without adding coverage; the
    // pyramid mechanics are exercised by the n-gram integration tests.
    Kamel::new(
        KamelConfig::builder()
            .pyramid_height(1)
            .pyramid_maintained(1)
            .model_threshold_k(40)
            .engine(EngineConfig::Bert(BertEngineConfig::for_tests()))
            .build(),
    )
}

#[test]
fn bert_engine_imputes_a_street_gap() {
    let kamel = bert_kamel();
    kamel.train(&street_corpus(30));
    let stats = kamel.stats().expect("trained");
    assert!(stats.models >= 1, "no BERT models trained");
    // ~1.7 km gap along the street.
    let sparse = Trajectory::new(vec![
        GpsPoint::from_parts(41.15, -8.610, 0.0),
        GpsPoint::from_parts(41.15, -8.609, 10.0),
        GpsPoint::from_parts(41.15, -8.592, 180.0),
        GpsPoint::from_parts(41.15, -8.591, 190.0),
    ]);
    let out = kamel.impute(&sparse);
    assert_eq!(out.gaps.len(), 1);
    assert!(
        !out.gaps[0].outcome.failed,
        "BERT engine failed the gap: {:?}",
        out.gaps[0]
    );
    assert!(out.imputed_points() >= 8, "too few points: {out:?}");
    // Imputed points stay on the street.
    for p in &out.trajectory.points {
        assert!((p.pos.lat - 41.15).abs() < 0.002, "stray point {p:?}");
    }
}

#[test]
fn bert_engine_state_roundtrips_through_persistence() {
    let kamel = bert_kamel();
    kamel.train(&street_corpus(20));
    let sparse = street_corpus(1)[0].sparsify(900.0);
    let before = kamel.impute(&sparse);
    let json = kamel.to_json().expect("serialize BERT state");
    let restored = Kamel::from_json(&json).expect("restore BERT state");
    assert_eq!(before, restored.impute(&sparse));
}

//! Multi-head scaled dot-product self-attention with padding masks.
//!
//! One sequence at a time: activations are `[seq_len, hidden]`, heads are
//! column slices of the fused Q/K/V projections. The backward pass is exact
//! (validated against finite differences in the tests).

use crate::layers::{softmax_rows, softmax_rows_backward, Linear, Param};
use crate::matrix::Matrix;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Multi-head self-attention block.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MultiHeadAttention {
    /// Query projection `[hidden, hidden]`.
    pub wq: Linear,
    /// Key projection `[hidden, hidden]`.
    pub wk: Linear,
    /// Value projection `[hidden, hidden]`.
    pub wv: Linear,
    /// Output projection `[hidden, hidden]`.
    pub wo: Linear,
    heads: usize,
    head_dim: usize,
}

/// Forward-pass values the backward pass needs.
#[derive(Debug, Clone)]
pub struct AttnCache {
    /// Input activations `[n, hidden]`.
    pub x: Matrix,
    /// Projected queries/keys/values `[n, hidden]`.
    pub q: Matrix,
    /// Projected keys.
    pub k: Matrix,
    /// Projected values.
    pub v: Matrix,
    /// Per-head attention weights (post-softmax), each `[n, n]`.
    pub attn: Vec<Matrix>,
    /// Concatenated head outputs `[n, hidden]` (input of `wo`).
    pub concat: Matrix,
}

impl MultiHeadAttention {
    /// Creates an attention block with `hidden` features split across
    /// `heads` heads.
    ///
    /// # Panics
    /// Panics when `hidden` is not divisible by `heads`.
    pub fn new(hidden: usize, heads: usize, rng: &mut impl Rng) -> Self {
        assert!(
            heads > 0 && hidden.is_multiple_of(heads),
            "hidden {hidden} must be divisible by heads {heads}"
        );
        Self {
            wq: Linear::new(hidden, hidden, rng),
            wk: Linear::new(hidden, hidden, rng),
            wv: Linear::new(hidden, hidden, rng),
            wo: Linear::new(hidden, hidden, rng),
            heads,
            head_dim: hidden / heads,
        }
    }

    /// Self-attention over `x: [n, hidden]`.
    ///
    /// `valid` marks real (non-padding) positions; keys at padded positions
    /// receive −∞ scores. Pass `None` when every position is valid.
    pub fn forward(&self, x: &Matrix, valid: Option<&[bool]>) -> (Matrix, AttnCache) {
        let n = x.rows();
        let q = self.wq.forward(x);
        let k = self.wk.forward(x);
        let v = self.wv.forward(x);
        let scale = 1.0 / (self.head_dim as f32).sqrt();
        let mut concat = Matrix::zeros(n, self.heads * self.head_dim);
        let mut attn = Vec::with_capacity(self.heads);
        for h in 0..self.heads {
            let (qs, ks, vs) = (
                head_slice(&q, h, self.head_dim),
                head_slice(&k, h, self.head_dim),
                head_slice(&v, h, self.head_dim),
            );
            // scores = Q·Kᵀ / sqrt(d_head)
            let mut scores = qs.matmul_nt(&ks);
            scores.scale(scale);
            if let Some(mask) = valid {
                debug_assert_eq!(mask.len(), n);
                for r in 0..n {
                    let row = scores.row_mut(r);
                    for (c, &ok) in mask.iter().enumerate() {
                        if !ok {
                            row[c] = f32::NEG_INFINITY;
                        }
                    }
                }
            }
            softmax_rows(&mut scores);
            let out = scores.matmul(&vs);
            // Write the head output back into its column slice.
            for r in 0..n {
                let dst = &mut concat.row_mut(r)[h * self.head_dim..(h + 1) * self.head_dim];
                dst.copy_from_slice(out.row(r));
            }
            attn.push(scores);
        }
        let y = self.wo.forward(&concat);
        (
            y,
            AttnCache {
                x: x.clone(),
                q,
                k,
                v,
                attn,
                concat,
            },
        )
    }

    /// Backward pass; accumulates all projection gradients and returns dx.
    pub fn backward(&mut self, cache: &AttnCache, dy: &Matrix) -> Matrix {
        let n = dy.rows();
        let hidden = self.heads * self.head_dim;
        let scale = 1.0 / (self.head_dim as f32).sqrt();
        // Through the output projection.
        let dconcat = self.wo.backward(&cache.concat, dy);
        let mut dq = Matrix::zeros(n, hidden);
        let mut dk = Matrix::zeros(n, hidden);
        let mut dv = Matrix::zeros(n, hidden);
        for h in 0..self.heads {
            let a = &cache.attn[h];
            let dout_h = head_slice(&dconcat, h, self.head_dim);
            let (qs, ks, vs) = (
                head_slice(&cache.q, h, self.head_dim),
                head_slice(&cache.k, h, self.head_dim),
                head_slice(&cache.v, h, self.head_dim),
            );
            // out = A·V
            let dv_h = a.matmul_tn(&dout_h);
            let da = dout_h.matmul_nt(&vs);
            // Through the softmax.
            let mut dscores = softmax_rows_backward(a, &da);
            dscores.scale(scale);
            let dq_h = dscores.matmul(&ks);
            let dk_h = dscores.matmul_tn(&qs);
            write_head(&mut dq, &dq_h, h, self.head_dim);
            write_head(&mut dk, &dk_h, h, self.head_dim);
            write_head(&mut dv, &dv_h, h, self.head_dim);
        }
        let mut dx = self.wq.backward(&cache.x, &dq);
        dx.add_assign(&self.wk.backward(&cache.x, &dk));
        dx.add_assign(&self.wv.backward(&cache.x, &dv));
        dx
    }

    /// All trainable parameters of the block.
    pub fn params(&mut self) -> Vec<&mut Param> {
        let mut out = Vec::with_capacity(8);
        out.extend(self.wq.params());
        out.extend(self.wk.params());
        out.extend(self.wv.params());
        out.extend(self.wo.params());
        out
    }

    /// Number of heads.
    pub fn heads(&self) -> usize {
        self.heads
    }

    /// Features per head (`hidden / heads`).
    pub fn head_dim(&self) -> usize {
        self.head_dim
    }
}

/// Copies the `[n, head_dim]` column slice of head `h` out of `[n, hidden]`.
fn head_slice(m: &Matrix, h: usize, head_dim: usize) -> Matrix {
    let n = m.rows();
    let mut out = Matrix::zeros(n, head_dim);
    for r in 0..n {
        out.row_mut(r)
            .copy_from_slice(&m.row(r)[h * head_dim..(h + 1) * head_dim]);
    }
    out
}

/// Writes a `[n, head_dim]` slice back into head `h` of `[n, hidden]`.
fn write_head(dst: &mut Matrix, src: &Matrix, h: usize, head_dim: usize) {
    for r in 0..src.rows() {
        dst.row_mut(r)[h * head_dim..(h + 1) * head_dim].copy_from_slice(src.row(r));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn output_shape_matches_input() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let attn = MultiHeadAttention::new(8, 2, &mut rng);
        let x = Matrix::randn(5, 8, 1.0, &mut rng);
        let (y, cache) = attn.forward(&x, None);
        assert_eq!((y.rows(), y.cols()), (5, 8));
        assert_eq!(cache.attn.len(), 2);
        // Attention rows are distributions.
        for a in &cache.attn {
            for r in 0..a.rows() {
                let s: f32 = a.row(r).iter().sum();
                assert!((s - 1.0).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn padding_mask_zeroes_attention_to_padded_keys() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let attn = MultiHeadAttention::new(8, 2, &mut rng);
        let x = Matrix::randn(4, 8, 1.0, &mut rng);
        let valid = [true, true, false, true];
        let (_, cache) = attn.forward(&x, Some(&valid));
        for a in &cache.attn {
            for r in 0..4 {
                assert!(a.get(r, 2).abs() < 1e-7, "row {r} attends to padding");
            }
        }
    }

    #[test]
    fn masked_position_does_not_influence_valid_outputs() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let attn = MultiHeadAttention::new(8, 2, &mut rng);
        let mut x = Matrix::randn(4, 8, 1.0, &mut rng);
        let valid = [true, true, false, true];
        let (y1, _) = attn.forward(&x, Some(&valid));
        // Perturb the padded position's features.
        for c in 0..8 {
            x.set(2, c, x.get(2, c) + 5.0);
        }
        let (y2, _) = attn.forward(&x, Some(&valid));
        for r in [0usize, 1, 3] {
            for c in 0..8 {
                assert!(
                    (y1.get(r, c) - y2.get(r, c)).abs() < 1e-5,
                    "padding leaked into ({r},{c})"
                );
            }
        }
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let mut attn = MultiHeadAttention::new(4, 2, &mut rng);
        let x = Matrix::randn(3, 4, 0.5, &mut rng);
        let upstream = Matrix::from_fn(3, 4, |r, c| ((r + 2 * c) % 3) as f32 - 1.0);
        let (_, cache) = attn.forward(&x, None);
        let dx = attn.backward(&cache, &upstream);
        let eval = attn.clone();
        let loss = |xm: &Matrix| {
            let (y, _) = eval.forward(xm, None);
            y.frobenius_dot(&upstream)
        };
        for (r, c) in [(0, 0), (1, 2), (2, 3)] {
            let eps = 1e-2;
            let mut x2 = x.clone();
            let orig = x2.get(r, c);
            x2.set(r, c, orig + eps);
            let up = loss(&x2);
            x2.set(r, c, orig - eps);
            let down = loss(&x2);
            let num = (up - down) / (2.0 * eps);
            assert!(
                (num - dx.get(r, c)).abs() < 2e-2,
                "dx[{r},{c}] num {num} got {}",
                dx.get(r, c)
            );
        }
        // Weight gradient check on wq.
        for (r, c) in [(0, 0), (3, 1)] {
            let snapshot = attn.clone();
            let eps = 1e-2;
            let mut up_model = snapshot.clone();
            up_model.wq.weight.w.set(r, c, snapshot.wq.weight.w.get(r, c) + eps);
            let (yu, _) = up_model.forward(&x, None);
            let mut dn_model = snapshot.clone();
            dn_model.wq.weight.w.set(r, c, snapshot.wq.weight.w.get(r, c) - eps);
            let (yd, _) = dn_model.forward(&x, None);
            let num = (yu.frobenius_dot(&upstream) - yd.frobenius_dot(&upstream)) / (2.0 * eps);
            let got = attn.wq.weight.g.get(r, c);
            assert!((num - got).abs() < 2e-2, "dWq[{r},{c}] num {num} got {got}");
        }
    }

    #[test]
    #[should_panic(expected = "divisible")]
    fn rejects_indivisible_heads() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let _ = MultiHeadAttention::new(10, 3, &mut rng);
    }
}

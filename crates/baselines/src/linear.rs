//! The linear-interpolation baseline.

use crate::{ImputationOutput, TrajectoryImputer};
use kamel_geo::{GpsPoint, Trajectory};

/// Imputes every gap with a straight line, materializing interior points at
/// a fixed spacing. The paper treats every such gap as a failure by
/// definition (§8.1: "By definition, linear interpolation has a 100%
/// failure rate").
#[derive(Debug, Clone, Copy)]
pub struct LinearImputer {
    /// Gap threshold and interior point spacing in meters (the system
    /// `max_gap`, default 100 m).
    pub max_gap_m: f64,
}

impl Default for LinearImputer {
    fn default() -> Self {
        Self { max_gap_m: 100.0 }
    }
}

impl TrajectoryImputer for LinearImputer {
    fn name(&self) -> &str {
        "Linear"
    }

    fn impute(&self, sparse: &Trajectory) -> ImputationOutput {
        let mut points = Vec::with_capacity(sparse.len() * 2);
        let mut segments_total = 0usize;
        if sparse.is_empty() {
            return ImputationOutput {
                trajectory: Trajectory::default(),
                segments_total: 0,
                segments_failed: 0,
            };
        }
        for w in sparse.points.windows(2) {
            points.push(w[0]);
            let gap_m = w[0].pos.fast_dist_m(&w[1].pos);
            if gap_m > self.max_gap_m {
                segments_total += 1;
                let n = (gap_m / self.max_gap_m).ceil() as usize;
                for i in 1..n {
                    let f = i as f64 / n as f64;
                    points.push(GpsPoint::new(
                        w[0].pos.lerp(&w[1].pos, f),
                        w[0].t + (w[1].t - w[0].t) * f,
                    ));
                }
            }
        }
        points.push(*sparse.points.last().expect("non-empty"));
        ImputationOutput {
            trajectory: Trajectory::new(points),
            segments_total,
            // Every linear gap is a failure by definition.
            segments_failed: segments_total,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fills_gaps_with_evenly_spaced_points() {
        let sparse = Trajectory::new(vec![
            GpsPoint::from_parts(41.15, -8.61, 0.0),
            GpsPoint::from_parts(41.15, -8.60, 100.0), // ~837 m
        ]);
        let out = LinearImputer::default().impute(&sparse);
        assert_eq!(out.segments_total, 1);
        assert_eq!(out.segments_failed, 1);
        assert_eq!(out.failure_rate(), Some(1.0));
        assert!(out.trajectory.len() > 8);
        // All points on the line lat = 41.15, times monotone.
        for w in out.trajectory.points.windows(2) {
            assert!((w[0].pos.lat - 41.15).abs() < 1e-9);
            assert!(w[1].t >= w[0].t);
            assert!(w[0].pos.fast_dist_m(&w[1].pos) <= 101.0);
        }
    }

    #[test]
    fn no_gap_passthrough() {
        let dense = Trajectory::new(vec![
            GpsPoint::from_parts(41.15, -8.6100, 0.0),
            GpsPoint::from_parts(41.15, -8.6095, 5.0),
        ]);
        let out = LinearImputer::default().impute(&dense);
        assert_eq!(out.trajectory, dense);
        assert_eq!(out.segments_total, 0);
        assert_eq!(out.failure_rate(), None);
    }

    #[test]
    fn empty_and_single_inputs() {
        let li = LinearImputer::default();
        assert!(li.impute(&Trajectory::default()).trajectory.is_empty());
        let single = Trajectory::new(vec![GpsPoint::from_parts(41.0, -8.0, 0.0)]);
        assert_eq!(li.impute(&single).trajectory, single);
    }
}

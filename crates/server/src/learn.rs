//! The capture seam between serving and continual learning.
//!
//! `kamel-server` never trains; it only *tees* served traffic into a
//! [`LearnSink`] the embedder wires in (the `kamel-learn` crate provides
//! the real one: a bounded queue draining into a crash-safe capture log
//! feeding a background cell trainer). The seam is deliberately one-way —
//! the server depends on nothing from the learner, and every sink call on
//! the serving path must be non-blocking: a sink that cannot keep up drops
//! records, it never slows a response.

use kamel::ImputedTrajectory;
use kamel_geo::Trajectory;
use serde::{Deserialize, Serialize};

/// Where served traffic is teed for the continual learner.
///
/// Implementations MUST be non-blocking: `on_impute` runs on the batch
/// worker threads (a response is waiting on it) and `on_feedback` on a
/// connection handler. Use a bounded `try_send`-style queue and count
/// drops rather than waiting.
pub trait LearnSink: Send + Sync + 'static {
    /// A completed `/v1/impute` answer: the sparse request and the imputed
    /// result (gap context, answer, and per-gap beam confidence).
    fn on_impute(&self, sparse: &Trajectory, result: &ImputedTrajectory);
    /// A `POST /v1/feedback` ground-truth correction.
    fn on_feedback(&self, sparse: &Trajectory, truth: &Trajectory);
    /// A snapshot of the learning loop's counters, for `/metrics` and the
    /// `learning` block of `GET /v1/info`.
    fn learning(&self) -> LearningInfo;
}

/// Counters describing the continual-learning loop, exported on the
/// observability surfaces.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LearningInfo {
    /// Records accepted into the capture queue since boot.
    pub captured_total: u64,
    /// Records dropped because the queue or log was full (backpressure).
    pub dropped_total: u64,
    /// Records currently waiting in the capture queue.
    pub queue_records: u64,
    /// Bytes currently held by the capture log (active + sealed segments).
    pub queue_bytes: u64,
    /// Background retrain passes that rolled out a new generation.
    pub retrains_total: u64,
    /// Retrain passes aborted by the replay regression gate.
    pub rollbacks_total: u64,
    /// Pyramid cells retrained across all passes.
    pub cells_retrained_total: u64,
    /// Model generation after the last successful rollout (0 = never).
    pub last_generation: u64,
    /// Wall-clock ms of the last successful rollout (0 = never).
    pub last_retrain_unix_ms: u64,
}

/// The `POST /v1/feedback` request body: the sparse trajectory as
/// originally submitted to `/v1/impute`, plus the ground-truth dense
/// trajectory the caller later learned (e.g. from a full-rate trace).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeedbackRequest {
    /// The sparse trajectory that was (or would be) imputed.
    pub sparse: Trajectory,
    /// The dense ground truth for the same trip.
    pub truth: Trajectory,
}

/// The `POST /v1/feedback` acknowledgement body.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FeedbackAck {
    /// Always `"accepted"` — the record entered the capture queue (it may
    /// still be dropped under backpressure; check `dropped_total`).
    pub status: String,
    /// Queue depth after the enqueue, for client-side pacing.
    pub queue_records: u64,
}

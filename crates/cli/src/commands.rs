//! The CLI subcommands.

use crate::csvio::{read_trajectories, write_trajectories};
use crate::progress::{progress_path, TrainProgress};
use crate::Flags;
use kamel::pipeline::tune_cell_size_detailed;
use kamel::{GridKind, Kamel, KamelConfig, KamelConfigBuilder};
use kamel_eval::harness::{evaluate_technique, format_table, KamelImputer};
use kamel_eval::EvalContext;
use kamel_lm::{BertEngineConfig, EngineConfig, NgramConfig};
use kamel_roadsim::{Dataset, DatasetScale};
use std::fs::File;
use std::io::{BufReader, Write};
use std::path::Path;

fn open_trajectories(path: &str) -> Result<Vec<kamel_geo::Trajectory>, String> {
    let file = File::open(path).map_err(|e| format!("open {path}: {e}"))?;
    read_trajectories(BufReader::new(file)).map_err(|e| format!("{path}: {e}"))
}

fn save_trajectories(path: &str, trajs: &[kamel_geo::Trajectory]) -> Result<(), String> {
    // Buffer the CSV and publish it with the checkpoint layer's temp-file +
    // rename helper: a crash mid-save leaves the previous file, never a
    // torn one.
    let mut buf = Vec::new();
    write_trajectories(&mut buf, trajs)?;
    kamel::checkpoint::write_file_atomic(path, &buf).map_err(|e| format!("write {path}: {e}"))
}

/// Shared KAMEL options exposed on `train`.
fn config_from_flags(flags: &Flags) -> Result<KamelConfig, String> {
    let mut builder: KamelConfigBuilder = KamelConfig::builder();
    builder = builder
        .cell_edge_m(flags.get_f64("--cell-edge-m", 75.0)?)
        .max_gap_m(flags.get_f64("--max-gap-m", 100.0)?)
        .beam_size(flags.get_f64("--beam-size", 10.0)? as usize)
        .pyramid_height(flags.get_f64("--pyramid-height", 3.0)? as usize)
        .pyramid_maintained(flags.get_f64("--pyramid-maintained", 3.0)? as usize)
        .model_threshold_k(flags.get_f64("--threshold-k", 500.0)? as u64);
    // 0 (the default) means "auto": resolve via KAMEL_THREADS, then
    // hardware parallelism.
    let threads = flags.get_f64("--threads", 0.0)? as usize;
    if threads > 0 {
        builder = builder.threads(Some(threads));
    }
    if let Some(grid) = flags.get("--grid") {
        builder = builder.grid(match grid {
            "hex" => GridKind::Hex,
            "square" => GridKind::Square,
            other => return Err(format!("--grid expects hex|square, got `{other}`")),
        });
    }
    if let Some(engine) = flags.get("--engine") {
        builder = builder.engine(match engine {
            "ngram" => EngineConfig::Ngram(NgramConfig::default()),
            "bert" => EngineConfig::Bert(BertEngineConfig::default()),
            "bert-tiny" => EngineConfig::Bert(BertEngineConfig::for_tests()),
            other => return Err(format!("--engine expects ngram|bert|bert-tiny, got `{other}`")),
        });
    }
    builder.try_build().map_err(|e| e.to_string())
}

/// `kamel generate`: write synthetic train/test CSVs from a dataset preset.
pub fn generate(args: &[String], out: &mut dyn Write) -> Result<(), String> {
    if args.iter().any(|a| a == "--help") {
        let _ = writeln!(
            out,
            "kamel generate --city porto|jakarta [--scale small|medium|large] \
             --train FILE [--test FILE]"
        );
        return Ok(());
    }
    let flags = Flags::parse(args, &[])?;
    let scale = match flags.get("--scale").unwrap_or("small") {
        "small" => DatasetScale::Small,
        "medium" => DatasetScale::Medium,
        "large" => DatasetScale::Large,
        other => return Err(format!("--scale expects small|medium|large, got `{other}`")),
    };
    let dataset = match flags.required("--city")? {
        "porto" => Dataset::porto_like(scale),
        "jakarta" => Dataset::jakarta_like(scale),
        other => return Err(format!("--city expects porto|jakarta, got `{other}`")),
    };
    let train_path = flags.required("--train")?;
    save_trajectories(train_path, &dataset.train)?;
    let _ = writeln!(
        out,
        "wrote {} training trajectories ({} points) to {train_path}",
        dataset.train.len(),
        dataset.train_points()
    );
    if let Some(test_path) = flags.get("--test") {
        save_trajectories(test_path, &dataset.test)?;
        let _ = writeln!(
            out,
            "wrote {} ground-truth trajectories to {test_path}",
            dataset.test.len()
        );
    }
    Ok(())
}

/// `kamel train`: train (or extend) a model from a trajectory CSV.
///
/// With `--checkpoint-every N` the run saves a model checkpoint (plus a
/// `<model>.progress` record) every `N` trajectories; after a crash,
/// `--resume` continues from the last checkpoint instead of restarting.
pub fn train(args: &[String], out: &mut dyn Write) -> Result<(), String> {
    if args.iter().any(|a| a == "--help") {
        let _ = writeln!(
            out,
            "kamel train --input FILE --model FILE [--append] [--cell-edge-m N] \
             [--max-gap-m N] [--beam-size N] [--grid hex|square] \
             [--engine ngram|bert|bert-tiny] [--pyramid-height N] \
             [--pyramid-maintained N] [--threshold-k N] [--split-gap-s N] \
             [--threads N] [--checkpoint-every N] [--resume] \
             [--stop-after N] [--throttle-ms N]\n\
             --checkpoint-every N  save the model every N trajectories\n\
             --resume              continue an interrupted checkpointed run\n\
             --stop-after N        exit cleanly at the first checkpoint >= N \
             trajectories (testing hook)\n\
             --throttle-ms N       sleep N ms after each checkpoint (testing hook)"
        );
        return Ok(());
    }
    let flags = Flags::parse(args, &["--append", "--resume"])?;
    let input = flags.required("--input")?;
    let model_path = flags.required("--model")?;
    // Read the input once as raw bytes: the digest binds resume to the
    // exact file content, and the parser reads from the same buffer.
    let raw = std::fs::read(input).map_err(|e| format!("open {input}: {e}"))?;
    let input_digest = kamel::checkpoint::fnv1a64(&raw);
    let mut trajectories =
        read_trajectories(BufReader::new(raw.as_slice())).map_err(|e| format!("{input}: {e}"))?;
    // Messy logs concatenate trips per vehicle id; split at long time gaps
    // before training when asked.
    let split_gap_s = flags.get_f64("--split-gap-s", 0.0)?;
    if split_gap_s > 0.0 {
        trajectories = trajectories
            .iter()
            .flat_map(|t| t.split_by_time_gap(split_gap_s))
            .collect();
    }
    if trajectories.is_empty() {
        return Err(format!("{input}: no trajectories"));
    }
    let total = trajectories.len();
    let checkpoint_every = flags.get_f64("--checkpoint-every", 0.0)? as usize;
    let stop_after = flags.get_f64("--stop-after", 0.0)? as usize;
    let throttle_ms = flags.get_f64("--throttle-ms", 0.0)? as u64;
    let ppath = progress_path(model_path);

    // Resolve the starting model, resume position, and checkpoint cadence.
    let (kamel, start, every, base_stored) = if flags.has("--resume") {
        let Some(record) = TrainProgress::load(&ppath)? else {
            if Path::new(model_path).exists() {
                let _ = writeln!(
                    out,
                    "nothing to resume: {model_path} has no progress record \
                     (the previous run completed)"
                );
                return Ok(());
            }
            return Err(format!(
                "--resume: no progress record at {} and no model at {model_path}; \
                 run without --resume to start fresh",
                ppath.display()
            ));
        };
        if record.input_digest != input_digest {
            return Err(format!(
                "--resume: {input} is not the interrupted run's input (digest mismatch); \
                 restore the original file or retrain without --resume"
            ));
        }
        let kamel = Kamel::load_from_file(model_path).map_err(|e| e.to_string())?;
        // The checkpoint, not the record, is the authority on progress: a
        // crash can land between the model save and the record save, so
        // recompute the consumed count from the model itself.
        let stored = kamel.stats().map_or(0, |s| s.stored_trajectories);
        let consumed = stored.saturating_sub(record.base_stored);
        if consumed > total {
            return Err(format!(
                "--resume: checkpoint is ahead of the input ({consumed} > {total} \
                 trajectories); the input file shrank since the interrupted run"
            ));
        }
        let every = if checkpoint_every > 0 {
            checkpoint_every
        } else {
            record.checkpoint_every
        };
        let _ = writeln!(out, "resuming {model_path} at trajectory {consumed}/{total}");
        (kamel, consumed, every, record.base_stored)
    } else if flags.has("--append") {
        // --append continues training an existing model.
        let kamel = Kamel::load_from_file(model_path).map_err(|e| e.to_string())?;
        let base = kamel.stats().map_or(0, |s| s.stored_trajectories);
        (kamel, 0, checkpoint_every, base)
    } else {
        (Kamel::new(config_from_flags(&flags)?), 0, checkpoint_every, 0)
    };

    if start >= total {
        // The interrupted run had already consumed the whole input; the
        // crash landed after the final checkpoint but before cleanup.
        let _ = std::fs::remove_file(&ppath);
    } else if every == 0 && stop_after == 0 {
        // Single-shot path: train everything, save once.
        kamel.train(&trajectories[start..]);
        kamel.save_to_file(model_path).map_err(|e| e.to_string())?;
        let _ = std::fs::remove_file(&ppath);
    } else {
        let chunk = if every == 0 { total } else { every };
        let mut consumed = start;
        while consumed < total {
            let end = (consumed + chunk).min(total);
            kamel.train(&trajectories[consumed..end]);
            consumed = end;
            kamel.save_to_file(model_path).map_err(|e| e.to_string())?;
            TrainProgress {
                input_digest,
                consumed,
                base_stored,
                checkpoint_every: chunk,
            }
            .save(&ppath)?;
            let _ = writeln!(out, "checkpoint: {consumed}/{total} trajectories -> {model_path}");
            let _ = out.flush();
            if stop_after > 0 && consumed >= stop_after && consumed < total {
                let _ = writeln!(
                    out,
                    "stopped after {consumed}/{total} trajectories (--stop-after); \
                     continue with --resume"
                );
                return Ok(());
            }
            if throttle_ms > 0 {
                std::thread::sleep(std::time::Duration::from_millis(throttle_ms));
            }
        }
        let _ = std::fs::remove_file(&ppath);
    }
    let stats = kamel.stats().expect("trained");
    let _ = writeln!(
        out,
        "trained on {total} trajectories: {} models, {} stored tokens -> {model_path}",
        stats.models,
        stats.stored_tokens
    );
    Ok(())
}

/// `kamel impute`: impute a sparse trajectory CSV with a trained model.
pub fn impute(args: &[String], out: &mut dyn Write) -> Result<(), String> {
    if args.iter().any(|a| a == "--help") {
        let _ = writeln!(
            out,
            "kamel impute --model FILE --input FILE --output FILE [--threads N]"
        );
        return Ok(());
    }
    let flags = Flags::parse(args, &[])?;
    let threads = flags.get_f64("--threads", 0.0)? as usize;
    if threads > 0 {
        kamel::set_thread_budget(threads);
    }
    let kamel = Kamel::load_from_file(flags.required("--model")?).map_err(|e| e.to_string())?;
    let sparse = open_trajectories(flags.required("--input")?)?;
    let results = kamel.impute_batch(&sparse);
    let dense: Vec<kamel_geo::Trajectory> =
        results.iter().map(|r| r.trajectory.clone()).collect();
    let output = flags.required("--output")?;
    save_trajectories(output, &dense)?;
    let gaps: usize = results.iter().map(|r| r.gaps.len()).sum();
    let imputed: usize = results.iter().map(|r| r.imputed_points()).sum();
    let failed: usize = results
        .iter()
        .flat_map(|r| &r.gaps)
        .filter(|g| g.outcome.failed)
        .count();
    let _ = writeln!(
        out,
        "imputed {} trajectories: {imputed} points over {gaps} gaps \
         ({failed} straight-line fallbacks) -> {output}",
        sparse.len()
    );
    Ok(())
}

/// `kamel stats`: inspect a trained model file.
pub fn stats(args: &[String], out: &mut dyn Write) -> Result<(), String> {
    if args.iter().any(|a| a == "--help") {
        let _ = writeln!(out, "kamel stats --model FILE");
        return Ok(());
    }
    let flags = Flags::parse(args, &[])?;
    let kamel = Kamel::load_from_file(flags.required("--model")?).map_err(|e| e.to_string())?;
    match kamel.stats() {
        Some(s) => {
            let _ = writeln!(
                out,
                "trajectories: {}\ntokens: {}\nmodels: {}\ndetokenization cells: {}\n\
                 speed cap: {:.1} m/s\nengine: {}",
                s.stored_trajectories,
                s.stored_tokens,
                s.models,
                s.detok_cells,
                s.max_speed_mps,
                kamel.config().engine.name()
            );
            let _ = writeln!(
                out,
                "\n{:<12} {:>6} {:>10} {:>8} {:>8} {:>8}",
                "model", "level", "cell", "vocab", "tokens", "updates"
            );
            for m in kamel.model_summaries() {
                let _ = writeln!(
                    out,
                    "{:<12} {:>6} {:>10} {:>8} {:>8} {:>8}",
                    m.kind,
                    m.level.map_or("-".into(), |l| l.to_string()),
                    m.cell
                        .map_or("-".into(), |(x, y)| format!("({x},{y})")),
                    m.vocab,
                    m.trained_tokens,
                    m.updates
                );
            }
        }
        None => {
            let _ = writeln!(out, "model is untrained");
        }
    }
    Ok(())
}

/// `kamel tune`: the §3.2 cell-size auto-tuner over a training CSV.
pub fn tune(args: &[String], out: &mut dyn Write) -> Result<(), String> {
    if args.iter().any(|a| a == "--help") {
        let _ = writeln!(
            out,
            "kamel tune --input FILE [--candidates 25,50,75,100,150,200] \
             [--delta-m N] [--sparse-m N]"
        );
        return Ok(());
    }
    let flags = Flags::parse(args, &[])?;
    let trajectories = open_trajectories(flags.required("--input")?)?;
    let candidates: Vec<f64> = match flags.get("--candidates") {
        None => vec![25.0, 50.0, 75.0, 100.0, 150.0, 200.0],
        Some(list) => list
            .split(',')
            .map(|v| {
                v.trim()
                    .parse::<f64>()
                    .map_err(|_| format!("bad candidate size `{v}`"))
            })
            .collect::<Result<_, _>>()?,
    };
    let base = config_from_flags(&flags)?;
    let delta_m = flags.get_f64("--delta-m", 50.0)?;
    let sparse_m = flags.get_f64("--sparse-m", 1_000.0)?;
    let curve = tune_cell_size_detailed(&trajectories, &candidates, &base, delta_m, sparse_m);
    if curve.is_empty() {
        return Err("no candidate size could be scored (too little data?)".into());
    }
    let _ = writeln!(out, "{:<12} {:>10}", "edge (m)", "val score");
    for (edge, score) in &curve {
        let _ = writeln!(out, "{edge:<12} {score:>10.3}");
    }
    let best = curve
        .iter()
        .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite scores"))
        .expect("non-empty curve")
        .0;
    let _ = writeln!(
        out,
        "best hexagon edge: {best} m (pass --cell-edge-m {best} to `kamel train`)"
    );
    Ok(())
}

/// `kamel export`: convert a trajectory CSV to GeoJSON for visual
/// inspection (QGIS, geojson.io, Kepler).
pub fn export(args: &[String], out: &mut dyn Write) -> Result<(), String> {
    if args.iter().any(|a| a == "--help") {
        let _ = writeln!(out, "kamel export --input FILE.csv --output FILE.geojson");
        return Ok(());
    }
    let flags = Flags::parse(args, &[])?;
    let trajectories = open_trajectories(flags.required("--input")?)?;
    let doc = kamel_roadsim::trajectories_to_geojson(&trajectories);
    let output = flags.required("--output")?;
    let json = serde_json::to_string(&doc).map_err(|e| e.to_string())?;
    kamel::checkpoint::write_file_atomic(output, json.as_bytes())
        .map_err(|e| format!("write {output}: {e}"))?;
    let _ = writeln!(
        out,
        "exported {} trajectories as GeoJSON -> {output}",
        trajectories.len()
    );
    Ok(())
}

/// Parses a human byte size: plain bytes, or a `k`/`m`/`g` suffix
/// (binary multiples, optional trailing `b`, any case) — `64m` = 64 MiB.
fn parse_byte_size(s: &str) -> Result<u64, String> {
    let lower = s.trim().to_ascii_lowercase();
    let body = lower.strip_suffix('b').unwrap_or(&lower);
    let (digits, shift) = match body.strip_suffix(['k', 'm', 'g']) {
        Some(d) => (d, match body.as_bytes()[body.len() - 1] {
            b'k' => 10,
            b'm' => 20,
            _ => 30,
        }),
        None => (body, 0),
    };
    let n: u64 = digits
        .parse()
        .map_err(|_| format!("expected a byte size like 512, 64k, 16m, or 2g, got `{s}`"))?;
    n.checked_shl(shift)
        .filter(|v| v >> shift == n)
        .ok_or_else(|| format!("byte size `{s}` overflows"))
}

/// `kamel pack`: render a trained checkpoint into a `.kstore` model
/// store file (DESIGN.md §13) for `kamel serve --store`.
pub fn pack(args: &[String], out: &mut dyn Write) -> Result<(), String> {
    if args.iter().any(|a| a == "--help") {
        let _ = writeln!(
            out,
            "kamel pack --model FILE --out FILE.kstore\n\
             packs a trained checkpoint into a single mmap-ready model store:\n\
             a CRC-checked index over per-cell records (serialized model +\n\
             packed int8 weights when the checkpointed system is quantized)\n\
             that `kamel serve --store` maps and materializes lazily"
        );
        return Ok(());
    }
    let flags = Flags::parse(args, &[])?;
    let model_path = flags.required("--model")?;
    let out_path = flags.required("--out")?;
    let kamel = Kamel::load_from_file(model_path).map_err(|e| e.to_string())?;
    if !kamel.is_trained() {
        return Err(format!("{model_path}: model is untrained; nothing to pack"));
    }
    let stats =
        kamel_store::pack(&kamel, Path::new(out_path)).map_err(|e| e.to_string())?;
    let _ = writeln!(
        out,
        "packed {} models ({} with int8 weights, {} bytes) -> {out_path}",
        stats.models, stats.quant_models, stats.bytes
    );
    Ok(())
}

/// `kamel serve`: the online imputation service (DESIGN.md §5).
///
/// Loads a trained model, binds the HTTP endpoint, and runs until SIGINT
/// or SIGTERM, then drains in-flight requests before exiting. SIGHUP (or
/// `POST /admin/reload`) re-reads `--model` and hot-swaps it without
/// dropping connections.
pub fn serve(args: &[String], out: &mut dyn Write) -> Result<(), String> {
    if args.iter().any(|a| a == "--help") {
        let _ = writeln!(
            out,
            "kamel serve (--model FILE | --store FILE.kstore) [--addr HOST:PORT]\n\
             \x20           [--model-memory-budget BYTES] [--threads N] [--batch-max N]\n\
             \x20           [--batch-wait-us N] [--cache-entries N] [--queue-cap N]\n\
             \x20           [--deadline-ms N] [--shard-id N --shard-of N] [--quantize]\n\
             \x20           [--degraded-mode] [--max-connections N] [--idle-timeout-ms N]\n\
             \x20           [--threaded] [--learn] [--learn-dir DIR] [--learn-interval-secs N]\n\
             \x20           [--learn-batch-min N] [--learn-cells N] [--learn-gate-epsilon E]\n\
             \x20           [--learn-gate-delta-m D] [--learn-min-confidence C]\n\
             \x20           [--learn-queue-cap N] [--learn-max-bytes BYTES] [--capture-only]\n\
             serves POST /v1/impute, POST /admin/reload, GET /healthz, GET /metrics,\n\
             GET /v1/info until SIGTERM/ctrl-c; SIGHUP hot-reloads the model from\n\
             --model (or remaps --store, picking up a re-packed file);\n\
             --store serves a `kamel pack` model store via mmap, materializing\n\
             models lazily under --model-memory-budget (e.g. 512k, 64m, 2g;\n\
             default: the packed config's budget, else unbounded);\n\
             --shard-id/--shard-of label this process as member N of a\n\
             fleet of M behind `kamel route` (advertised on /v1/info); --quantize\n\
             serves BERT models through int8 weights when the accuracy gate passes\n\
             (startup fails when it does not; a store instead serves whatever\n\
             quantization state it was packed with); --degraded-mode answers\n\
             from the linear baseline (marked \"degraded\": true) instead of 503\n\
             when the admission queue is full; --max-connections caps concurrent\n\
             sockets (excess accepts get 503), --idle-timeout-ms closes idle or\n\
             slow-loris keep-alive connections, and --threaded opts out of the\n\
             epoll/kqueue reactor back to thread-per-connection serving;\n\
             --learn (requires --model) tees served answers and POST /v1/feedback\n\
             corrections into a crash-safe capture log under --learn-dir\n\
             (default MODEL.capture) and runs the background cell trainer\n\
             in-process: every --learn-interval-secs it retrains the neediest\n\
             cells (at most --learn-cells) from captured feedback, replays a\n\
             held-out set, and rolls the new checkpoint out through the\n\
             /admin/reload path only when the replay score holds within\n\
             --learn-gate-epsilon — a failing gate keeps the old generation;\n\
             --capture-only captures without training, for a separate\n\
             `kamel learn` process draining the same directory"
        );
        return Ok(());
    }
    let flags = Flags::parse(
        args,
        &["--quantize", "--degraded-mode", "--threaded", "--learn", "--capture-only"],
    )?;
    let budget = flags
        .get("--model-memory-budget")
        .map(parse_byte_size)
        .transpose()
        .map_err(|e| format!("--model-memory-budget: {e}"))?;
    let (model_path, store_path) = match (flags.get("--model"), flags.get("--store")) {
        (Some(m), None) => (Some(m), None),
        (None, Some(s)) => (None, Some(s)),
        (Some(_), Some(_)) => return Err("give either --model or --store, not both".into()),
        (None, None) => return Err("missing model: give --model FILE or --store FILE.kstore".into()),
    };
    if budget.is_some() && store_path.is_none() {
        return Err("--model-memory-budget requires --store (heap checkpoints are unbounded)".into());
    }
    if flags.has("--quantize") && store_path.is_some() {
        return Err(
            "--quantize cannot change a packed store: it serves the quantization state \
             it was packed with (re-pack from a quantized checkpoint instead)"
                .into(),
        );
    }
    // Validate the shard identity before the (potentially slow) model
    // load so flag mistakes surface immediately.
    let shard = match (flags.get("--shard-id"), flags.get("--shard-of")) {
        (None, None) => None,
        (Some(id), Some(of)) => {
            let id: usize = id
                .parse()
                .map_err(|_| format!("--shard-id expects an integer, got `{id}`"))?;
            let of: usize = of
                .parse()
                .map_err(|_| format!("--shard-of expects an integer, got `{of}`"))?;
            if id >= of {
                return Err(format!("--shard-id {id} must be < --shard-of {of}"));
            }
            Some((id, of))
        }
        _ => return Err("--shard-id and --shard-of must be given together".into()),
    };
    // Continual learning (DESIGN.md §16). Validated before the model load
    // so flag mistakes surface immediately.
    let learn = flags.has("--learn");
    if flags.has("--capture-only") && !learn {
        return Err("--capture-only requires --learn".into());
    }
    if !learn {
        for key in [
            "--learn-dir",
            "--learn-interval-secs",
            "--learn-batch-min",
            "--learn-cells",
            "--learn-gate-epsilon",
            "--learn-gate-delta-m",
            "--learn-min-confidence",
            "--learn-queue-cap",
            "--learn-max-bytes",
        ] {
            if flags.get(key).is_some() {
                return Err(format!("`{key}` requires --learn"));
            }
        }
    }
    if learn && store_path.is_some() {
        return Err(
            "--learn requires --model: a packed --store is immutable, so the trainer \
             has nowhere to write retrained checkpoints (serve the checkpoint and \
             re-pack offline instead)"
                .into(),
        );
    }
    let learn_cfg = if learn {
        let dir = flags
            .get("--learn-dir")
            .map(std::path::PathBuf::from)
            .unwrap_or_else(|| {
                std::path::PathBuf::from(format!(
                    "{}.capture",
                    model_path.expect("--learn requires --model")
                ))
            });
        let mut capture = kamel_learn::CaptureConfig::new(dir);
        if let Some(v) = flags.get("--learn-max-bytes") {
            capture.max_bytes = parse_byte_size(v).map_err(|e| format!("--learn-max-bytes: {e}"))?;
        }
        let trainer = kamel_learn::TrainerConfig {
            interval: std::time::Duration::from_secs(
                flags.get_f64("--learn-interval-secs", 60.0)? as u64
            ),
            // Capture-only never trains in-process: the sealed segments are
            // left for a standalone `kamel learn` daemon to drain.
            batch_min: if flags.has("--capture-only") {
                usize::MAX
            } else {
                (flags.get_f64("--learn-batch-min", 16.0)? as usize).max(1)
            },
            selection: kamel_learn::SelectionConfig {
                max_cells: (flags.get_f64("--learn-cells", 4.0)? as usize).max(1),
                ..kamel_learn::SelectionConfig::default()
            },
            gate_delta_m: flags.get_f64("--learn-gate-delta-m", 50.0)?,
            gate_epsilon: flags.get_f64("--learn-gate-epsilon", 0.0)?,
            min_confidence: flags.get_f64("--learn-min-confidence", 0.9)?,
        };
        Some(kamel_learn::LearnerConfig { capture, trainer })
    } else {
        None
    };
    let learn_queue_cap = (flags.get_f64("--learn-queue-cap", 4096.0)? as usize).max(1);
    let kamel = match store_path {
        Some(path) => {
            let kamel =
                kamel_store::load_kamel(Path::new(path), budget).map_err(|e| e.to_string())?;
            if let Some(r) = kamel.residency() {
                let _ = writeln!(
                    out,
                    "model store {path}: {} models ({} resident after boot sweep, \
                     {} pinned), {} bytes mapped, budget {}",
                    r.total_models,
                    r.resident_models,
                    r.pinned_models,
                    r.bytes_mapped,
                    if r.budget_bytes == 0 {
                        "unbounded".to_string()
                    } else {
                        format!("{} bytes", r.budget_bytes)
                    }
                );
            }
            kamel
        }
        None => Kamel::load_from_file(model_path.expect("one model source"))
            .map_err(|e| e.to_string())?,
    };
    if !kamel.is_trained() {
        let _ = writeln!(out, "warning: model is untrained; serving linear fallback only");
    }
    // --quantize is gated: the server refuses to start on an int8 path
    // whose top-1 agreement with f32 is below the configured bound, rather
    // than silently serving degraded answers.
    let quantize = flags.has("--quantize");
    if quantize && !kamel.is_quantized() {
        let agreement = kamel.enable_quantization().map_err(|e| e.to_string())?;
        let _ = writeln!(
            out,
            "int8 quantization enabled (worst f32/int8 top-1 agreement {agreement:.4})"
        );
    }
    // Batch workers default to the model's thread budget; --threads
    // overrides for this process.
    let threads = flags.get_f64("--threads", 0.0)? as usize;
    let workers = if threads > 0 {
        threads
    } else {
        kamel.config().effective_threads()
    };
    let config = kamel_server::ServerConfig {
        workers,
        handlers: (workers * 4).clamp(4, 64),
        batch_max: (flags.get_f64("--batch-max", 16.0)? as usize).max(1),
        batch_wait: std::time::Duration::from_micros(flags.get_f64("--batch-wait-us", 500.0)? as u64),
        queue_cap: (flags.get_f64("--queue-cap", 256.0)? as usize).max(1),
        cache_entries: flags.get_f64("--cache-entries", 1024.0)? as usize,
        deadline: std::time::Duration::from_millis(
            (flags.get_f64("--deadline-ms", 10_000.0)? as u64).max(1),
        ),
        idle_poll: std::time::Duration::from_millis(200),
        degraded_mode: flags.has("--degraded-mode"),
        mode: if flags.has("--threaded") {
            kamel_server::ConnMode::Threaded
        } else {
            kamel_server::ConnMode::Reactor
        },
        max_connections: (flags.get_f64("--max-connections", 10_000.0)? as usize).max(1),
        idle_timeout: std::time::Duration::from_millis(
            (flags.get_f64("--idle-timeout-ms", 30_000.0)? as u64).max(1),
        ),
    };
    let addr = flags.get("--addr").unwrap_or("127.0.0.1:8080");
    let signals = kamel_server::install_signal_handlers();
    let mut engine = match store_path {
        // A SIGHUP (or /admin/reload) re-opens the store file: a re-pack
        // swaps in as a fresh mapping under a new generation, while the
        // old mapping serves in-flight batches until their Arcs drop.
        Some(path) => {
            let store_file = std::path::PathBuf::from(path);
            kamel_server::ImputeEngine::with_loader(
                std::sync::Arc::new(kamel),
                path.to_string(),
                Box::new(move || {
                    kamel_store::load_kamel(&store_file, budget).map_err(|e| e.to_string())
                }),
            )
        }
        None => kamel_server::ImputeEngine::with_model_path(
            std::sync::Arc::new(kamel),
            std::path::PathBuf::from(model_path.expect("one model source")),
        ),
    };
    if let Some((id, of)) = shard {
        engine = engine.with_shard_identity(id, of);
    }
    engine = engine.with_quantization(quantize);
    // The capture tee is wired before the engine is shared: every completed
    // batch (and every /v1/feedback correction) is offered to the sink
    // through a bounded non-blocking channel — full queue drops the record,
    // it never slows serving.
    let learn_parts = learn_cfg.map(|cfg| {
        let (sink, rx) = kamel_learn::CaptureSink::channel(learn_queue_cap);
        (cfg, sink, rx)
    });
    if let Some((_, sink, _)) = &learn_parts {
        engine = engine.with_learn_sink(std::sync::Arc::clone(sink) as _);
    }
    let engine = std::sync::Arc::new(engine);
    let server = kamel_server::Server::bind(addr, std::sync::Arc::clone(&engine), config.clone())
        .map_err(|e| format!("bind {addr}: {e}"))?;
    let learner = match learn_parts {
        Some((cfg, sink, rx)) => {
            // Captured trajectories are tagged with the serving model's gap
            // context so the selector scores the cells that actually
            // answered, not whatever a later trainer generation would map
            // them to.
            let context_engine = std::sync::Arc::clone(&engine);
            sink.set_context(Box::new(move |sparse| {
                context_engine
                    .kamel()
                    .gap_context(sparse)
                    .map(|(cells, _)| cells.into_iter().map(|c| c.0).collect())
            }));
            let model_file = std::path::PathBuf::from(model_path.expect("--learn requires --model"));
            let load_path = model_file.clone();
            let save_path = model_file.clone();
            let capture_dir = cfg.capture.dir.clone();
            let capture_only = flags.has("--capture-only");
            let interval = cfg.trainer.interval;
            let reload_addr = server.local_addr();
            let rollout_engine = std::sync::Arc::clone(&engine);
            let ops = kamel_learn::ModelOps {
                load: Box::new(move || {
                    Kamel::load_from_file(&load_path).map_err(|e| e.to_string())
                }),
                save: Box::new(move |k| k.save_to_file(&save_path).map_err(|e| e.to_string())),
                // Roll out through the real admin path — a loopback POST
                // /admin/reload swaps the generation AND clears the answer
                // cache, exactly as an operator's curl would.
                rollout: Box::new(move || {
                    let mut client = kamel_server::Client::connect(
                        reload_addr,
                        std::time::Duration::from_secs(30),
                    )
                    .map_err(|e| e.to_string())?;
                    let resp = client
                        .post_json("/admin/reload", b"")
                        .map_err(|e| e.to_string())?;
                    if resp.status != 200 {
                        return Err(format!("admin/reload: HTTP {}", resp.status));
                    }
                    Ok(rollout_engine.generation())
                }),
            };
            let stats = sink.stats();
            let learner = kamel_learn::Learner::spawn(cfg, rx, stats, ops)
                .map_err(|e| format!("start learner: {e}"))?;
            let _ = writeln!(
                out,
                "continual learning {}: capture dir {}, queue cap {}, interval {}s",
                if capture_only { "capturing only (train with `kamel learn`)" } else { "enabled" },
                capture_dir.display(),
                learn_queue_cap,
                interval.as_secs(),
            );
            Some(learner)
        }
        None => None,
    };
    let _ = writeln!(
        out,
        "kamel-server listening on http://{} ({} workers, batch <= {}, wait {}us, \
         cache {} entries, queue cap {})",
        server.local_addr(),
        config.workers,
        config.batch_max,
        config.batch_wait.as_micros(),
        config.cache_entries,
        config.queue_cap,
    );
    let _ = out.flush();
    while !signals.is_tripped() {
        if signals.take_hup() {
            match server.reload() {
                Ok(msg) => {
                    let _ = writeln!(out, "SIGHUP: {msg}");
                }
                Err(msg) => {
                    let _ = writeln!(
                        out,
                        "SIGHUP reload failed: {msg} (still serving the previous model)"
                    );
                }
            }
            let _ = out.flush();
        }
        std::thread::sleep(std::time::Duration::from_millis(100));
    }
    let _ = writeln!(out, "shutdown signal received; draining in-flight requests");
    let _ = out.flush();
    server.shutdown();
    if let Some(learner) = learner {
        // Serving is quiesced, so no new captures arrive: drain what is
        // queued into the log and seal the active segment before exit.
        learner.stop();
        let _ = writeln!(out, "learner stopped; capture log sealed");
    }
    let _ = writeln!(out, "drained; goodbye");
    Ok(())
}

/// `kamel learn`: the standalone continual-learning trainer daemon
/// (DESIGN.md §16).
///
/// Pairs with `kamel serve --learn --capture-only`: the serving process
/// appends captured traffic to the log and seals segments; this process
/// drains only the *sealed* segments (never the writer-owned active
/// file), retrains the neediest cells, gates the result on held-out
/// replay, saves the checkpoint where the server loads from, and asks
/// the server to hot-reload. Runs until SIGINT/SIGTERM, or one pass with
/// `--once`.
pub fn learn(args: &[String], out: &mut dyn Write) -> Result<(), String> {
    if args.iter().any(|a| a == "--help") {
        let _ = writeln!(
            out,
            "kamel learn --model FILE --capture-dir DIR [--interval-secs N]\n\
             \x20           [--batch-min N] [--cells N] [--gate-epsilon E]\n\
             \x20           [--gate-delta-m D] [--min-confidence C]\n\
             \x20           [--reload HOST:PORT] [--once]\n\
             drains sealed capture segments written by `kamel serve --learn\n\
             --capture-only` under --capture-dir, retrains the --cells neediest\n\
             pyramid cells of --model from captured feedback (plus confident\n\
             served answers as pseudo-labels, >= --min-confidence), and replays\n\
             a held-out set: only when the new score holds within --gate-epsilon\n\
             of the old one is the checkpoint saved over --model and the serving\n\
             process asked to hot-reload via POST /admin/reload on --reload;\n\
             a failing gate discards the candidate and the old generation keeps\n\
             serving. --once runs a single drain+retrain pass and exits (CI)"
        );
        return Ok(());
    }
    let flags = Flags::parse(args, &["--once"])?;
    let model_path = std::path::PathBuf::from(flags.required("--model")?);
    let capture_dir = std::path::PathBuf::from(flags.required("--capture-dir")?);
    let cfg = kamel_learn::TrainerConfig {
        interval: std::time::Duration::from_secs(flags.get_f64("--interval-secs", 60.0)? as u64),
        batch_min: (flags.get_f64("--batch-min", 16.0)? as usize).max(1),
        selection: kamel_learn::SelectionConfig {
            max_cells: (flags.get_f64("--cells", 4.0)? as usize).max(1),
            ..kamel_learn::SelectionConfig::default()
        },
        gate_delta_m: flags.get_f64("--gate-delta-m", 50.0)?,
        gate_epsilon: flags.get_f64("--gate-epsilon", 0.0)?,
        min_confidence: flags.get_f64("--min-confidence", 0.9)?,
    };
    let reload_addr = flags
        .get("--reload")
        .map(|s| {
            s.parse::<std::net::SocketAddr>()
                .map_err(|_| format!("--reload expects HOST:PORT, got `{s}`"))
        })
        .transpose()?;
    // Fail on an unreadable model now, not at the first retrain pass.
    Kamel::load_from_file(&model_path).map_err(|e| e.to_string())?;
    let load_path = model_path.clone();
    let save_path = model_path.clone();
    // Without --reload there is no serving process to swap; generations
    // are counted locally so the pass report still shows progress.
    let local_generation = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
    let rollout_generation = std::sync::Arc::clone(&local_generation);
    let ops = kamel_learn::ModelOps {
        load: Box::new(move || Kamel::load_from_file(&load_path).map_err(|e| e.to_string())),
        save: Box::new(move |k| k.save_to_file(&save_path).map_err(|e| e.to_string())),
        rollout: Box::new(move || match reload_addr {
            Some(addr) => {
                let mut client =
                    kamel_server::Client::connect(addr, std::time::Duration::from_secs(30))
                        .map_err(|e| format!("connect {addr}: {e}"))?;
                let resp = client
                    .post_json("/admin/reload", b"")
                    .map_err(|e| format!("reload {addr}: {e}"))?;
                if resp.status != 200 {
                    return Err(format!("admin/reload: HTTP {}", resp.status));
                }
                // The reload message ends "...generation N)"; fall back to 0
                // when a different service answered.
                let text = resp.text();
                Ok(text
                    .split("generation ")
                    .nth(1)
                    .and_then(|rest| {
                        rest.chars()
                            .take_while(|c| c.is_ascii_digit())
                            .collect::<String>()
                            .parse()
                            .ok()
                    })
                    .unwrap_or(0))
            }
            None => Ok(rollout_generation.fetch_add(1, std::sync::atomic::Ordering::SeqCst) + 1),
        }),
    };
    let once = flags.has("--once");
    let signals = kamel_server::install_signal_handlers();
    let mut pending: Vec<kamel_learn::CaptureRecord> = Vec::new();
    let mut cell_rounds = std::collections::HashMap::new();
    let mut round = 0u64;
    let _ = writeln!(
        out,
        "kamel-learn draining sealed segments under {} every {}s (batch min {})",
        capture_dir.display(),
        cfg.interval.as_secs(),
        cfg.batch_min,
    );
    let _ = out.flush();
    loop {
        let drained = kamel_learn::drain_sealed(&capture_dir)
            .map_err(|e| format!("drain {}: {e}", capture_dir.display()))?;
        pending.extend(drained);
        round += 1;
        match kamel_learn::retrain_pass(&pending, round, &mut cell_rounds, &cfg, &ops) {
            Ok(Some(report)) => {
                let _ = writeln!(
                    out,
                    "pass {round}: {} records, {} cells, {} examples, replay {:.3} -> {:.3}: {}",
                    pending.len(),
                    report.selected_cells.len(),
                    report.examples_offered,
                    report.gate.old_score,
                    report.gate.new_score,
                    if report.rolled_out {
                        format!("rolled out generation {}", report.generation)
                    } else {
                        "gate failed; rolled back (old generation keeps serving)".into()
                    },
                );
                pending.clear();
            }
            Ok(None) => {
                let _ = writeln!(
                    out,
                    "pass {round}: {} records pending (batch min {}); nothing to do",
                    pending.len(),
                    cfg.batch_min,
                );
            }
            Err(e) => {
                // Records are kept: a transient failure (e.g. the serving
                // process restarting mid-reload) retries next pass.
                let _ = writeln!(out, "pass {round} failed: {e} (records retained)");
            }
        }
        let _ = out.flush();
        if once || signals.is_tripped() {
            break;
        }
        // Sleep the interval in short slices so signals cut the wait.
        let deadline = std::time::Instant::now() + cfg.interval;
        while std::time::Instant::now() < deadline && !signals.is_tripped() {
            std::thread::sleep(std::time::Duration::from_millis(100));
        }
        if signals.is_tripped() {
            break;
        }
    }
    let _ = writeln!(out, "kamel-learn exiting; {} records not yet trained on", pending.len());
    Ok(())
}

/// `kamel route`: the spatial shard router over a fleet of `kamel serve`
/// processes (DESIGN.md §11).
///
/// Owns a static shard map (rendezvous-hashed routing-cell ownership),
/// forwards `POST /v1/impute` to the owning shard with replica failover,
/// and scatter-gathers trajectories that span territories. Runs until
/// SIGINT or SIGTERM, then drains in-flight requests.
pub fn route(args: &[String], out: &mut dyn Write) -> Result<(), String> {
    if args.iter().any(|a| a == "--help") {
        let _ = writeln!(
            out,
            "kamel route (--shard HOST:PORT,... | --shard-map FILE) [--addr HOST:PORT]\n\
             \x20           [--cell-deg D] [--eject-after N] [--probe-interval-ms N]\n\
             \x20           [--timeout-ms N] [--handlers N] [--default-deadline-ms N]\n\
             \x20           [--breaker-window N] [--breaker-threshold R]\n\
             \x20           [--breaker-open-ms N] [--degraded-mode]\n\
             \x20           [--degraded-max-gap-m M] [--max-connections N]\n\
             \x20           [--idle-timeout-ms N] [--threaded]\n\
             serves POST /v1/impute (proxied), GET /healthz, GET /metrics,\n\
             GET /v1/shards until SIGTERM/ctrl-c; --cell-deg sets the routing\n\
             grid for --shard fleets (a --shard-map file carries its own);\n\
             --default-deadline-ms is the budget granted to requests without an\n\
             x-kamel-deadline-ms header; the breaker trips a shard open when\n\
             --breaker-threshold (ratio) of the last --breaker-window forwards\n\
             failed, refusing it for --breaker-open-ms before probing;\n\
             --degraded-mode answers requests no shard can serve from the\n\
             linear baseline (marked \"degraded\": true) instead of 502/503;\n\
             --max-connections caps concurrent client sockets (excess accepts\n\
             get 503), --idle-timeout-ms closes idle/slow-loris keep-alive\n\
             connections, and --threaded opts out of the epoll/kqueue reactor\n\
             back to thread-per-connection serving"
        );
        return Ok(());
    }
    let flags = Flags::parse(args, &["--degraded-mode", "--threaded"])?;
    let map = match (flags.get("--shard-map"), flags.get("--shard")) {
        (Some(path), None) => kamel_router::ShardMap::from_json_file(Path::new(path))?,
        (None, Some(list)) => {
            let cell_deg =
                flags.get_f64("--cell-deg", kamel::routing::DEFAULT_ROUTING_CELL_DEG)?;
            kamel_router::ShardMap::from_flag_list(list, cell_deg)?
        }
        (Some(_), Some(_)) => return Err("give either --shard-map or --shard, not both".into()),
        (None, None) => {
            return Err("missing fleet: give --shard HOST:PORT,... or --shard-map FILE".into())
        }
    };
    let config = kamel_router::RouterConfig {
        handlers: (flags.get_f64("--handlers", 8.0)? as usize).max(1),
        timeout: std::time::Duration::from_millis(
            (flags.get_f64("--timeout-ms", 10_000.0)? as u64).max(1),
        ),
        health: kamel_router::HealthPolicy {
            eject_after: (flags.get_f64("--eject-after", 3.0)? as u32).max(1),
            probe_interval: std::time::Duration::from_millis(
                (flags.get_f64("--probe-interval-ms", 500.0)? as u64).max(1),
            ),
        },
        breaker: kamel_router::BreakerPolicy {
            window: (flags.get_f64("--breaker-window", 16.0)? as usize).max(2),
            failure_ratio: flags.get_f64("--breaker-threshold", 0.5)?.clamp(0.01, 1.0),
            open_for: std::time::Duration::from_millis(
                (flags.get_f64("--breaker-open-ms", 2_000.0)? as u64).max(1),
            ),
            ..kamel_router::BreakerPolicy::default()
        },
        default_deadline: std::time::Duration::from_millis(
            (flags.get_f64("--default-deadline-ms", 10_000.0)? as u64).max(1),
        ),
        degraded: flags.has("--degraded-mode"),
        degraded_max_gap_m: flags.get_f64("--degraded-max-gap-m", 100.0)?,
        mode: if flags.has("--threaded") {
            kamel_server::ConnMode::Threaded
        } else {
            kamel_server::ConnMode::Reactor
        },
        max_connections: (flags.get_f64("--max-connections", 10_000.0)? as usize).max(1),
        idle_timeout: std::time::Duration::from_millis(
            (flags.get_f64("--idle-timeout-ms", 30_000.0)? as u64).max(1),
        ),
        ..kamel_router::RouterConfig::default()
    };
    let addr = flags.get("--addr").unwrap_or("127.0.0.1:8780");
    let signals = kamel_server::install_signal_handlers();
    let router =
        kamel_router::Router::bind(addr, map, config).map_err(|e| format!("bind {addr}: {e}"))?;
    let core = router.core();
    let _ = writeln!(
        out,
        "kamel-router listening on http://{} ({} shards, {} admitted, cell {} deg, \
         eject after {} failures)",
        router.local_addr(),
        core.map().len(),
        core.available_shards(),
        core.map().cell_deg(),
        core.config().health.eject_after,
    );
    let _ = out.flush();
    while !signals.is_tripped() {
        std::thread::sleep(std::time::Duration::from_millis(100));
    }
    let _ = writeln!(out, "shutdown signal received; draining in-flight requests");
    let _ = out.flush();
    router.shutdown();
    let _ = writeln!(out, "drained; goodbye");
    Ok(())
}

/// `kamel chaos`: a deterministic fault-injecting TCP proxy for
/// resilience drills (DESIGN.md §14.4).
///
/// Sits between a router (or client) and one upstream `kamel serve`,
/// assigning each accepted connection a fault — connect refusal, silent
/// stall, slow-loris trickle, mid-body reset, torn response, or a
/// faithful relay — from a seeded or scripted schedule that is a pure
/// function of the connection index, so a run replays exactly.
pub fn chaos(args: &[String], out: &mut dyn Write) -> Result<(), String> {
    if args.iter().any(|a| a == "--help") {
        let _ = writeln!(
            out,
            "kamel chaos --upstream HOST:PORT (--seed N | --script LIST)\n\
             \x20           [--listen HOST:PORT] [--stall-ms N] [--trickle-ms N]\n\
             \x20           [--torn-after N]\n\
             proxies TCP to --upstream, injecting one fault per accepted\n\
             connection until SIGTERM/ctrl-c; --seed derives the fault\n\
             sequence from a hash of the connection index, --script walks an\n\
             explicit comma-separated list (e.g. `refuse*3,none,torn`; the\n\
             last entry repeats forever); faults: none, refuse, stall,\n\
             slow-loris, reset, torn"
        );
        return Ok(());
    }
    let flags = Flags::parse(args, &[])?;
    let upstream = flags.required("--upstream")?;
    let upstream: std::net::SocketAddr = {
        use std::net::ToSocketAddrs;
        upstream
            .to_socket_addrs()
            .map_err(|e| format!("--upstream {upstream}: {e}"))?
            .next()
            .ok_or_else(|| format!("--upstream {upstream}: resolves to no address"))?
    };
    let schedule = match (flags.get("--seed"), flags.get("--script")) {
        (Some(seed), None) => {
            let seed: u64 = seed
                .parse()
                .map_err(|_| format!("--seed expects an integer, got `{seed}`"))?;
            kamel_chaos::ChaosSchedule::seeded(seed)
        }
        (None, Some(script)) => {
            kamel_chaos::ChaosSchedule::parse_script(script).map_err(|e| format!("--script: {e}"))?
        }
        (Some(_), Some(_)) => return Err("give either --seed or --script, not both".into()),
        (None, None) => return Err("missing schedule: give --seed N or --script LIST".into()),
    };
    let mut config = kamel_chaos::ChaosConfig::new(schedule);
    config.stall_ms = (flags.get_f64("--stall-ms", config.stall_ms as f64)? as u64).max(1);
    config.trickle_ms = (flags.get_f64("--trickle-ms", config.trickle_ms as f64)? as u64).max(1);
    config.torn_after = (flags.get_f64("--torn-after", config.torn_after as f64)? as usize).max(1);
    let listen = flags.get("--listen").unwrap_or("127.0.0.1:8790");
    let listener = std::net::TcpListener::bind(listen).map_err(|e| format!("bind {listen}: {e}"))?;
    let signals = kamel_server::install_signal_handlers();
    let mut proxy = kamel_chaos::ChaosProxy::start(listener, upstream, config)
        .map_err(|e| format!("start proxy: {e}"))?;
    let _ = writeln!(
        out,
        "kamel-chaos proxying {} -> {upstream} (one fault per connection)",
        proxy.addr()
    );
    let _ = out.flush();
    while !signals.is_tripped() {
        std::thread::sleep(std::time::Duration::from_millis(100));
    }
    let seen = proxy.connections();
    proxy.shutdown();
    let _ = writeln!(out, "shutdown signal received; {seen} connections proxied; goodbye");
    Ok(())
}

/// `kamel c10k`: the concurrent-connection smoke drill (DESIGN.md §15).
///
/// Opens a wall of keep-alive connections against one `kamel serve` (or
/// `kamel route`) process, confirms the server's own
/// `kamel_connections_active` gauge sees them all, fires the same
/// request down every connection, and asserts the answers are
/// byte-identical — the reactor must hold the whole wall open on its
/// fixed worker pool, not serve them one at a time.
pub fn c10k(args: &[String], out: &mut dyn Write) -> Result<(), String> {
    if args.iter().any(|a| a == "--help") {
        let _ = writeln!(
            out,
            "kamel c10k --addr HOST:PORT [--connections N] [--fixture FILE]\n\
             \x20          [--timeout-ms N] [--gauge-wait-ms N]\n\
             opens N keep-alive connections (default 1000), waits until the\n\
             target's /metrics kamel_connections_active gauge counts them all,\n\
             then POSTs the --fixture trajectory JSON (default: GET /healthz)\n\
             down every connection and fails unless every response is\n\
             byte-identical; exits nonzero on any shortfall"
        );
        return Ok(());
    }
    let flags = Flags::parse(args, &[])?;
    let addr = flags.required("--addr")?;
    let target: std::net::SocketAddr = {
        use std::net::ToSocketAddrs;
        addr.to_socket_addrs()
            .map_err(|e| format!("--addr {addr}: {e}"))?
            .next()
            .ok_or_else(|| format!("--addr {addr}: resolves to no address"))?
    };
    let n = (flags.get_f64("--connections", 1_000.0)? as usize).max(1);
    let timeout = std::time::Duration::from_millis(
        (flags.get_f64("--timeout-ms", 10_000.0)? as u64).max(1),
    );
    let gauge_wait = std::time::Duration::from_millis(
        (flags.get_f64("--gauge-wait-ms", 10_000.0)? as u64).max(1),
    );
    let fixture = flags
        .get("--fixture")
        .map(|path| std::fs::read(path).map_err(|e| format!("--fixture {path}: {e}")))
        .transpose()?;
    // The wall: every connection stays open (keep-alive) until the drill
    // ends, so the gauge must count all of them at once.
    let mut wall = Vec::with_capacity(n);
    for i in 0..n {
        match kamel_server::Client::connect(target, timeout) {
            Ok(client) => wall.push(client),
            Err(e) => return Err(format!("connection {i}/{n} failed: {e}")),
        }
    }
    let _ = writeln!(out, "opened {n} keep-alive connections to {target}");
    let _ = out.flush();
    // The server's own view: poll /metrics (one extra connection) until
    // the active gauge counts the wall, or give up honestly.
    let mut probe = kamel_server::Client::connect(target, timeout)
        .map_err(|e| format!("metrics probe connect: {e}"))?;
    let deadline = std::time::Instant::now() + gauge_wait;
    let gauge = loop {
        let resp = probe.get("/metrics").map_err(|e| format!("GET /metrics: {e}"))?;
        if resp.status != 200 {
            return Err(format!("GET /metrics answered {}", resp.status));
        }
        let gauge: u64 = resp
            .text()
            .lines()
            .find_map(|l| l.strip_prefix("kamel_connections_active "))
            .and_then(|v| v.trim().parse().ok())
            .ok_or("no kamel_connections_active gauge on /metrics")?;
        if gauge >= n as u64 || std::time::Instant::now() >= deadline {
            break gauge;
        }
        std::thread::sleep(std::time::Duration::from_millis(50));
    };
    if gauge < n as u64 {
        return Err(format!(
            "kamel_connections_active reached {gauge}, wanted >= {n} \
             (server dropped or never admitted part of the wall)"
        ));
    }
    let _ = writeln!(out, "kamel_connections_active {gauge} >= {n}");
    // Same bytes down every pipe must come back as the same bytes.
    let mut first: Option<(u16, Vec<u8>)> = None;
    for (i, client) in wall.iter_mut().enumerate() {
        let resp = match &fixture {
            Some(body) => client.post_json("/v1/impute", body),
            None => client.get("/healthz"),
        }
        .map_err(|e| format!("request on connection {i}: {e}"))?;
        match &first {
            None => {
                if resp.status != 200 {
                    return Err(format!(
                        "connection 0 answered {}: {}",
                        resp.status,
                        resp.text()
                    ));
                }
                first = Some((resp.status, resp.body));
            }
            Some((status, body)) => {
                if resp.status != *status || resp.body != *body {
                    return Err(format!(
                        "connection {i} diverged: status {} vs {status}, \
                         {} vs {} body bytes",
                        resp.status,
                        resp.body.len(),
                        body.len()
                    ));
                }
            }
        }
    }
    let what = if fixture.is_some() { "fixture imputation" } else { "healthz" };
    let _ = writeln!(
        out,
        "all {n} connections answered the {what} with identical bytes; drill passed"
    );
    Ok(())
}

/// `kamel evaluate`: the §8 metrics of a model against ground truth.
pub fn evaluate(args: &[String], out: &mut dyn Write) -> Result<(), String> {
    if args.iter().any(|a| a == "--help") {
        let _ = writeln!(
            out,
            "kamel evaluate --model FILE --truth FILE [--sparse-m N] [--delta-m N] \
             [--max-gap-m N] [--limit N]"
        );
        return Ok(());
    }
    let flags = Flags::parse(args, &[])?;
    let kamel = Kamel::load_from_file(flags.required("--model")?).map_err(|e| e.to_string())?;
    let truth = open_trajectories(flags.required("--truth")?)?;
    if truth.is_empty() {
        return Err("ground-truth file has no trajectories".into());
    }
    let ctx = EvalContext {
        sparse_m: flags.get_f64("--sparse-m", 1_000.0)?,
        delta_m: flags.get_f64("--delta-m", 50.0)?,
        max_gap_m: flags.get_f64("--max-gap-m", 100.0)?,
    };
    let limit = flags.get_f64("--limit", 0.0)? as usize;
    // Reuse the harness by wrapping the ground truth in an ad-hoc dataset.
    let origin = truth[0].points[0].pos;
    let dataset = kamel_roadsim::Dataset {
        name: "cli".into(),
        origin,
        network: kamel_roadsim::RoadNetwork::new(),
        train: Vec::new(),
        test: truth,
    };
    let imputer = KamelImputer {
        kamel,
        label: "KAMEL".into(),
    };
    let result = evaluate_technique(&imputer, &dataset, &ctx, limit);
    let _ = write!(out, "{}", format_table("evaluation", &[result]));
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn byte_sizes_parse_with_binary_suffixes() {
        assert_eq!(parse_byte_size("512").unwrap(), 512);
        assert_eq!(parse_byte_size("64k").unwrap(), 64 << 10);
        assert_eq!(parse_byte_size("16M").unwrap(), 16 << 20);
        assert_eq!(parse_byte_size("2gb").unwrap(), 2 << 30);
        assert_eq!(parse_byte_size("0").unwrap(), 0);
        assert!(parse_byte_size("fast").is_err());
        assert!(parse_byte_size("").is_err());
        assert!(parse_byte_size("-1").is_err());
        assert!(parse_byte_size("99999999999g").is_err(), "shifted-out bits must not wrap");
    }

    #[test]
    fn serve_model_source_flags_fail_fast() {
        // All three rejections fire before any file I/O, so bad flag
        // combinations surface instantly even with huge models.
        let mut buf = Vec::new();
        let err = serve(&argv(&["--model", "a.json", "--store", "b.kstore"]), &mut buf)
            .expect_err("both sources");
        assert!(err.contains("not both"), "{err}");
        let err = serve(
            &argv(&["--model", "a.json", "--model-memory-budget", "64m"]),
            &mut buf,
        )
        .expect_err("budget without store");
        assert!(err.contains("requires --store"), "{err}");
        let err = serve(&argv(&["--store", "b.kstore", "--quantize"]), &mut buf)
            .expect_err("quantize with store");
        assert!(err.contains("--quantize"), "{err}");
        let err = serve(&argv(&[]), &mut buf).expect_err("no source");
        assert!(err.contains("--model") && err.contains("--store"), "{err}");
    }

    #[test]
    fn chaos_schedule_flags_fail_fast() {
        // All rejections fire before binding a socket.
        let mut buf = Vec::new();
        let err = chaos(
            &argv(&["--upstream", "127.0.0.1:1", "--seed", "7", "--script", "none"]),
            &mut buf,
        )
        .expect_err("both schedules");
        assert!(err.contains("not both"), "{err}");
        let err = chaos(&argv(&["--upstream", "127.0.0.1:1"]), &mut buf)
            .expect_err("no schedule");
        assert!(err.contains("--seed") && err.contains("--script"), "{err}");
        let err = chaos(&argv(&["--seed", "7"]), &mut buf).expect_err("no upstream");
        assert!(err.contains("--upstream"), "{err}");
        let err = chaos(
            &argv(&["--upstream", "127.0.0.1:1", "--script", "sparkle"]),
            &mut buf,
        )
        .expect_err("unknown fault");
        assert!(err.contains("--script"), "{err}");
        let err = chaos(
            &argv(&["--upstream", "127.0.0.1:1", "--seed", "many"]),
            &mut buf,
        )
        .expect_err("non-integer seed");
        assert!(err.contains("--seed"), "{err}");
    }

    #[test]
    fn route_resilience_flags_parse_as_bare_flags() {
        // --degraded-mode takes no value: parsing must not swallow the
        // next argument, so the missing-fleet check still fires.
        let mut buf = Vec::new();
        let err = route(&argv(&["--degraded-mode"]), &mut buf).expect_err("no fleet");
        assert!(err.contains("missing fleet"), "{err}");
    }

    #[test]
    fn serve_degraded_mode_is_a_bare_flag() {
        let mut buf = Vec::new();
        let err = serve(&argv(&["--degraded-mode"]), &mut buf).expect_err("no model");
        assert!(err.contains("--model"), "{err}");
    }

    #[test]
    fn serve_learn_flags_fail_fast() {
        // All rejections fire before any model I/O or socket bind.
        let mut buf = Vec::new();
        let err = serve(&argv(&["--store", "b.kstore", "--learn"]), &mut buf)
            .expect_err("learn with store");
        assert!(err.contains("--learn requires --model"), "{err}");
        let err = serve(
            &argv(&["--model", "a.json", "--learn-dir", "cap/"]),
            &mut buf,
        )
        .expect_err("learn flag without --learn");
        assert!(err.contains("requires --learn"), "{err}");
        let err = serve(&argv(&["--model", "a.json", "--capture-only"]), &mut buf)
            .expect_err("capture-only without --learn");
        assert!(err.contains("--capture-only requires --learn"), "{err}");
    }

    #[test]
    fn learn_requires_its_flags() {
        let mut buf = Vec::new();
        let err = learn(&argv(&["--capture-dir", "cap/"]), &mut buf).expect_err("no model");
        assert!(err.contains("--model"), "{err}");
        let err = learn(&argv(&["--model", "m.json"]), &mut buf).expect_err("no dir");
        assert!(err.contains("--capture-dir"), "{err}");
        let err = learn(
            &argv(&["--model", "m.json", "--capture-dir", "cap/", "--reload", "nowhere"]),
            &mut buf,
        )
        .expect_err("bad reload addr");
        assert!(err.contains("--reload"), "{err}");
    }

    #[test]
    fn pack_requires_its_flags() {
        let mut buf = Vec::new();
        let err = pack(&argv(&["--out", "x.kstore"]), &mut buf).expect_err("no model");
        assert!(err.contains("--model"), "{err}");
        let err = pack(&argv(&["--model", "m.json"]), &mut buf).expect_err("no out");
        assert!(err.contains("--out"), "{err}");
    }
}

//! Polyline utilities in the planar frame.
//!
//! The evaluation metrics (§8) discretize ground-truth and imputed
//! trajectories by placing points every `max_gap` meters along the polyline,
//! then measure how many discretized points of one polyline fall within the
//! accuracy threshold δ of the other. This module provides those primitives
//! plus length, resampling, and point-to-polyline distance.

/// A planar polyline, represented as an ordered point list.
pub type Polyline = Vec<crate::point::Xy>;

use crate::point::Xy;

/// Total length of a polyline in meters. Zero for fewer than two points.
pub fn polyline_length(line: &[Xy]) -> f64 {
    line.windows(2).map(|w| w[0].dist(&w[1])).sum()
}

/// Places points along `line` at every `interval` meters of arc length,
/// always including the first and last vertices.
///
/// This is the discretization operator from the paper's Recall/Precision
/// definitions. Returns the original endpoints (or an empty vector) when the
/// line has fewer than two points. `interval` must be positive.
pub fn discretize(line: &[Xy], interval: f64) -> Vec<Xy> {
    assert!(interval > 0.0, "discretization interval must be positive");
    match line.len() {
        0 => return Vec::new(),
        1 => return vec![line[0]],
        _ => {}
    }
    let mut out = Vec::with_capacity((polyline_length(line) / interval) as usize + 2);
    out.push(line[0]);
    // Distance along the current segment already covered since the last
    // emitted sample.
    let mut carried = 0.0;
    for w in line.windows(2) {
        let (a, b) = (w[0], w[1]);
        let seg = a.dist(&b);
        if seg == 0.0 {
            continue;
        }
        let mut along = interval - carried;
        while along <= seg {
            out.push(a.lerp(&b, along / seg));
            along += interval;
        }
        carried = seg - (along - interval);
    }
    let last = *line.last().expect("len >= 2");
    // Avoid duplicating the final vertex when the arc length is an exact
    // multiple of the interval.
    if out.last().is_none_or(|p| p.dist(&last) > 1e-9) {
        out.push(last);
    }
    out
}

/// Shortest distance from `p` to any segment of `line`, in meters.
///
/// Returns `f64::INFINITY` for an empty polyline.
pub fn point_to_polyline_distance(p: Xy, line: &[Xy]) -> f64 {
    if line.is_empty() {
        return f64::INFINITY;
    }
    if line.len() == 1 {
        return p.dist(&line[0]);
    }
    line.windows(2)
        .map(|w| point_to_segment_distance(p, w[0], w[1]))
        .fold(f64::INFINITY, f64::min)
}

/// Distance from `p` to the closed segment `[a, b]`.
pub fn point_to_segment_distance(p: Xy, a: Xy, b: Xy) -> f64 {
    let (abx, aby) = a.delta(&b);
    let len_sq = abx * abx + aby * aby;
    if len_sq == 0.0 {
        return p.dist(&a);
    }
    let (apx, apy) = a.delta(&p);
    let t = ((apx * abx + apy * aby) / len_sq).clamp(0.0, 1.0);
    p.dist(&a.lerp(&b, t))
}

/// Directed Hausdorff distance from `a` to `b`: the worst deviation of any
/// `a` sample (at `sample_m` spacing) from polyline `b`.
///
/// Complements the paper's discretized recall/precision: where those count
/// the fraction of points within δ, Hausdorff reports the single worst
/// excursion — useful for spotting imputations that are mostly right but
/// take one bad detour. `f64::INFINITY` when either polyline is empty.
pub fn directed_hausdorff_m(a: &[Xy], b: &[Xy], sample_m: f64) -> f64 {
    if a.is_empty() || b.is_empty() {
        return f64::INFINITY;
    }
    discretize(a, sample_m)
        .into_iter()
        .map(|p| point_to_polyline_distance(p, b))
        .fold(0.0, f64::max)
}

/// Symmetric Hausdorff distance between two polylines.
pub fn hausdorff_m(a: &[Xy], b: &[Xy], sample_m: f64) -> f64 {
    directed_hausdorff_m(a, b, sample_m).max(directed_hausdorff_m(b, a, sample_m))
}

/// Mean deviation of `a`'s discretized samples from polyline `b`, meters.
pub fn mean_deviation_m(a: &[Xy], b: &[Xy], sample_m: f64) -> f64 {
    if a.is_empty() || b.is_empty() {
        return f64::INFINITY;
    }
    let samples = discretize(a, sample_m);
    let n = samples.len() as f64;
    samples
        .into_iter()
        .map(|p| point_to_polyline_distance(p, b))
        .sum::<f64>()
        / n
}

/// Resamples a timestamped planar path at a fixed period, interpolating
/// positions linearly in time.
///
/// Used by the training-data-density experiment (Fig. 12-V): the 1 s dense
/// ground truth is resampled at 15/30/60 s. `points` are `(position, time)`
/// pairs with non-decreasing times; the first and last fixes are always kept.
pub fn resample_by_time(points: &[(Xy, f64)], period_s: f64) -> Vec<(Xy, f64)> {
    assert!(period_s > 0.0, "resampling period must be positive");
    if points.len() < 2 {
        return points.to_vec();
    }
    let t0 = points[0].1;
    let t_end = points[points.len() - 1].1;
    let mut out = vec![points[0]];
    let mut t = t0 + period_s;
    let mut i = 0;
    while t < t_end {
        while i + 1 < points.len() && points[i + 1].1 < t {
            i += 1;
        }
        let (p0, ta) = points[i];
        let (p1, tb) = points[i + 1];
        let frac = if tb > ta { (t - ta) / (tb - ta) } else { 0.0 };
        out.push((p0.lerp(&p1, frac.clamp(0.0, 1.0)), t));
        t += period_s;
    }
    out.push(points[points.len() - 1]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn straight(n: usize, step: f64) -> Vec<Xy> {
        (0..n).map(|i| Xy::new(i as f64 * step, 0.0)).collect()
    }

    #[test]
    fn length_of_straight_line() {
        assert_eq!(polyline_length(&straight(5, 10.0)), 40.0);
        assert_eq!(polyline_length(&[]), 0.0);
        assert_eq!(polyline_length(&[Xy::new(1.0, 1.0)]), 0.0);
    }

    #[test]
    fn discretize_spacing_is_uniform() {
        let line = straight(11, 10.0); // 100 m total
        let pts = discretize(&line, 25.0);
        // 0, 25, 50, 75, 100
        assert_eq!(pts.len(), 5);
        for (i, p) in pts.iter().enumerate() {
            assert!((p.x - 25.0 * i as f64).abs() < 1e-9, "point {i} at {p:?}");
        }
    }

    #[test]
    fn discretize_always_includes_endpoints() {
        let line = vec![Xy::new(0.0, 0.0), Xy::new(0.0, 33.0)];
        let pts = discretize(&line, 10.0);
        assert_eq!(pts[0], line[0]);
        assert_eq!(*pts.last().unwrap(), line[1]);
        assert_eq!(pts.len(), 5); // 0,10,20,30,33
    }

    #[test]
    fn discretize_spans_vertices() {
        // Samples must continue across vertices, not restart at each one.
        let line = vec![Xy::new(0.0, 0.0), Xy::new(7.0, 0.0), Xy::new(14.0, 0.0)];
        let pts = discretize(&line, 4.0);
        let xs: Vec<f64> = pts.iter().map(|p| p.x).collect();
        assert_eq!(xs, vec![0.0, 4.0, 8.0, 12.0, 14.0]);
    }

    #[test]
    fn discretize_degenerate_inputs() {
        assert!(discretize(&[], 5.0).is_empty());
        let single = discretize(&[Xy::new(1.0, 2.0)], 5.0);
        assert_eq!(single, vec![Xy::new(1.0, 2.0)]);
        // Zero-length segments are skipped without emitting duplicates.
        let dup = vec![Xy::new(0.0, 0.0), Xy::new(0.0, 0.0), Xy::new(10.0, 0.0)];
        let pts = discretize(&dup, 5.0);
        assert_eq!(pts.len(), 3);
    }

    #[test]
    fn point_to_polyline_basics() {
        let line = vec![Xy::new(0.0, 0.0), Xy::new(10.0, 0.0)];
        assert_eq!(point_to_polyline_distance(Xy::new(5.0, 3.0), &line), 3.0);
        assert_eq!(point_to_polyline_distance(Xy::new(-4.0, 0.0), &line), 4.0);
        assert_eq!(point_to_polyline_distance(Xy::new(13.0, 4.0), &line), 5.0);
        assert_eq!(
            point_to_polyline_distance(Xy::new(1.0, 1.0), &[]),
            f64::INFINITY
        );
    }

    #[test]
    fn segment_distance_degenerate_segment() {
        let a = Xy::new(2.0, 2.0);
        assert_eq!(point_to_segment_distance(Xy::new(5.0, 6.0), a, a), 5.0);
    }

    #[test]
    fn hausdorff_identity_and_offset() {
        let a = vec![Xy::new(0.0, 0.0), Xy::new(1000.0, 0.0)];
        assert_eq!(hausdorff_m(&a, &a, 50.0), 0.0);
        let shifted = vec![Xy::new(0.0, 30.0), Xy::new(1000.0, 30.0)];
        assert!((hausdorff_m(&a, &shifted, 50.0) - 30.0).abs() < 1e-9);
        // A single detour dominates the symmetric distance.
        let detour = vec![
            Xy::new(0.0, 0.0),
            Xy::new(500.0, 200.0),
            Xy::new(1000.0, 0.0),
        ];
        let h = hausdorff_m(&a, &detour, 25.0);
        assert!((150.0..=200.0).contains(&h), "got {h}");
        // Mean deviation is far below the worst excursion.
        assert!(mean_deviation_m(&detour, &a, 25.0) < h);
        // Empty inputs.
        assert_eq!(hausdorff_m(&[], &a, 50.0), f64::INFINITY);
    }

    #[test]
    fn directed_hausdorff_is_asymmetric() {
        // b covers a, but a covers only half of b: directed distances differ.
        let a = vec![Xy::new(0.0, 0.0), Xy::new(500.0, 0.0)];
        let b = vec![Xy::new(0.0, 0.0), Xy::new(1000.0, 0.0)];
        assert!(directed_hausdorff_m(&a, &b, 50.0) < 1e-9);
        assert!((directed_hausdorff_m(&b, &a, 50.0) - 500.0).abs() < 1e-9);
    }

    #[test]
    fn resample_by_time_keeps_ends_and_period() {
        let pts: Vec<(Xy, f64)> = (0..=60)
            .map(|s| (Xy::new(s as f64, 0.0), s as f64))
            .collect();
        let sampled = resample_by_time(&pts, 15.0);
        let times: Vec<f64> = sampled.iter().map(|(_, t)| *t).collect();
        assert_eq!(times, vec![0.0, 15.0, 30.0, 45.0, 60.0]);
        // Positions interpolate linearly.
        assert!((sampled[1].0.x - 15.0).abs() < 1e-9);
    }

    #[test]
    fn resample_short_input_passthrough() {
        let pts = vec![(Xy::new(0.0, 0.0), 0.0)];
        assert_eq!(resample_by_time(&pts, 10.0), pts);
    }
}

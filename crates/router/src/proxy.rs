//! The routing core: gap → cell → shard assignment, verbatim forwarding,
//! scatter-gather for shard-spanning trajectories, and deterministic
//! replica failover.
//!
//! ## Forwarding modes
//!
//! * **Single-owner** (the common case): every gap of the request is
//!   assigned to the same shard, so the original body is forwarded
//!   verbatim and the shard's response returned verbatim — byte-identical
//!   to asking a monolithic server over the same model.
//! * **Scatter-gather**: the trajectory's gaps span shards. The point
//!   list is split at ownership changes into sub-trajectories that share
//!   their boundary fix, each sub-trajectory is imputed by its owner, and
//!   the responses are merged in order (each later segment drops its
//!   echoed boundary fix; the imputation summaries are summed). Gaps at a
//!   seam lose cross-shard context by construction — the documented cost
//!   of spanning territories (DESIGN.md §11).
//!
//! ## Failover
//!
//! Each cell's rendezvous order is primary + replicas. A forward walks
//! that chain: unavailable shards (ejected / unverified) are skipped, a
//! transport error or 5xx records a health failure and moves on, and the
//! first 2xx–4xx wins. The chain is deterministic, so concurrent clients
//! agree on who serves a cell at every health state.

use crate::breaker::{Breaker, BreakerEvent, BreakerPolicy};
use crate::health::{HealthPolicy, HealthState, ShardState};
use crate::metrics::RouterMetrics;
use crate::shardmap::ShardMap;
use kamel::routing::gap_anchor_cells;
use kamel_geo::Trajectory;
use kamel_hexgrid::CellId;
use kamel_server::http::{parse_deadline_header, Request, Response};
use kamel_server::{
    Client, ClientResponse, Clock, ConnMode, ImputeResponse, InfoResponse, RequestOpts,
    RetryPolicy, RetryingClient, SystemClock, DEADLINE_HEADER, DEGRADED_HEADER,
};
use serde::Serialize;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// When the remaining deadline budget drops to this floor, forwarding to
/// a shard cannot plausibly finish in time: a degraded-mode router
/// answers from the linear path instead of burning the last of the
/// budget discovering a 504.
const DEGRADED_BUDGET_FLOOR: Duration = Duration::from_millis(25);

/// Router tuning knobs.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Connection-handler threads.
    pub handlers: usize,
    /// Per-forward socket timeout.
    pub timeout: Duration,
    /// Per-shard retry policy (kept tight: replica failover is the real
    /// retry; see [`RetryPolicy`]).
    pub retry: RetryPolicy,
    /// Ejection threshold and probe cadence.
    pub health: HealthPolicy,
    /// Per-shard circuit-breaker thresholds.
    pub breaker: BreakerPolicy,
    /// Socket read timeout for idle keep-alive client connections.
    pub idle_poll: Duration,
    /// Pooled connections kept per shard.
    pub max_pool: usize,
    /// Deadline budget granted to requests that carry no
    /// `x-kamel-deadline-ms` header. The remaining budget is re-stamped
    /// on every forward, so shards shed work the router has given up on.
    pub default_deadline: Duration,
    /// When `true`, requests no shard can serve (all replicas down or
    /// breaker-open, or the budget nearly spent) are answered from the
    /// linear-interpolation baseline — marked degraded — instead of
    /// 502/503.
    pub degraded: bool,
    /// Gap threshold / interior spacing (meters) for the degraded linear
    /// imputer (the system `max_gap`, paper default 100 m).
    pub degraded_max_gap_m: f64,
    /// Connection-layer architecture: epoll/kqueue reactor (default) or
    /// the legacy thread-per-connection fallback.
    pub mode: ConnMode,
    /// Concurrent-connection cap; accepts beyond it are refused with a
    /// best-effort 503.
    pub max_connections: usize,
    /// Reactor mode only: idle keep-alive / slow-loris connections are
    /// closed after this long without progress.
    pub idle_timeout: Duration,
}

impl Default for RouterConfig {
    fn default() -> Self {
        Self {
            handlers: 8,
            timeout: Duration::from_secs(10),
            retry: RetryPolicy {
                base: Duration::from_millis(50),
                max_delay: Duration::from_millis(250),
                max_attempts: 2,
                deadline: Duration::from_secs(5),
                jitter_seed: 0x6b61_6d65_6c00_0002,
            },
            health: HealthPolicy::default(),
            breaker: BreakerPolicy::default(),
            idle_poll: Duration::from_millis(200),
            max_pool: 8,
            default_deadline: Duration::from_secs(10),
            degraded: false,
            degraded_max_gap_m: 100.0,
            mode: ConnMode::Reactor,
            max_connections: 10_000,
            idle_timeout: Duration::from_secs(30),
        }
    }
}

/// One row of the `GET /v1/shards` listing.
#[derive(Debug, Serialize)]
struct ShardStatus {
    id: String,
    addr: String,
    state: &'static str,
    consecutive_failures: u32,
}

/// The `GET /v1/shards` body.
#[derive(Debug, Serialize)]
struct ShardsPage {
    cell_deg: f64,
    expected_digest: Option<String>,
    shards: Vec<ShardStatus>,
}

/// Shared routing state: the map, the fleet's health, per-shard
/// connection pools, and metrics.
pub struct RouterCore {
    map: ShardMap,
    health: HealthState,
    metrics: Arc<RouterMetrics>,
    pools: Vec<Mutex<Vec<RetryingClient>>>,
    /// One circuit breaker per shard, indexed like the map.
    breakers: Vec<Breaker>,
    /// The config digest the fleet is pinned to: the map's
    /// `config_digest` when present, else the digest of the first shard
    /// admitted (first-writer-wins).
    fleet_digest: Mutex<Option<String>>,
    clock: Arc<dyn Clock>,
    config: RouterConfig,
}

impl RouterCore {
    /// Builds the core; no traffic flows until shards are admitted (run
    /// [`RouterCore::probe_all`] at boot and periodically).
    pub fn new(map: ShardMap, config: RouterConfig) -> Self {
        Self::with_clock(map, config, Arc::new(SystemClock))
    }

    /// [`RouterCore::new`] with an injected clock, so deadline and
    /// breaker-timer decisions are deterministic under test.
    pub fn with_clock(map: ShardMap, config: RouterConfig, clock: Arc<dyn Clock>) -> Self {
        let metrics = Arc::new(RouterMetrics::new(
            map.shards().iter().map(|s| s.id.clone()).collect(),
        ));
        let health = HealthState::new(map.len(), config.health.clone());
        let pools = map.shards().iter().map(|_| Mutex::new(Vec::new())).collect();
        let breakers = map
            .shards()
            .iter()
            .map(|_| Breaker::new(config.breaker.clone(), Arc::clone(&clock)))
            .collect();
        let fleet_digest = Mutex::new(map.expected_digest().map(str::to_string));
        Self {
            map,
            health,
            metrics,
            pools,
            breakers,
            fleet_digest,
            clock,
            config,
        }
    }

    /// Shard `i`'s circuit breaker.
    pub fn breaker(&self, shard: usize) -> &Breaker {
        &self.breakers[shard]
    }

    /// The shard map.
    pub fn map(&self) -> &ShardMap {
        &self.map
    }

    /// The fleet's health.
    pub fn health(&self) -> &HealthState {
        &self.health
    }

    /// The metrics registry.
    pub fn metrics(&self) -> &Arc<RouterMetrics> {
        &self.metrics
    }

    /// The router configuration.
    pub fn config(&self) -> &RouterConfig {
        &self.config
    }

    /// The clock the core makes deadline and breaker decisions with;
    /// the reactor shares it so socket timers agree with deadlines.
    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.clock
    }

    /// Number of currently admitted shards.
    pub fn available_shards(&self) -> usize {
        (0..self.map.len()).filter(|&i| self.health.is_available(i)).count()
    }

    // ---- probing / admission ----

    /// One probe sweep over the whole fleet: active shards are health-
    /// checked (probe failures count toward ejection like request
    /// failures), unverified/ejected shards are (re-)admitted when they
    /// answer `/healthz` healthy and their `/v1/info` config digest
    /// matches the fleet.
    pub fn probe_all(&self) {
        for shard in 0..self.map.len() {
            self.probe_shard(shard);
        }
    }

    fn probe_shard(&self, shard: usize) {
        match self.probe_info(shard) {
            Ok(info) => match self.health.state(shard) {
                ShardState::Active => self.health.record_success(shard),
                ShardState::Unverified | ShardState::Ejected => self.try_admit(shard, &info),
            },
            Err(_) => self.record_shard_failure(shard),
        }
    }

    /// `/healthz` + `/v1/info` over a fresh, short-lived connection.
    fn probe_info(&self, shard: usize) -> Result<InfoResponse, String> {
        let addr = self.map.shards()[shard].addr;
        let timeout = self.config.timeout.min(Duration::from_secs(2));
        let mut client = Client::connect(addr, timeout).map_err(|e| e.to_string())?;
        let health = client.get("/healthz").map_err(|e| e.to_string())?;
        if health.status != 200 {
            return Err(format!("healthz answered {}", health.status));
        }
        let info = client.get("/v1/info").map_err(|e| e.to_string())?;
        if info.status != 200 {
            return Err(format!("info answered {}", info.status));
        }
        serde_json::from_slice(&info.body).map_err(|e| format!("bad /v1/info body: {e}"))
    }

    /// Digest-checked admission: the first admitted shard pins the fleet
    /// digest when the map does not; a disagreeing shard is refused (and
    /// stays out until its digest matches).
    fn try_admit(&self, shard: usize, info: &InfoResponse) {
        let matches = {
            let mut pinned = self.fleet_digest.lock().unwrap();
            match pinned.as_deref() {
                Some(expected) => expected == info.config_digest,
                None => {
                    *pinned = Some(info.config_digest.clone());
                    true
                }
            }
        };
        if !matches {
            self.metrics
                .shard(shard)
                .admission_refusals
                .fetch_add(1, Ordering::Relaxed);
            eprintln!(
                "kamel-router: refusing shard `{}`: config digest {} disagrees with the fleet",
                self.map.shards()[shard].id,
                info.config_digest,
            );
            return;
        }
        if self.health.admit(shard).is_some() {
            self.metrics.shard(shard).admissions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records a failed forward/probe; bumps the ejection counter when
    /// this failure tripped the health machine.
    fn record_shard_failure(&self, shard: usize) {
        if self.health.record_failure(shard) {
            self.metrics.shard(shard).ejections.fetch_add(1, Ordering::Relaxed);
        }
    }

    // ---- request path ----

    /// Routes one `POST /v1/impute` request. The request's
    /// `x-kamel-deadline-ms` header (or the configured default) arms a
    /// deadline; the remaining budget is re-stamped on every forward and
    /// checked before each hop, so a request the router has given up on
    /// is never still computing somewhere downstream.
    pub fn handle_impute(&self, request: &Request) -> Response {
        self.handle_impute_at(request, self.clock.now())
    }

    /// [`RouterCore::handle_impute`] with an explicit arrival instant —
    /// the reactor path passes the moment the request finished parsing,
    /// so time spent queued for a dispatch worker counts against the
    /// deadline budget instead of silently extending it.
    pub fn handle_impute_at(&self, request: &Request, received: Instant) -> Response {
        let budget = parse_deadline_header(request.header(DEADLINE_HEADER))
            .budget_or(self.config.default_deadline);
        let deadline = received + budget;
        let sparse: Trajectory = match serde_json::from_slice(&request.body) {
            Ok(t) => t,
            Err(e) => {
                self.metrics.requests_bad.fetch_add(1, Ordering::Relaxed);
                return Response::text(400, format!("bad request: invalid trajectory JSON: {e}\n"));
            }
        };
        // One routing cell per gap; gapless trajectories still need an
        // owner (the shard echoes them back).
        let cells = {
            let anchors = gap_anchor_cells(&sparse, self.map.cell_deg());
            if anchors.is_empty() {
                vec![sparse
                    .points
                    .first()
                    .map(|p| self.map.cell_of(p.pos))
                    .unwrap_or_default()]
            } else {
                anchors
            }
        };
        // A budget too thin for any forward: answer degraded (cheap,
        // local) rather than spending it discovering a 504 downstream.
        let remaining = deadline.saturating_duration_since(self.clock.now());
        if remaining.is_zero() {
            self.metrics.requests_deadline.fetch_add(1, Ordering::Relaxed);
            return Response::text(504, "deadline exceeded (stage: router)\n");
        }
        if self.config.degraded && remaining <= DEGRADED_BUDGET_FLOOR {
            return self.degraded_response(&sparse, "deadline");
        }
        // Snapshot the assignment: each gap goes to the first available
        // candidate of its cell. Failover below re-walks the chain, so a
        // shard dying between here and the forward is still survived.
        let mut assigned = Vec::with_capacity(cells.len());
        for cell in &cells {
            match self.first_available(*cell) {
                Some(shard) => assigned.push(shard),
                None if self.config.degraded => {
                    return self.degraded_response(&sparse, "no-shard-available");
                }
                None => {
                    self.metrics.requests_failed.fetch_add(1, Ordering::Relaxed);
                    return Response::text(503, "no shards available\n")
                        .with_header("retry-after", "1");
                }
            }
        }
        let single_owner = assigned.iter().all(|&s| s == assigned[0]);
        if single_owner {
            return self.forward_verbatim(cells[0], &request.body, deadline, &sparse);
        }
        self.scatter_gather(&sparse, &cells, &assigned, deadline)
    }

    /// The first shard in the cell's rendezvous order that is admitted
    /// *and* whose breaker would let a forward through — a tripped owner
    /// costs one boolean here, not a connection timeout.
    fn first_available(&self, cell: CellId) -> Option<usize> {
        self.map
            .owner_order(cell)
            .into_iter()
            .find(|&s| self.health.is_available(s) && self.breakers[s].would_allow())
    }

    /// Records a breaker transition in the per-shard counters.
    fn note_breaker_event(&self, shard: usize, event: BreakerEvent) {
        let counters = self.metrics.shard(shard);
        match event {
            BreakerEvent::Opened => counters.breaker_opens.fetch_add(1, Ordering::Relaxed),
            BreakerEvent::HalfOpened => {
                counters.breaker_half_opens.fetch_add(1, Ordering::Relaxed)
            }
            BreakerEvent::Closed => counters.breaker_closes.fetch_add(1, Ordering::Relaxed),
        };
    }

    /// The degraded linear answer: imputed locally, marked in both the
    /// JSON body (`"degraded": true` + reason) and the
    /// `x-kamel-degraded` header so no caller mistakes it for a
    /// full-fidelity result.
    fn degraded_response(&self, sparse: &Trajectory, reason: &str) -> Response {
        let resp =
            ImputeResponse::degraded_linear(sparse, self.config.degraded_max_gap_m, reason);
        match serde_json::to_vec(&resp) {
            Ok(bytes) => {
                self.metrics.degraded.fetch_add(1, Ordering::Relaxed);
                self.metrics.requests_ok.fetch_add(1, Ordering::Relaxed);
                Response::json(bytes)
                    .with_header(DEGRADED_HEADER, reason.to_string())
                    .with_header("x-kamel-shard", "degraded")
            }
            Err(e) => {
                self.metrics.requests_failed.fetch_add(1, Ordering::Relaxed);
                Response::text(500, format!("degraded encode failed: {e}\n"))
            }
        }
    }

    /// Single-owner fast path: the original bytes go to the owner of
    /// `cell` (with failover down its chain) and the shard's response
    /// comes back verbatim. An exhausted chain falls back to the
    /// degraded path when enabled; a spent budget is an honest 504.
    fn forward_verbatim(
        &self,
        cell: CellId,
        body: &[u8],
        deadline: Instant,
        sparse: &Trajectory,
    ) -> Response {
        match self.forward_chain(cell, body, deadline) {
            Ok((shard, resp)) => {
                if resp.status < 400 {
                    self.metrics.requests_ok.fetch_add(1, Ordering::Relaxed);
                } else {
                    self.metrics.requests_bad.fetch_add(1, Ordering::Relaxed);
                }
                passthrough(resp).with_header("x-kamel-shard", self.map.shards()[shard].id.clone())
            }
            Err(ChainError::Deadline) => {
                self.metrics.requests_deadline.fetch_add(1, Ordering::Relaxed);
                Response::text(504, "deadline exceeded (stage: router)\n")
            }
            Err(ChainError::Exhausted) if self.config.degraded => {
                self.degraded_response(sparse, "no-shard-available")
            }
            Err(ChainError::Exhausted) => {
                self.metrics.requests_failed.fetch_add(1, Ordering::Relaxed);
                Response::text(502, format!("bad gateway: no shard could serve {cell}\n"))
            }
        }
    }

    /// Walks the cell's candidate chain until a shard answers below 500.
    /// Unavailable and breaker-refused shards are skipped in O(1);
    /// failures feed both the health machine and the breaker (a success
    /// slower than the breaker's latency threshold counts against it).
    /// The remaining deadline budget is checked before every hop.
    fn forward_chain(
        &self,
        cell: CellId,
        body: &[u8],
        deadline: Instant,
    ) -> Result<(usize, ClientResponse), ChainError> {
        for shard in self.map.owner_order(cell) {
            if !self.health.is_available(shard) {
                self.metrics.shard(shard).failovers.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            let (permit, event) = self.breakers[shard].admit();
            if let Some(event) = event {
                self.note_breaker_event(shard, event);
            }
            let Some(permit) = permit else {
                self.metrics.shard(shard).breaker_skips.fetch_add(1, Ordering::Relaxed);
                self.metrics.shard(shard).failovers.fetch_add(1, Ordering::Relaxed);
                continue;
            };
            let start = self.clock.now();
            if start >= deadline {
                // Too late to forward anywhere; the permit saw no
                // traffic, so it frees its probe slot without a verdict.
                self.breakers[shard].release(permit);
                return Err(ChainError::Deadline);
            }
            let remaining = deadline - start;
            let outcome = self.forward_once(shard, body, remaining);
            let latency = self.clock.now().saturating_duration_since(start);
            match outcome {
                Ok(resp) if resp.status < 500 => {
                    if let Some(event) = self.breakers[shard].record(permit, true, latency) {
                        self.note_breaker_event(shard, event);
                    }
                    self.health.record_success(shard);
                    return Ok((shard, resp));
                }
                Ok(_) | Err(_) => {
                    if let Some(event) = self.breakers[shard].record(permit, false, latency) {
                        self.note_breaker_event(shard, event);
                    }
                    self.metrics.shard(shard).errors.fetch_add(1, Ordering::Relaxed);
                    self.metrics.shard(shard).failovers.fetch_add(1, Ordering::Relaxed);
                    self.record_shard_failure(shard);
                }
            }
        }
        Err(ChainError::Exhausted)
    }

    /// One forward to one shard through its connection pool, bounded by
    /// the remaining deadline budget: the budget is stamped downstream
    /// as `x-kamel-deadline-ms`, bounds the retry loop's sleeps, and
    /// caps every socket read.
    fn forward_once(
        &self,
        shard: usize,
        body: &[u8],
        remaining: Duration,
    ) -> std::io::Result<ClientResponse> {
        let counters = self.metrics.shard(shard);
        counters.forwarded.fetch_add(1, Ordering::Relaxed);
        counters.inflight.fetch_add(1, Ordering::Relaxed);
        let mut client = self.pools[shard].lock().unwrap().pop().unwrap_or_else(|| {
            RetryingClient::new(
                self.map.shards()[shard].addr,
                self.config.timeout,
                self.config.retry.clone(),
            )
        });
        let opts = RequestOpts {
            headers: &[],
            budget: Some(remaining),
        };
        let outcome = client.post_json_opts("/v1/impute", body, opts);
        counters.inflight.fetch_sub(1, Ordering::Relaxed);
        if outcome.is_ok() {
            let mut pool = self.pools[shard].lock().unwrap();
            if pool.len() < self.config.max_pool {
                pool.push(client);
            }
        }
        outcome
    }

    /// Scatter-gather: split at ownership changes, impute each segment on
    /// its owner concurrently (every segment under the one request
    /// deadline), merge in order. A segment whose chain is exhausted
    /// degrades the whole answer when enabled — a seam must not return
    /// half a trajectory.
    fn scatter_gather(
        &self,
        sparse: &Trajectory,
        cells: &[CellId],
        assigned: &[usize],
        deadline: Instant,
    ) -> Response {
        self.metrics.scatter_requests.fetch_add(1, Ordering::Relaxed);
        let segments = split_segments(assigned);
        let mut bodies = Vec::with_capacity(segments.len());
        for &(start, end, _) in &segments {
            let part = Trajectory::new(sparse.points[start..=end].to_vec());
            match serde_json::to_vec(&part) {
                Ok(bytes) => bodies.push(bytes),
                Err(e) => {
                    self.metrics.requests_failed.fetch_add(1, Ordering::Relaxed);
                    return Response::text(500, format!("segment encode failed: {e}\n"));
                }
            }
        }
        // Gather: one forward per segment, concurrently; order is
        // restored by index.
        let mut outcomes: Vec<Option<Result<(usize, ClientResponse), ChainError>>> =
            (0..segments.len()).map(|_| None).collect();
        std::thread::scope(|scope| {
            for (slot, (&(start, _, _), body)) in
                outcomes.iter_mut().zip(segments.iter().zip(&bodies))
            {
                let cell = cells[start];
                scope.spawn(move || {
                    *slot = Some(self.forward_chain(cell, body, deadline));
                });
            }
        });
        let mut parts = Vec::with_capacity(segments.len());
        let mut served_by = Vec::with_capacity(segments.len());
        for outcome in outcomes {
            match outcome.expect("every scatter slot is filled") {
                Ok((shard, resp)) if resp.status == 200 => {
                    match serde_json::from_slice::<ImputeResponse>(&resp.body) {
                        Ok(part) => {
                            parts.push(part);
                            served_by.push(self.map.shards()[shard].id.clone());
                        }
                        Err(e) => {
                            self.metrics.requests_failed.fetch_add(1, Ordering::Relaxed);
                            return Response::text(
                                502,
                                format!("bad gateway: unparseable shard response: {e}\n"),
                            );
                        }
                    }
                }
                Ok((shard, resp)) => {
                    // A shard rejected its segment (4xx): surface it.
                    self.metrics.requests_bad.fetch_add(1, Ordering::Relaxed);
                    return passthrough(resp)
                        .with_header("x-kamel-shard", self.map.shards()[shard].id.clone());
                }
                Err(ChainError::Deadline) => {
                    self.metrics.requests_deadline.fetch_add(1, Ordering::Relaxed);
                    return Response::text(504, "deadline exceeded (stage: router)\n");
                }
                Err(ChainError::Exhausted) if self.config.degraded => {
                    return self.degraded_response(sparse, "no-shard-available");
                }
                Err(ChainError::Exhausted) => {
                    self.metrics.requests_failed.fetch_add(1, Ordering::Relaxed);
                    return Response::text(502, "bad gateway: a segment's chain is exhausted\n");
                }
            }
        }
        let merged = merge_responses(parts);
        let degraded_reason = merged.degraded.then(|| {
            if merged.degraded_reason.is_empty() {
                "degraded".to_string()
            } else {
                merged.degraded_reason.clone()
            }
        });
        match serde_json::to_vec(&merged) {
            Ok(bytes) => {
                self.metrics.requests_ok.fetch_add(1, Ordering::Relaxed);
                let mut out = Response::json(bytes).with_header("x-kamel-shard", served_by.join(","));
                // A shard answering its segment degraded (its own
                // overload path) marks the merged answer degraded too.
                if let Some(reason) = degraded_reason {
                    out = out.with_header(DEGRADED_HEADER, reason);
                }
                out
            }
            Err(e) => {
                self.metrics.requests_failed.fetch_add(1, Ordering::Relaxed);
                Response::text(500, format!("merge encode failed: {e}\n"))
            }
        }
    }

    // ---- introspection ----

    /// The `GET /metrics` page: the counter registry plus the live
    /// per-shard breaker state gauge (0 closed, 1 half-open, 2 open).
    pub fn metrics_page(&self) -> String {
        let mut page = self.metrics.render();
        page.push_str(
            "# HELP kamel_router_breaker_state Breaker state per shard (0 closed, 1 half-open, 2 open).\n\
             # TYPE kamel_router_breaker_state gauge\n",
        );
        for (shard, breaker) in self.map.shards().iter().zip(&self.breakers) {
            page.push_str(&format!(
                "kamel_router_breaker_state{{shard=\"{}\"}} {}\n",
                shard.id,
                breaker.state().gauge()
            ));
        }
        page
    }

    /// The `GET /v1/shards` body: the live map plus per-shard health.
    /// `Err` carries the serialization failure for a 500 answer.
    pub fn shards_page(&self) -> Result<Vec<u8>, String> {
        let snapshot = self.health.snapshot();
        let page = ShardsPage {
            cell_deg: self.map.cell_deg(),
            expected_digest: self.fleet_digest.lock().unwrap().clone(),
            shards: self
                .map
                .shards()
                .iter()
                .zip(snapshot)
                .map(|(s, (state, fails))| ShardStatus {
                    id: s.id.clone(),
                    addr: s.addr.to_string(),
                    state: state.as_str(),
                    consecutive_failures: fails,
                })
                .collect(),
        };
        serde_json::to_vec(&page).map_err(|e| format!("shards render failed: {e}"))
    }
}

/// Why a forward chain produced no shard response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ChainError {
    /// The request's deadline budget ran out before (or while) walking
    /// the chain — an honest 504, never a retry.
    Deadline,
    /// Every candidate was unavailable, breaker-refused, or failed —
    /// the degraded path's cue, else a 502.
    Exhausted,
}

/// Copies a shard response into a router response (status + body verbatim;
/// the cache and degraded headers survive, hop-by-hop framing is re-done
/// by the router).
fn passthrough(resp: ClientResponse) -> Response {
    let json = resp
        .header("content-type")
        .is_some_and(|ct| ct.starts_with("application/json"));
    let cache = resp.header("x-kamel-cache").map(str::to_string);
    let degraded = resp.header(DEGRADED_HEADER).map(str::to_string);
    let mut out = if json {
        let mut r = Response::json(resp.body);
        r.status = resp.status;
        r
    } else {
        Response {
            status: resp.status,
            headers: Vec::new(),
            body: resp.body,
            content_type: "text/plain; charset=utf-8",
        }
    };
    if let Some(cache) = cache {
        out = out.with_header("x-kamel-cache", cache);
    }
    if let Some(degraded) = degraded {
        out = out.with_header(DEGRADED_HEADER, degraded);
    }
    out
}

/// Groups consecutive gaps by their assigned shard: returns
/// `(first_point, last_point, shard)` per segment, where segment points
/// are `points[first..=last]` and adjacent segments share their boundary
/// fix.
pub(crate) fn split_segments(assigned: &[usize]) -> Vec<(usize, usize, usize)> {
    let mut segments = Vec::new();
    let mut start = 0;
    for gap in 1..=assigned.len() {
        if gap == assigned.len() || assigned[gap] != assigned[start] {
            segments.push((start, gap, assigned[start]));
            start = gap;
        }
    }
    segments
}

/// Order-preserving merge: concatenates segment trajectories (dropping
/// each later segment's echoed boundary fix), sums the imputation
/// summaries, and ORs the degraded flags — one degraded segment makes
/// the merged answer degraded (the first non-empty reason wins).
pub(crate) fn merge_responses(parts: Vec<ImputeResponse>) -> ImputeResponse {
    let mut parts = parts.into_iter();
    let Some(mut merged) = parts.next() else {
        return ImputeResponse {
            trajectory: Trajectory::new(Vec::new()),
            gap_count: 0,
            imputed_points: 0,
            failed_gaps: 0,
            model_calls: 0,
            degraded: false,
            degraded_reason: String::new(),
        };
    };
    for part in parts {
        merged
            .trajectory
            .points
            .extend(part.trajectory.points.into_iter().skip(1));
        merged.gap_count += part.gap_count;
        merged.imputed_points += part.imputed_points;
        merged.failed_gaps += part.failed_gaps;
        merged.model_calls += part.model_calls;
        merged.degraded |= part.degraded;
        if merged.degraded_reason.is_empty() {
            merged.degraded_reason = part.degraded_reason;
        }
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use kamel_geo::GpsPoint;

    #[test]
    fn segments_split_exactly_at_ownership_changes() {
        // 5 gaps → 6 points; shards A=0, B=1.
        assert_eq!(split_segments(&[0, 0, 1, 1, 0]), vec![(0, 2, 0), (2, 4, 1), (4, 5, 0)]);
        assert_eq!(split_segments(&[0]), vec![(0, 1, 0)]);
        assert_eq!(split_segments(&[1, 1, 1]), vec![(0, 3, 1)]);
        assert_eq!(split_segments(&[0, 1]), vec![(0, 1, 0), (1, 2, 1)]);
        assert!(split_segments(&[]).is_empty());
    }

    #[test]
    fn segments_tile_the_point_list_sharing_boundaries() {
        let assigned = [2, 2, 0, 1, 1, 1, 0];
        let segs = split_segments(&assigned);
        assert_eq!(segs.first().unwrap().0, 0);
        assert_eq!(segs.last().unwrap().1, assigned.len());
        for pair in segs.windows(2) {
            assert_eq!(pair[0].1, pair[1].0, "adjacent segments share a fix");
            assert_ne!(pair[0].2, pair[1].2, "a split implies an owner change");
        }
        let gaps: usize = segs.iter().map(|&(s, e, _)| e - s).sum();
        assert_eq!(gaps, assigned.len(), "every gap lands in exactly one segment");
    }

    fn part(ts: &[f64], gaps: usize, imputed: usize) -> ImputeResponse {
        ImputeResponse {
            trajectory: Trajectory::new(
                ts.iter().map(|&t| GpsPoint::from_parts(41.0, -8.0, t)).collect(),
            ),
            gap_count: gaps,
            imputed_points: imputed,
            failed_gaps: 0,
            model_calls: gaps,
            degraded: false,
            degraded_reason: String::new(),
        }
    }

    #[test]
    fn merge_drops_boundary_echoes_and_sums_summaries() {
        // Segment 1 ends at t=20; segment 2 echoes t=20 as its first fix.
        let merged = merge_responses(vec![
            part(&[0.0, 10.0, 20.0], 2, 1),
            part(&[20.0, 30.0, 40.0], 2, 1),
        ]);
        let ts: Vec<f64> = merged.trajectory.points.iter().map(|p| p.t).collect();
        assert_eq!(ts, vec![0.0, 10.0, 20.0, 30.0, 40.0]);
        assert_eq!(merged.gap_count, 4);
        assert_eq!(merged.imputed_points, 2);
        assert_eq!(merged.model_calls, 4);
    }

    #[test]
    fn merge_of_one_part_is_the_identity() {
        let merged = merge_responses(vec![part(&[0.0, 5.0], 1, 0)]);
        assert_eq!(merged.trajectory.len(), 2);
        assert_eq!(merged.gap_count, 1);
    }

    #[test]
    fn one_degraded_segment_degrades_the_merge() {
        let clean = part(&[0.0, 10.0], 1, 0);
        let mut tainted = part(&[10.0, 20.0], 1, 0);
        tainted.degraded = true;
        tainted.degraded_reason = "overloaded".into();
        let merged = merge_responses(vec![clean, tainted]);
        assert!(merged.degraded);
        assert_eq!(merged.degraded_reason, "overloaded");
        // All-clean merges stay clean.
        let merged = merge_responses(vec![part(&[0.0, 1.0], 1, 0), part(&[1.0, 2.0], 1, 0)]);
        assert!(!merged.degraded);
        assert!(merged.degraded_reason.is_empty());
    }
}

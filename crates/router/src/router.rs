//! The gateway server: accept loop, connection handlers, the background
//! probe thread, and routing to the [`RouterCore`].
//!
//! Same threading shape as `kamel-server` (1 accept thread + N handler
//! threads over a bounded socket channel, shutdown via a shared flag),
//! minus the batcher — the router's work per request is parsing and
//! forwarding, so handlers run the proxy inline.

use crate::proxy::{RouterConfig, RouterCore};
use crate::shardmap::ShardMap;
use kamel_server::http::{read_request, ReadError, Request, Response};
use kamel_server::ShutdownFlag;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Duration;

/// A running router. Dropping it without [`Router::shutdown`] aborts
/// without draining; call `shutdown` for the graceful path.
pub struct Router {
    addr: SocketAddr,
    flag: ShutdownFlag,
    core: Arc<RouterCore>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    handler_threads: Vec<std::thread::JoinHandle<()>>,
    probe_thread: Option<std::thread::JoinHandle<()>>,
}

impl Router {
    /// Binds `addr` (port 0 for ephemeral), runs one synchronous
    /// admission sweep over the fleet, and starts serving. Shards that
    /// are not up yet stay unverified and are admitted by the periodic
    /// probe once they answer.
    pub fn bind(addr: &str, map: ShardMap, config: RouterConfig) -> std::io::Result<Router> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let flag = ShutdownFlag::new();
        let core = Arc::new(RouterCore::new(map, config.clone()));
        core.probe_all();
        // Handlers drain a bounded socket channel fed by the acceptor.
        let (conn_tx, conn_rx) = mpsc::sync_channel::<TcpStream>(config.handlers.max(1) * 2);
        let conn_rx = Arc::new(Mutex::new(conn_rx));
        let handler_threads = (0..config.handlers.max(1))
            .map(|i| {
                let conn_rx = Arc::clone(&conn_rx);
                let core = Arc::clone(&core);
                let flag = flag.clone();
                std::thread::Builder::new()
                    .name(format!("kamel-route-{i}"))
                    .spawn(move || handler_loop(&conn_rx, &core, &flag))
                    .expect("spawn router handler")
            })
            .collect();
        let accept_flag = flag.clone();
        let poll = config.idle_poll.min(Duration::from_millis(50));
        let accept_thread = std::thread::Builder::new()
            .name("kamel-route-accept".into())
            .spawn(move || {
                accept_loop(&listener, &conn_tx, &accept_flag, poll);
                drop(conn_tx);
            })
            .expect("spawn router accept thread");
        let probe_core = Arc::clone(&core);
        let probe_flag = flag.clone();
        let probe_thread = std::thread::Builder::new()
            .name("kamel-route-probe".into())
            .spawn(move || probe_loop(&probe_core, &probe_flag))
            .expect("spawn router probe thread");
        Ok(Router {
            addr,
            flag,
            core,
            accept_thread: Some(accept_thread),
            handler_threads,
            probe_thread: Some(probe_thread),
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The routing core (map, health, metrics) — shared with handlers.
    pub fn core(&self) -> &Arc<RouterCore> {
        &self.core
    }

    /// Requests a graceful shutdown without waiting; follow with
    /// [`Router::shutdown`] to drain and join.
    pub fn request_shutdown(&self) {
        self.flag.trip();
    }

    /// Graceful shutdown: stop accepting, finish requests in flight on
    /// every connection, stop probing, join all threads.
    pub fn shutdown(mut self) {
        self.flag.trip();
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        for t in self.handler_threads.drain(..) {
            let _ = t.join();
        }
        if let Some(t) = self.probe_thread.take() {
            let _ = t.join();
        }
    }
}

fn accept_loop(
    listener: &TcpListener,
    conn_tx: &mpsc::SyncSender<TcpStream>,
    flag: &ShutdownFlag,
    poll: Duration,
) {
    while !flag.is_tripped() {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if conn_tx.send(stream).is_err() {
                    return;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => std::thread::sleep(poll),
            Err(_) => std::thread::sleep(poll),
        }
    }
}

/// Sweeps the fleet every `probe_interval`, polling the shutdown flag at
/// a finer grain so shutdown never waits out a full interval.
fn probe_loop(core: &RouterCore, flag: &ShutdownFlag) {
    let interval = core.health().policy().probe_interval;
    let tick = interval.min(Duration::from_millis(50)).max(Duration::from_millis(1));
    loop {
        let mut slept = Duration::ZERO;
        while slept < interval {
            if flag.is_tripped() {
                return;
            }
            std::thread::sleep(tick);
            slept += tick;
        }
        if flag.is_tripped() {
            return;
        }
        core.probe_all();
    }
}

fn handler_loop(
    conn_rx: &Mutex<mpsc::Receiver<TcpStream>>,
    core: &RouterCore,
    flag: &ShutdownFlag,
) {
    loop {
        let conn = conn_rx.lock().unwrap().recv();
        match conn {
            Ok(stream) => handle_connection(stream, core, flag),
            Err(_) => return,
        }
    }
}

fn handle_connection(stream: TcpStream, core: &RouterCore, flag: &ShutdownFlag) {
    if stream.set_nonblocking(false).is_err()
        || stream
            .set_read_timeout(Some(core.config().idle_poll))
            .is_err()
        || stream.set_nodelay(true).is_err()
    {
        return;
    }
    let Ok(mut write_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(stream);
    loop {
        if flag.is_tripped() {
            return;
        }
        match read_request(&mut reader) {
            Ok(request) => {
                let close = request.wants_close();
                let response = route(&request, core, flag);
                let close = close || response.status == 503;
                if response.write_to(&mut write_half, close).is_err() || close {
                    return;
                }
            }
            Err(ReadError::Idle) => continue,
            Err(ReadError::ConnectionClosed) => return,
            Err(ReadError::Bad(status, msg)) => {
                let _ = Response::text(status, msg).write_to(&mut write_half, true);
                return;
            }
            Err(ReadError::Io(_)) => return,
        }
    }
}

fn route(request: &Request, core: &RouterCore, flag: &ShutdownFlag) -> Response {
    match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/v1/impute") => core.handle_impute(request),
        ("GET", "/healthz") => {
            if flag.is_tripped() {
                Response::text(503, "draining\n")
            } else {
                Response::text(200, "ok\n")
            }
        }
        ("GET", "/metrics") => Response::text(200, core.metrics_page()),
        ("GET", "/v1/shards") => match core.shards_page() {
            Ok(body) => Response::json(body),
            Err(e) => Response::text(500, format!("{e}\n")),
        },
        (_, "/v1/impute") | (_, "/healthz") | (_, "/metrics") | (_, "/v1/shards") => {
            Response::text(405, "method not allowed\n")
        }
        _ => Response::text(404, "not found\n"),
    }
}

//! Intrinsic model-quality measures: masked-prediction accuracy and
//! perplexity over a held-out corpus.
//!
//! These are the standard MLM diagnostics (the trajectory-level §8 metrics
//! live in `kamel-eval`); the cell-size auto-tuner and the engine tests use
//! them to compare models without running full imputation.

use crate::MaskedTokenModel;

/// Result of a masked-prediction evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MlmQuality {
    /// Fraction of masked slots whose true token was ranked first.
    pub top1_accuracy: f64,
    /// Fraction of masked slots whose true token appeared in the top k.
    pub topk_accuracy: f64,
    /// Perplexity `exp(-mean log P(true token))`; unranked true tokens are
    /// assigned a small floor probability.
    pub perplexity: f64,
    /// Number of slots evaluated.
    pub slots: usize,
}

/// Probability floor for true tokens the model did not rank at all.
const FLOOR_PROB: f64 = 1e-6;

/// Evaluates a model by masking every interior position of every held-out
/// sequence and checking the prediction against the true token.
pub fn masked_quality(
    model: &dyn MaskedTokenModel,
    held_out: &[Vec<u64>],
    top_k: usize,
) -> MlmQuality {
    assert!(top_k >= 1, "top_k must be at least 1");
    let mut slots = 0usize;
    let mut top1 = 0usize;
    let mut topk = 0usize;
    let mut log_prob_sum = 0.0f64;
    for seq in held_out {
        if seq.len() < 3 {
            continue;
        }
        for pos in 1..seq.len() - 1 {
            let truth = seq[pos];
            let preds = model.predict_masked(seq, pos, top_k);
            slots += 1;
            if preds.first().is_some_and(|c| c.key == truth) {
                top1 += 1;
            }
            match preds.iter().find(|c| c.key == truth) {
                Some(c) => {
                    topk += 1;
                    log_prob_sum += c.prob.max(FLOOR_PROB).ln();
                }
                None => log_prob_sum += FLOOR_PROB.ln(),
            }
        }
    }
    if slots == 0 {
        return MlmQuality {
            top1_accuracy: 0.0,
            topk_accuracy: 0.0,
            perplexity: f64::INFINITY,
            slots: 0,
        };
    }
    MlmQuality {
        top1_accuracy: top1 as f64 / slots as f64,
        topk_accuracy: topk as f64 / slots as f64,
        perplexity: (-log_prob_sum / slots as f64).exp(),
        slots,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EngineConfig, NgramConfig};

    fn chain_corpus(n: usize) -> Vec<Vec<u64>> {
        (0..n).map(|_| vec![10u64, 20, 30, 40, 50, 60]).collect()
    }

    #[test]
    fn deterministic_chain_scores_perfectly() {
        let model = EngineConfig::Ngram(NgramConfig::default()).train(&chain_corpus(20));
        let q = masked_quality(&model, &chain_corpus(3), 5);
        assert_eq!(q.slots, 12); // 4 interior slots × 3 sequences
        assert_eq!(q.top1_accuracy, 1.0);
        assert_eq!(q.topk_accuracy, 1.0);
        assert!(q.perplexity < 1.6, "perplexity {}", q.perplexity);
    }

    #[test]
    fn shuffled_held_out_scores_poorly() {
        let model = EngineConfig::Ngram(NgramConfig::default()).train(&chain_corpus(20));
        // Reverse-order sequences: transitions never seen.
        let reversed = vec![vec![60u64, 50, 40, 30, 20, 10]; 3];
        let q = masked_quality(&model, &reversed, 5);
        assert!(q.top1_accuracy < 0.5, "accuracy {}", q.top1_accuracy);
        assert!(q.perplexity > 2.0);
    }

    #[test]
    fn accuracy_orders_models_by_training_size() {
        let small = EngineConfig::Ngram(NgramConfig::default()).train(&chain_corpus(1));
        let large = EngineConfig::Ngram(NgramConfig::default()).train(&chain_corpus(30));
        // Mix in noise so the small model has competition.
        let mut noisy = chain_corpus(1);
        noisy.push(vec![10, 99, 30, 98, 50, 97]);
        let small_noisy = EngineConfig::Ngram(NgramConfig::default()).train(&noisy);
        let held = chain_corpus(3);
        let q_large = masked_quality(&large, &held, 3);
        let q_small = masked_quality(&small_noisy, &held, 3);
        assert!(q_large.top1_accuracy >= q_small.top1_accuracy);
        let _ = small;
    }

    #[test]
    fn degenerate_inputs() {
        let model = EngineConfig::Ngram(NgramConfig::default()).train(&chain_corpus(5));
        let q = masked_quality(&model, &[], 3);
        assert_eq!(q.slots, 0);
        assert!(q.perplexity.is_infinite());
        // Two-token sequences have no interior slot.
        let q2 = masked_quality(&model, &[vec![10, 20]], 3);
        assert_eq!(q2.slots, 0);
    }
}

//! Wire-equivalence drills for the epoll-driven connection layer.
//!
//! The reactor (DESIGN.md §15) replaces thread-per-connection serving,
//! and its contract is byte identity: any byte sequence a client sends —
//! whole requests, byte-by-byte trickles, pipelined bursts, malformed
//! garbage — must produce exactly the response bytes the blocking path
//! produces. These tests drive both [`ConnMode`]s of a real
//! [`Server`] over real sockets and diff the raw wire output, then hold
//! a thousand-connection wall open on a two-thread dispatch pool to
//! prove concurrency is bounded by sockets, not threads.

use kamel_server::{CacheKey, ConnMode, Server, ServerConfig, WireService};
use proptest::prelude::*;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// Uppercasing echo backend: deterministic bytes in, deterministic bytes
/// out, no cache (so repeated matrix requests never diverge on hit
/// headers between the two servers).
struct EchoService;

impl WireService for EchoService {
    type Job = String;
    type Out = String;

    fn parse(&self, body: &[u8]) -> Result<String, String> {
        let text = std::str::from_utf8(body).map_err(|e| e.to_string())?;
        if text.is_empty() {
            return Err("empty body".into());
        }
        Ok(text.to_string())
    }

    fn cache_key(&self, _job: &String) -> Option<CacheKey> {
        None
    }

    fn run_batch(&self, jobs: Vec<String>) -> Vec<String> {
        jobs.into_iter().map(|j| j.to_uppercase()).collect()
    }

    fn render(&self, out: &String) -> Vec<u8> {
        out.clone().into_bytes()
    }

    fn info(&self) -> Vec<u8> {
        b"{\"generation\":0}".to_vec()
    }
}

fn config(mode: ConnMode) -> ServerConfig {
    ServerConfig {
        workers: 2,
        handlers: 4,
        batch_max: 8,
        batch_wait: Duration::from_millis(1),
        queue_cap: 64,
        cache_entries: 0,
        deadline: Duration::from_secs(5),
        idle_poll: Duration::from_millis(20),
        degraded_mode: false,
        mode,
        max_connections: 4096,
        idle_timeout: Duration::from_secs(30),
    }
}

/// One server per mode, booted once and leaked: the proptest cases and
/// the matrix rows all talk to the same pair, which keeps the drill fast
/// and guarantees both sides see identical service state.
fn pair() -> (SocketAddr, SocketAddr) {
    static PAIR: OnceLock<(SocketAddr, SocketAddr)> = OnceLock::new();
    *PAIR.get_or_init(|| {
        let reactor = Server::bind("127.0.0.1:0", Arc::new(EchoService), config(ConnMode::Reactor))
            .expect("bind reactor server");
        let threaded =
            Server::bind("127.0.0.1:0", Arc::new(EchoService), config(ConnMode::Threaded))
                .expect("bind threaded server");
        let addrs = (reactor.local_addr(), threaded.local_addr());
        // Leak both: they serve every test in this binary, then die with
        // the process.
        std::mem::forget(reactor);
        std::mem::forget(threaded);
        addrs
    })
}

/// Writes `bytes` to `addr` split at `cuts` (ascending offsets), with a
/// pause after each fragment so the receiver observes separate reads,
/// then returns everything the server sends until it closes the socket.
fn exchange(addr: SocketAddr, bytes: &[u8], cuts: &[usize]) -> Vec<u8> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");
    let mut start = 0;
    for &cut in cuts {
        let cut = cut.min(bytes.len());
        if cut > start {
            stream.write_all(&bytes[start..cut]).expect("write fragment");
            stream.flush().expect("flush");
            std::thread::sleep(Duration::from_micros(300));
            start = cut;
        }
    }
    stream.write_all(&bytes[start..]).expect("write tail");
    stream.flush().expect("flush");
    let mut response = Vec::new();
    stream.read_to_end(&mut response).expect("read response");
    response
}

fn close_request(body: &[u8]) -> Vec<u8> {
    let mut req = format!(
        "POST /v1/impute HTTP/1.1\r\nhost: x\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
        body.len()
    )
    .into_bytes();
    req.extend_from_slice(body);
    req
}

// ---------------------------------------------------------------- matrix

/// Every interesting request shape through both connection layers; the
/// raw bytes on the wire must be identical.
#[test]
fn reactor_and_threaded_answers_are_byte_identical() {
    let (reactor, threaded) = pair();
    let two = {
        // Two pipelined requests, the second closing the connection.
        let mut r =
            b"POST /v1/impute HTTP/1.1\r\nhost: x\r\ncontent-length: 5\r\n\r\nfirst".to_vec();
        r.extend_from_slice(&close_request(b"second"));
        r
    };
    let cases: Vec<Vec<u8>> = vec![
        close_request(b"hello reactor"),
        close_request(b"x"),
        close_request(&[0xFF, 0xFE, 0x41]), // invalid UTF-8: parse error, 400
        close_request(b""),                 // empty body: service rejects, 400
        two,
        b"GET /healthz HTTP/1.1\r\nhost: x\r\nconnection: close\r\n\r\n".to_vec(),
        b"GET /v1/info HTTP/1.1\r\nhost: x\r\nconnection: close\r\n\r\n".to_vec(),
        b"GET /nowhere HTTP/1.1\r\nhost: x\r\nconnection: close\r\n\r\n".to_vec(),
        b"PUT /v1/impute HTTP/1.1\r\nhost: x\r\nconnection: close\r\n\r\n".to_vec(),
        b"POST /v1/impute HTTP/2.0\r\nhost: x\r\nconnection: close\r\n\r\n".to_vec(),
        b"total garbage\r\n\r\n".to_vec(),
        b"POST /v1/impute HTTP/1.1\r\ncontent-length: huge\r\n\r\n".to_vec(),
    ];
    for (i, request) in cases.iter().enumerate() {
        let from_reactor = exchange(reactor, request, &[]);
        let from_threaded = exchange(threaded, request, &[]);
        assert_eq!(
            String::from_utf8_lossy(&from_reactor),
            String::from_utf8_lossy(&from_threaded),
            "case {i} diverged between connection layers"
        );
        assert!(!from_reactor.is_empty(), "case {i} produced no response");
    }
}

/// The reactor's incremental parser sees one byte per read — the
/// hostile-slow-client shape — and must still answer identically.
#[test]
fn byte_by_byte_delivery_matches_the_blocking_path() {
    let (reactor, threaded) = pair();
    let request = close_request(b"one byte at a time");
    let cuts: Vec<usize> = (1..request.len()).collect();
    let trickled = exchange(reactor, &request, &cuts);
    let whole = exchange(threaded, &request, &[]);
    assert_eq!(
        String::from_utf8_lossy(&trickled),
        String::from_utf8_lossy(&whole)
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any body, delivered in any fragmentation, answers byte-identically
    /// across both connection layers.
    #[test]
    fn fragmented_requests_are_wire_equivalent(
        body in proptest::collection::vec(any::<u8>(), 0..160),
        cut_seeds in proptest::collection::vec(0usize..400, 0..6),
    ) {
        let (reactor, threaded) = pair();
        let request = close_request(&body);
        let mut cuts: Vec<usize> = cut_seeds
            .into_iter()
            .map(|c| 1 + c % request.len().max(1))
            .collect();
        cuts.sort_unstable();
        cuts.dedup();
        let fragmented = exchange(reactor, &request, &cuts);
        let whole = exchange(threaded, &request, &[]);
        prop_assert_eq!(fragmented, whole);
    }
}

// ------------------------------------------------------------------ wall

fn read_one_response(stream: &mut TcpStream) -> Vec<u8> {
    let mut buf = Vec::new();
    let mut byte = [0u8; 1];
    // Head first (responses here are small; a 1-byte scan keeps this
    // helper trivially correct).
    while !buf.ends_with(b"\r\n\r\n") {
        assert_eq!(stream.read(&mut byte).expect("read head"), 1, "early close");
        buf.push(byte[0]);
    }
    let head = String::from_utf8_lossy(&buf).to_lowercase();
    let length: usize = head
        .lines()
        .find_map(|l| l.strip_prefix("content-length: "))
        .expect("content-length")
        .trim()
        .parse()
        .expect("numeric length");
    let mut body = vec![0u8; length];
    stream.read_exact(&mut body).expect("read body");
    buf.extend_from_slice(&body);
    buf
}

/// The headline acceptance drill: 1,000 keep-alive connections held open
/// simultaneously against a server with TWO dispatch threads. The
/// connection gauge must count the whole wall (no connection is parked
/// waiting for a thread), and every connection must then answer the same
/// request with the same bytes.
#[test]
fn a_thousand_connections_on_a_two_thread_pool() {
    let mut cfg = config(ConnMode::Reactor);
    cfg.handlers = 2;
    let server = Server::bind("127.0.0.1:0", Arc::new(EchoService), cfg).expect("bind");
    let addr = server.local_addr();
    const WALL: usize = 1_000;
    let mut wall = Vec::with_capacity(WALL);
    for i in 0..WALL {
        let stream = TcpStream::connect(addr).unwrap_or_else(|e| panic!("connect {i}: {e}"));
        stream.set_read_timeout(Some(Duration::from_secs(30))).expect("timeout");
        wall.push(stream);
    }
    // The server's own gauge must see every socket at once.
    let stats = server.connections();
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let active = stats.active.load(Ordering::Relaxed);
        if active >= WALL as u64 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "gauge stalled at {active}/{WALL} connections"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(stats.accepted_total.load(Ordering::Relaxed) >= WALL as u64);
    // Every connection answers; every answer is the same bytes.
    let request = b"POST /v1/impute HTTP/1.1\r\nhost: x\r\ncontent-length: 4\r\n\r\nwall";
    let mut first: Option<Vec<u8>> = None;
    for (i, stream) in wall.iter_mut().enumerate() {
        stream.write_all(request).unwrap_or_else(|e| panic!("send {i}: {e}"));
        let response = read_one_response(stream);
        match &first {
            None => {
                assert!(
                    response.starts_with(b"HTTP/1.1 200"),
                    "unexpected first response: {}",
                    String::from_utf8_lossy(&response)
                );
                first = Some(response);
            }
            Some(expected) => assert_eq!(&response, expected, "connection {i} diverged"),
        }
    }
    drop(wall);
    server.shutdown();
}

/// Graceful drain under load: a half-sent request is abandoned, a
/// completed keep-alive connection is closed, and `shutdown` joins
/// everything without hanging.
#[test]
fn drain_closes_the_wall_and_joins() {
    let server =
        Server::bind("127.0.0.1:0", Arc::new(EchoService), config(ConnMode::Reactor))
            .expect("bind");
    let addr = server.local_addr();
    // Idle keep-alive connection that completed one request.
    let mut done = TcpStream::connect(addr).expect("connect");
    done.set_read_timeout(Some(Duration::from_secs(10))).expect("timeout");
    done.write_all(b"GET /healthz HTTP/1.1\r\nhost: x\r\n\r\n").expect("send");
    let ok = read_one_response(&mut done);
    assert!(ok.starts_with(b"HTTP/1.1 200"));
    // Mid-head connection: the parser never gets the blank line.
    let mut partial = TcpStream::connect(addr).expect("connect");
    partial.set_read_timeout(Some(Duration::from_secs(10))).expect("timeout");
    partial.write_all(b"POST /v1/impute HTTP/1.1\r\nhost").expect("send partial");
    std::thread::sleep(Duration::from_millis(100));
    server.shutdown();
    // Both sockets must now read EOF — no hung connections survive drain.
    let mut sink = [0u8; 64];
    assert_eq!(done.read(&mut sink).expect("post-drain read"), 0, "idle conn still open");
    assert_eq!(partial.read(&mut sink).expect("post-drain read"), 0, "partial conn still open");
}

/// The idle/slow-loris timer at the server level: a connection that goes
/// quiet is closed and counted on the real clock.
#[test]
fn idle_connections_time_out_and_are_counted() {
    let mut cfg = config(ConnMode::Reactor);
    cfg.idle_timeout = Duration::from_millis(80);
    let server = Server::bind("127.0.0.1:0", Arc::new(EchoService), cfg).expect("bind");
    let mut conn = TcpStream::connect(server.local_addr()).expect("connect");
    conn.set_read_timeout(Some(Duration::from_secs(10))).expect("timeout");
    let mut sink = [0u8; 16];
    assert_eq!(conn.read(&mut sink).expect("idle read"), 0, "idle conn never closed");
    let stats = server.connections();
    assert!(stats.timed_out_total.load(Ordering::Relaxed) >= 1, "timeout not counted");
    server.shutdown();
}

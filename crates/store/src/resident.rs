//! Lazy residency over an open store.
//!
//! [`StoreSource`] implements `kamel`'s [`ModelSource`] on top of a
//! [`Store`]: queries route through a modelless pyramid *skeleton* (the
//! same §4 selection walk the heap repository runs), and the chosen
//! record is materialized on first touch — checksum verified, its
//! `ModelEntry` JSON deserialized, and any packed int8 weights installed
//! as a zero-copy view into the mapped file.
//!
//! Materialized models live in an LRU set bounded by a byte budget
//! (`--model-memory-budget`). Two classes never evict:
//!
//! * the global model, and
//! * every model above the pyramid's leaf level — the upper levels are
//!   few, cover wide areas (so nearly every query can fall back to
//!   them), and re-materializing them would dominate eviction churn.
//!
//! The budget therefore bounds the *unpinned* resident bytes: a
//! materialization that lands over budget evicts least-recently-used
//! unpinned models (never the one just requested) until it fits, or
//! until only pins remain.

use crate::format::{RecordView, Store, KIND_META};
use crate::StoreError;
use kamel::partition::{ModelEntry, ModelSelection, ModelSummary, Repository};
use kamel::{ModelHandle, ModelSource, ResidencyStats};
use kamel_geo::BBox;
use kamel_lm::TrainedModel;
use kamel_nn::ByteSource;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// LRU bookkeeping, model-free so the policy is testable in isolation:
/// per-record cost, recency tick, and pin flag.
#[derive(Debug, Default)]
struct Ledger {
    entries: HashMap<usize, LedgerSlot>,
    bytes: u64,
    tick: u64,
}

#[derive(Debug)]
struct LedgerSlot {
    cost: u64,
    tick: u64,
    pinned: bool,
}

impl Ledger {
    /// Bumps `idx`'s recency; true when it is resident.
    fn touch(&mut self, idx: usize) -> bool {
        self.tick += 1;
        let tick = self.tick;
        match self.entries.get_mut(&idx) {
            Some(slot) => {
                slot.tick = tick;
                true
            }
            None => false,
        }
    }

    fn insert(&mut self, idx: usize, cost: u64, pinned: bool) {
        self.tick += 1;
        let tick = self.tick;
        if self.entries.insert(idx, LedgerSlot { cost, tick, pinned }).is_none() {
            self.bytes += cost;
        }
    }

    /// Evicts least-recently-used unpinned entries (never `keep`) until
    /// resident bytes fit `budget` or no candidate remains. Returns the
    /// evicted indices.
    fn evict_over(&mut self, budget: u64, keep: usize) -> Vec<usize> {
        let mut victims = Vec::new();
        while self.bytes > budget {
            let victim = self
                .entries
                .iter()
                .filter(|(&idx, slot)| idx != keep && !slot.pinned)
                .min_by_key(|(_, slot)| slot.tick)
                .map(|(&idx, _)| idx);
            let Some(idx) = victim else { break };
            let slot = self.entries.remove(&idx).expect("victim just found");
            self.bytes -= slot.cost;
            victims.push(idx);
        }
        victims
    }
}

struct Resident {
    ledger: Ledger,
    models: HashMap<usize, Arc<TrainedModel>>,
}

/// A [`ModelSource`] serving lazily-materialized models out of a store.
pub struct StoreSource {
    store: Store,
    skeleton: Repository,
    summaries: Vec<ModelSummary>,
    /// Pyramid slot → record index, for the selection walk's membership
    /// oracle and record lookup.
    members: HashMap<ModelSelection, usize>,
    /// Record indices that never evict (global + upper pyramid levels).
    pinned: Vec<bool>,
    budget: u64,
    resident: Mutex<Resident>,
    evictions: AtomicU64,
}

impl StoreSource {
    /// Wires a validated store to the pyramid skeleton it was packed
    /// from. `summaries` is the packed systems' model inventory (served
    /// verbatim, so inspection endpoints need no materialization);
    /// `budget` caps resident unpinned bytes (`u64::MAX` = unbounded).
    pub fn new(
        store: Store,
        skeleton: Repository,
        summaries: Vec<ModelSummary>,
        budget: u64,
    ) -> Result<Self, StoreError> {
        let mut members = HashMap::new();
        let mut leaf_level = 0u8;
        for (idx, entry) in store.index().iter().enumerate() {
            if entry.key.kind == KIND_META {
                continue;
            }
            let sel = entry.key.to_selection().ok_or_else(|| {
                StoreError::Corrupt(format!(
                    "record {idx} has unknown kind {} — file written by a newer tool?",
                    entry.key.kind
                ))
            })?;
            if members.insert(sel, idx).is_some() {
                return Err(StoreError::Corrupt(format!(
                    "record {idx} duplicates pyramid slot {sel:?}"
                )));
            }
            if !matches!(sel, ModelSelection::Global) {
                leaf_level = leaf_level.max(entry.key.level);
            }
        }
        let pinned = store
            .index()
            .iter()
            .map(|e| {
                e.key.kind != KIND_META
                    && (e.key.to_selection() == Some(ModelSelection::Global)
                        || e.key.level < leaf_level)
            })
            .collect();
        Ok(StoreSource {
            store,
            skeleton,
            summaries,
            members,
            pinned,
            budget,
            resident: Mutex::new(Resident {
                ledger: Ledger::default(),
                models: HashMap::new(),
            }),
            evictions: AtomicU64::new(0),
        })
    }

    /// Number of models in the store (excluding the meta record).
    pub fn model_count(&self) -> usize {
        self.members.len()
    }

    /// Materializes every model once, in record order. This is the boot
    /// sweep: it verifies every record checksum before the system serves
    /// (a damaged cell fails the load, not a 3 a.m. request), and it
    /// exercises the eviction path deterministically whenever the budget
    /// is smaller than the store.
    pub fn warm_all(&self) -> Result<(), StoreError> {
        let mut ordered: Vec<(usize, ModelSelection)> =
            self.members.iter().map(|(&sel, &idx)| (idx, sel)).collect();
        ordered.sort_unstable_by_key(|&(idx, _)| idx);
        for (idx, sel) in ordered {
            self.materialize(sel, idx)?;
        }
        Ok(())
    }

    /// Current residency counters.
    pub fn stats(&self) -> ResidencyStats {
        let r = self.resident.lock();
        ResidencyStats {
            resident_models: r.ledger.entries.len(),
            pinned_models: r.ledger.entries.values().filter(|s| s.pinned).count(),
            total_models: self.members.len(),
            evictions_total: self.evictions.load(Ordering::Relaxed),
            bytes_resident: r.ledger.bytes,
            bytes_mapped: self.store.file_len(),
            // u64::MAX means "unbounded" internally; report the stats
            // convention of 0 so dashboards don't graph 16 EiB budgets.
            budget_bytes: if self.budget == u64::MAX { 0 } else { self.budget },
        }
    }

    fn materialize(
        &self,
        sel: ModelSelection,
        idx: usize,
    ) -> Result<Arc<TrainedModel>, StoreError> {
        {
            let mut r = self.resident.lock();
            if r.ledger.touch(idx) {
                return Ok(r.models[&idx].clone());
            }
        }
        // Decode outside the lock: checksum + JSON parse dominate, and
        // concurrent queries for *other* cells must not serialize on it.
        let view = self.store.record(idx)?;
        let model = Arc::new(self.decode(sel, &view)?);
        let cost = view.payload_len as u64;
        let mut r = self.resident.lock();
        if r.ledger.touch(idx) {
            // Another thread won the race; serve its copy.
            return Ok(r.models[&idx].clone());
        }
        r.ledger.insert(idx, cost, self.pinned[idx]);
        r.models.insert(idx, model.clone());
        for victim in r.ledger.evict_over(self.budget, idx) {
            r.models.remove(&victim);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        Ok(model)
    }

    fn decode(&self, sel: ModelSelection, view: &RecordView<'_>) -> Result<TrainedModel, StoreError> {
        let json = std::str::from_utf8(view.json).map_err(|e| {
            StoreError::Corrupt(format!("record for {sel:?} holds non-UTF-8 JSON: {e}"))
        })?;
        let entry: ModelEntry = serde_json::from_str(json).map_err(|e| {
            StoreError::Corrupt(format!("record for {sel:?} failed to decode: {e}"))
        })?;
        let mut model = entry.model;
        if view.aux_len > 0 {
            let source: Arc<dyn ByteSource> = self.store.byte_source();
            let quant =
                kamel_nn::QuantizedBertMlm::read_packed(source, view.aux_offset, view.aux_len)
                    .map_err(|e| {
                        StoreError::Corrupt(format!(
                            "packed int8 weights for {sel:?} are invalid: {e}"
                        ))
                    })?;
            model.install_quantization(quant).map_err(|e| {
                StoreError::Corrupt(format!(
                    "packed int8 weights for {sel:?} do not fit their model: {e}"
                ))
            })?;
        }
        Ok(model)
    }
}

impl ModelSource for StoreSource {
    fn find_model(&self, query: &BBox) -> Option<(ModelSelection, ModelHandle<'_>)> {
        let sel = self
            .skeleton
            .find_selection(query, |s| self.members.contains_key(&s))?;
        let idx = *self.members.get(&sel)?;
        match self.materialize(sel, idx) {
            Ok(model) => Some((sel, ModelHandle::Shared(model))),
            Err(e) => {
                // A record damaged *after* the boot sweep: log once per
                // occurrence and degrade (the query falls back to
                // gap-level lookups or linear interpolation) instead of
                // taking the process down.
                eprintln!("warning: model store: dropping {sel:?}: {e}");
                None
            }
        }
    }

    fn model_count(&self) -> usize {
        self.members.len()
    }

    fn summaries(&self) -> Vec<ModelSummary> {
        self.summaries.clone()
    }

    fn residency(&self) -> Option<ResidencyStats> {
        Some(self.stats())
    }
}

impl std::fmt::Debug for StoreSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StoreSource")
            .field("models", &self.members.len())
            .field("budget", &self.budget)
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ledger_evicts_in_lru_order() {
        let mut l = Ledger::default();
        l.insert(0, 100, false);
        l.insert(1, 100, false);
        l.insert(2, 100, false);
        assert!(l.touch(0), "0 resident");
        // Budget 200: one entry must go, and it is 1 (oldest untouched).
        assert_eq!(l.evict_over(200, 2), vec![1]);
        assert_eq!(l.bytes, 200);
        assert!(l.touch(0) && l.touch(2) && !l.touch(1));
    }

    #[test]
    fn ledger_never_evicts_pins_or_the_kept_entry() {
        let mut l = Ledger::default();
        l.insert(0, 100, true); // pinned
        l.insert(1, 100, false);
        l.insert(2, 100, false);
        // Budget 0: everything unpinned except `keep`=2 must go.
        assert_eq!(l.evict_over(0, 2), vec![1]);
        assert_eq!(l.bytes, 200, "pin + keep remain");
        assert!(l.touch(0) && l.touch(2));
    }

    #[test]
    fn ledger_eviction_stops_once_under_budget() {
        let mut l = Ledger::default();
        for i in 0..5 {
            l.insert(i, 50, false);
        }
        let victims = l.evict_over(120, 4);
        assert_eq!(victims.len(), 3, "250 -> 100 bytes needs three evictions");
        assert_eq!(l.bytes, 100);
        // Victims are the three least recently inserted, in order.
        assert_eq!(victims, vec![0, 1, 2]);
    }

    #[test]
    fn ledger_double_insert_does_not_double_count() {
        let mut l = Ledger::default();
        l.insert(7, 64, false);
        l.insert(7, 64, false);
        assert_eq!(l.bytes, 64);
    }
}

//! Grad-free batched inference engine for the BERT hot path.
//!
//! KAMEL's online path ("call BERT" per candidate per position during gap
//! imputation) used to run the *training* forward: every call allocated a
//! full backward cache (per-layer input clones, attention weights, LN
//! caches), materialized a `[seq_len × vocab]` logits matrix to read one
//! row, and threw all of it away. This module is the dedicated inference
//! engine:
//!
//! * **Zero backward caches** — the forward never clones layer inputs or
//!   keeps softmax/LN intermediates.
//! * **Scratch arena** — every buffer lives in a reusable [`InferScratch`];
//!   buffers are sized on first use and reused afterwards
//!   ([`crate::matrix::Matrix::reset_zeroed`] keeps the allocation), so
//!   steady-state inference performs no heap allocation on the calling
//!   thread. (Large products may still fan out across the process-wide
//!   thread budget; spawning those scoped workers is the one remaining
//!   source of allocation, and only when `thread_budget() > 1` picks the
//!   parallel kernel.)
//! * **Masked-row head** — the vocabulary projection runs only for the
//!   masked position(s): a `[1, hidden] × [hidden, vocab]` matvec per
//!   request ([`crate::matrix::Matrix::matmul_row_into`]) instead of a
//!   full-sequence matmul.
//! * **Batched entry point** — [`BertMlmModel::predict_batch_with`] fuses
//!   many `(sequence, masked position)` requests into one forward: the
//!   sequences are concatenated row-wise (no pad rows, no pad masks —
//!   every row is real work) so all linear layers run as single large
//!   matmuls through the PR-1 threaded kernels; attention, the only
//!   cross-row stage, runs per sequence block.
//!
//! **Equivalence guarantee.** Every arithmetic operation happens in the
//! same order as the training forward restricted to the inference path:
//! the matmuls run the very same kernels (whose parallel dispatch is
//! already bit-identical to sequential), LayerNorm/GELU/softmax reuse the
//! same per-element expression sequences, and the fused batch is
//! row-partitioned exactly like independent calls. Outputs are therefore
//! **bit-identical** to [`BertMlmModel::predict`] — asserted by unit tests
//! here and property tests in `tests/infer_equivalence.rs`.

use crate::bert::BertMlmModel;
use crate::layers::{gelu_forward_into, softmax_rows, softmax_slice};
use crate::matrix::Matrix;

/// Reusable buffers for the grad-free forward pass.
///
/// One scratch serves any model and any request shape: buffers are
/// reshaped per call with [`Matrix::reset_zeroed`], which only allocates
/// while a buffer is still growing toward the largest shape it has seen.
/// A scratch is cheap to create but not `Sync` — use one per thread (the
/// `kamel-lm` engine keeps one in a thread-local).
///
/// No state flows between calls: every buffer is fully overwritten (or
/// zero-reset) before it is read, so reusing a scratch across different
/// inputs yields the same bits as a fresh one (tested).
#[derive(Debug)]
pub struct InferScratch {
    /// Concatenated token ids of the current batch.
    pub(crate) ids: Vec<u32>,
    /// Per-sequence `(first_row, len)` spans into the concatenated rows.
    pub(crate) seqs: Vec<(usize, usize)>,
    /// Global row index of each request's masked position.
    pub(crate) mask_rows: Vec<usize>,
    /// Embeddings / current activations `[rows, hidden]`.
    pub(crate) x: Matrix,
    /// Next-layer activations (swapped with `x` after each block).
    pub(crate) x_next: Matrix,
    /// Q/K/V projections `[rows, hidden]`.
    pub(crate) q: Matrix,
    pub(crate) k: Matrix,
    pub(crate) v: Matrix,
    /// Per-(sequence, head) column slices `[len, head_dim]`.
    pub(crate) qh: Matrix,
    pub(crate) kh: Matrix,
    pub(crate) vh: Matrix,
    /// Attention scores `[len, len]`.
    pub(crate) scores: Matrix,
    /// One head's output `[len, head_dim]`.
    pub(crate) head_out: Matrix,
    /// Concatenated head outputs `[rows, hidden]`.
    pub(crate) concat: Matrix,
    /// Attention block output `[rows, hidden]`.
    pub(crate) attn_y: Matrix,
    /// Residual sums `[rows, hidden]`.
    pub(crate) res: Matrix,
    /// LN1 output (FFN input) `[rows, hidden]`.
    pub(crate) h: Matrix,
    /// FF1 pre-activation `[rows, ff]`.
    pub(crate) ff_pre: Matrix,
    /// GELU output `[rows, ff]`.
    pub(crate) ff_act: Matrix,
    /// FF2 output `[rows, hidden]`.
    pub(crate) ff_out: Matrix,
    /// Masked-row probabilities `[n_requests, vocab]`.
    pub(crate) probs: Matrix,
    /// Quantized activation row (int8 serving path only).
    pub(crate) xq: Vec<i8>,
}

impl InferScratch {
    /// An empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        let m = || Matrix::zeros(0, 0);
        Self {
            ids: Vec::new(),
            seqs: Vec::new(),
            mask_rows: Vec::new(),
            x: m(),
            x_next: m(),
            q: m(),
            k: m(),
            v: m(),
            qh: m(),
            kh: m(),
            vh: m(),
            scores: m(),
            head_out: m(),
            concat: m(),
            attn_y: m(),
            res: m(),
            h: m(),
            ff_pre: m(),
            ff_act: m(),
            ff_out: m(),
            probs: m(),
            xq: Vec::new(),
        }
    }
}

impl Default for InferScratch {
    fn default() -> Self {
        Self::new()
    }
}

/// Writes `out = a + b` element-wise into a reusable buffer (the residual
/// sums). Bit-identical to `a.clone(); a.add_assign(b)`.
pub(crate) fn add_into(a: &Matrix, b: &Matrix, out: &mut Matrix) {
    debug_assert_eq!((a.rows(), a.cols()), (b.rows(), b.cols()));
    out.reset_zeroed(a.rows(), a.cols());
    crate::simd::add(a.data(), b.data(), out.data_mut());
}

impl BertMlmModel {
    /// Grad-free single prediction: the probability distribution over the
    /// vocabulary for position `pos`, bit-identical to
    /// [`BertMlmModel::predict`] but cache-free and allocation-free once
    /// `scratch` is warm. The returned slice borrows the scratch.
    pub fn predict_with<'s>(
        &self,
        scratch: &'s mut InferScratch,
        ids: &[u32],
        pos: usize,
    ) -> &'s [f32] {
        assert!(pos < ids.len(), "position {pos} out of range");
        self.predict_batch_with(scratch, &[(ids, pos)]).row(0)
    }

    /// Grad-free batched prediction: one fused forward for many
    /// `(sequence, masked position)` requests. Returns a
    /// `[n_requests, vocab]` matrix (borrowing the scratch) whose row `i`
    /// is bit-identical to `predict(reqs[i].0, reqs[i].1)`.
    ///
    /// Sequences are concatenated, not padded: linear layers run as one
    /// fused matmul over all real rows, attention runs per sequence block.
    pub fn predict_batch_with<'s>(
        &self,
        scratch: &'s mut InferScratch,
        reqs: &[(&[u32], usize)],
    ) -> &'s Matrix {
        let hidden = self.config.hidden;
        let vocab = self.config.vocab_size;
        scratch.ids.clear();
        scratch.seqs.clear();
        scratch.mask_rows.clear();
        for (ids, pos) in reqs {
            assert!(
                ids.len() <= self.config.max_seq_len,
                "sequence length {} exceeds max {}",
                ids.len(),
                self.config.max_seq_len
            );
            assert!(!ids.is_empty(), "empty sequence");
            assert!(*pos < ids.len(), "position {pos} out of range");
            let start = scratch.ids.len();
            scratch.ids.extend_from_slice(ids);
            scratch.seqs.push((start, ids.len()));
            scratch.mask_rows.push(start + pos);
        }
        let rows = scratch.ids.len();
        if rows == 0 {
            scratch.probs.reset_zeroed(0, vocab);
            return &scratch.probs;
        }

        // Embeddings: token row + position row, then LayerNorm. Same
        // element order as `tok_emb.forward + add_assign(pos_emb.forward)`.
        scratch.x_next.reset_zeroed(rows, hidden);
        let tok = &self.tok_emb.table.w;
        let pos_table = &self.pos_emb.table.w;
        for &(start, len) in &scratch.seqs {
            for i in 0..len {
                let id = scratch.ids[start + i] as usize;
                debug_assert!(id < tok.rows(), "token id {id} out of vocab {}", tok.rows());
                let row = scratch.x_next.row_mut(start + i);
                row.copy_from_slice(tok.row(id));
                crate::simd::add_assign(row, pos_table.row(i));
            }
        }
        self.emb_ln.forward_into(&scratch.x_next, &mut scratch.x);

        for layer in &self.layers {
            // Attention. Q/K/V projections fuse across all sequences (the
            // kernels are row-independent); scores/softmax/AV run per
            // sequence block on the same kernels the per-sequence forward
            // uses, so each block is bit-identical to a lone call.
            layer.attn.wq.forward_into(&scratch.x, &mut scratch.q);
            layer.attn.wk.forward_into(&scratch.x, &mut scratch.k);
            layer.attn.wv.forward_into(&scratch.x, &mut scratch.v);
            let heads = layer.attn.heads();
            let hd = layer.attn.head_dim();
            let scale = 1.0 / (hd as f32).sqrt();
            scratch.concat.reset_zeroed(rows, hidden);
            for &(start, len) in &scratch.seqs {
                for head in 0..heads {
                    let cols = head * hd..(head + 1) * hd;
                    scratch.qh.reset_zeroed(len, hd);
                    scratch.kh.reset_zeroed(len, hd);
                    scratch.vh.reset_zeroed(len, hd);
                    for r in 0..len {
                        scratch.qh.row_mut(r).copy_from_slice(&scratch.q.row(start + r)[cols.clone()]);
                        scratch.kh.row_mut(r).copy_from_slice(&scratch.k.row(start + r)[cols.clone()]);
                        scratch.vh.row_mut(r).copy_from_slice(&scratch.v.row(start + r)[cols.clone()]);
                    }
                    scratch.qh.matmul_nt_into(&scratch.kh, &mut scratch.scores);
                    scratch.scores.scale(scale);
                    softmax_rows(&mut scratch.scores);
                    scratch.scores.matmul_into(&scratch.vh, &mut scratch.head_out);
                    for r in 0..len {
                        scratch.concat.row_mut(start + r)[cols.clone()]
                            .copy_from_slice(scratch.head_out.row(r));
                    }
                }
            }
            layer.attn.wo.forward_into(&scratch.concat, &mut scratch.attn_y);
            // First residual + LN1.
            add_into(&scratch.x, &scratch.attn_y, &mut scratch.res);
            layer.ln1.forward_into(&scratch.res, &mut scratch.h);
            // Feed-forward.
            layer.ff1.forward_into(&scratch.h, &mut scratch.ff_pre);
            gelu_forward_into(&scratch.ff_pre, &mut scratch.ff_act);
            layer.ff2.forward_into(&scratch.ff_act, &mut scratch.ff_out);
            // Second residual + LN2 straight into the next activations.
            add_into(&scratch.h, &scratch.ff_out, &mut scratch.res);
            layer.ln2.forward_into(&scratch.res, &mut scratch.x_next);
            std::mem::swap(&mut scratch.x, &mut scratch.x_next);
        }

        // Masked-row head: one hidden × vocab matvec + bias + softmax per
        // request — never the full `[rows, vocab]` logits.
        scratch.probs.reset_zeroed(reqs.len(), vocab);
        let bias = self.out.bias.w.row(0);
        for (j, &row) in scratch.mask_rows.iter().enumerate() {
            let out_row = scratch.probs.row_mut(j);
            scratch.x.matmul_row_into(row, &self.out.weight.w, out_row);
            for (o, &b) in out_row.iter_mut().zip(bias) {
                *o += b;
            }
            softmax_slice(out_row);
        }
        &scratch.probs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bert::BertConfig;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn model(vocab: usize, seed: u64) -> BertMlmModel {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        BertMlmModel::new(BertConfig::tiny(vocab), &mut rng)
    }

    #[test]
    fn predict_with_is_bit_identical_to_predict() {
        let m = model(17, 41);
        let mut scratch = InferScratch::new();
        for (ids, pos) in [
            (vec![1u32, 2, 3, 4], 2usize),
            (vec![5], 0),
            (vec![9, 8, 7, 6, 5, 4, 3, 2, 1], 7),
        ] {
            let old = m.predict(&ids, pos);
            let new = m.predict_with(&mut scratch, &ids, pos);
            assert_eq!(old.as_slice(), new, "diverged on {ids:?}@{pos}");
        }
    }

    #[test]
    fn batch_matches_single_calls() {
        let m = model(23, 42);
        let reqs_owned: Vec<(Vec<u32>, usize)> = vec![
            (vec![1, 2, 3], 1),
            (vec![4, 5, 6, 7, 8], 4),
            (vec![9], 0),
            (vec![10, 11], 0),
        ];
        let reqs: Vec<(&[u32], usize)> = reqs_owned
            .iter()
            .map(|(ids, pos)| (ids.as_slice(), *pos))
            .collect();
        let mut scratch = InferScratch::new();
        let batch = m.predict_batch_with(&mut scratch, &reqs).clone();
        assert_eq!(batch.rows(), reqs.len());
        let mut single_scratch = InferScratch::new();
        for (i, (ids, pos)) in reqs_owned.iter().enumerate() {
            let single = m.predict_with(&mut single_scratch, ids, *pos);
            assert_eq!(batch.row(i), single, "request {i} diverged");
        }
    }

    #[test]
    fn scratch_reuse_leaks_no_state() {
        let m = model(19, 43);
        let a: (Vec<u32>, usize) = (vec![1, 2, 3, 4, 5], 2);
        let b: (Vec<u32>, usize) = (vec![6, 7], 1);
        // Same input twice through one scratch → identical output.
        let mut reused = InferScratch::new();
        let first = m.predict_with(&mut reused, &a.0, a.1).to_vec();
        let again = m.predict_with(&mut reused, &a.0, a.1).to_vec();
        assert_eq!(first, again);
        // Interleave a different (larger-then-smaller) input, then repeat:
        // still identical to a fresh scratch.
        let _ = m.predict_with(&mut reused, &b.0, b.1);
        let after_interleave = m.predict_with(&mut reused, &a.0, a.1).to_vec();
        let mut fresh = InferScratch::new();
        let from_fresh = m.predict_with(&mut fresh, &a.0, a.1).to_vec();
        assert_eq!(after_interleave, from_fresh);
    }

    #[test]
    fn empty_batch_is_empty() {
        let m = model(8, 44);
        let mut scratch = InferScratch::new();
        let out = m.predict_batch_with(&mut scratch, &[]);
        assert_eq!(out.rows(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_position() {
        let m = model(8, 45);
        let mut scratch = InferScratch::new();
        let _ = m.predict_with(&mut scratch, &[1, 2, 3], 3);
    }

    #[test]
    #[should_panic(expected = "exceeds max")]
    fn rejects_overlong_sequence() {
        let m = model(8, 46);
        let mut scratch = InferScratch::new();
        let ids = vec![1u32; 65];
        let _ = m.predict_with(&mut scratch, &ids, 0);
    }
}

//! The epoll/kqueue-driven serving core: one reactor thread multiplexes
//! every connection through non-blocking state machines, so concurrent
//! keep-alive connections are bounded by file descriptors — not by
//! threads.
//!
//! ```text
//!              ┌────────────────────────── reactor thread ─────────────┐
//!  accept ──▶  │ non-blocking accept → Conn slab (generation tokens)   │
//!              │                                                       │
//!  readable ─▶ │ Reading ──(RequestParser)──▶ Dispatched ──────────────┼──▶ dispatch
//!              │    ▲                                                  │    channel
//!  writable ─▶ │ KeepAlive ◀── Writing ◀──(serialize + close rule)─────┼◀── ResponseSink
//!              │    │                                                  │    (worker pool)
//!  timer ────▶ │  idle / slow-loris close (hashed timer wheel)         │
//!              └───────────────────────────────────────────────────────┘
//! ```
//!
//! The reactor thread never blocks on a socket and never runs service
//! code: a parsed request is handed to [`RequestHandler`] (which must
//! enqueue, not compute) together with a [`ResponseSink`]; a worker
//! thread finishes the request and sends the [`Response`] back through
//! the sink, which wakes the reactor to serialize and write it.
//!
//! Response bytes are identical to the blocking thread-per-connection
//! path by construction: parsing delegates to the canonical
//! [`crate::http::read_request`] (see [`RequestParser`]), serialization
//! uses the same [`Response::write_to`], and the close rule is the same
//! `wants_close || status == 503`.
//!
//! Timeouts run on the injectable [`Clock`] through a hashed timer
//! wheel: one lazy entry per connection, re-armed on expiry if the
//! connection saw activity since — O(1) per I/O event, no per-activity
//! wheel updates. Graceful drain mirrors the blocking path: the
//! listener stops accepting, idle connections close immediately,
//! in-flight requests finish (deadline-bounded by PR 8's budget
//! machinery) and their connections close after the response.

use crate::clock::Clock;
use crate::http::{Parsed, Request, RequestParser, Response};
use crate::poller::{Interest, PollEvent, Poller, Waker, WAKE_TOKEN};
use crate::shutdown::ShutdownFlag;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// The token the listener is registered under (`WAKE_TOKEN` - 1 is
/// likewise never a connection token: connection generations are
/// truncated to 31 bits, capping them below `1 << 63`).
const LISTEN_TOKEN: u64 = u64::MAX - 1;

/// Reactor tuning knobs.
#[derive(Debug, Clone)]
pub struct ReactorConfig {
    /// Hard cap on concurrently open connections; an accept beyond it is
    /// answered `503` and closed immediately.
    pub max_connections: usize,
    /// A connection with no read/write progress for this long is closed
    /// (idle keep-alive and slow-loris alike). In-flight dispatched
    /// requests are exempt — their lifetime is bounded by the request
    /// deadline, not the socket timer.
    pub idle_timeout: Duration,
    /// Upper bound on one poll cycle — how quickly the loop notices a
    /// tripped shutdown flag or an injected-clock jump with no I/O.
    pub loop_tick: Duration,
}

impl Default for ReactorConfig {
    fn default() -> Self {
        Self {
            max_connections: 10_000,
            idle_timeout: Duration::from_secs(30),
            loop_tick: Duration::from_millis(25),
        }
    }
}

/// Connection-layer counters, exported on `/metrics` as
/// `kamel_connections_*` and on `GET /v1/info` as `connections`. Shared
/// between the reactor (writer) and the metrics endpoints (readers);
/// the blocking fallback path updates the same counters.
#[derive(Debug, Default)]
pub struct ConnStats {
    /// Currently open connections (gauge).
    pub active: AtomicU64,
    /// Connections ever accepted and admitted.
    pub accepted_total: AtomicU64,
    /// Connections closed by the idle/slow-loris timer.
    pub timed_out_total: AtomicU64,
    /// Connections refused at accept time (`max_connections`).
    pub rejected_total: AtomicU64,
}

impl ConnStats {
    /// The Prometheus-format block for `/metrics` (newline-terminated).
    pub fn render(&self) -> String {
        let active = self.active.load(Ordering::Relaxed);
        let accepted = self.accepted_total.load(Ordering::Relaxed);
        let timed_out = self.timed_out_total.load(Ordering::Relaxed);
        let rejected = self.rejected_total.load(Ordering::Relaxed);
        format!(
            "# TYPE kamel_connections_active gauge\n\
             kamel_connections_active {active}\n\
             # TYPE kamel_connections_accepted_total counter\n\
             kamel_connections_accepted_total {accepted}\n\
             # TYPE kamel_connections_timed_out_total counter\n\
             kamel_connections_timed_out_total {timed_out}\n\
             # TYPE kamel_connections_rejected_total counter\n\
             kamel_connections_rejected_total {rejected}\n"
        )
    }
}

/// Where a worker sends the finished [`Response`] for one dispatched
/// request. One-shot: consumed by [`ResponseSink::send`]. Dropping it
/// without sending (a worker panic, a failed channel hand-off) enqueues
/// an abandonment completion: the reactor answers `500` and closes the
/// connection, so a `Dispatched` connection can never leak or hang the
/// graceful drain.
pub struct ResponseSink {
    token: u64,
    completions: Arc<CompletionQueue>,
    sent: bool,
}

impl ResponseSink {
    /// Delivers the response; wakes the reactor to write it out.
    pub fn send(mut self, response: Response) {
        self.sent = true;
        self.completions
            .queue
            .lock()
            .unwrap()
            .push((self.token, Completion::Respond(response)));
        self.completions.waker.wake();
    }
}

impl Drop for ResponseSink {
    fn drop(&mut self) {
        if self.sent {
            return;
        }
        self.completions
            .queue
            .lock()
            .unwrap()
            .push((self.token, Completion::Abandoned));
        self.completions.waker.wake();
    }
}

/// What came back for a dispatched request.
enum Completion {
    /// The worker produced a response.
    Respond(Response),
    /// The sink was dropped without a response (worker panic or lost
    /// hand-off); the connection gets a `500` and closes.
    Abandoned,
}

/// The handler invoked on the reactor thread for every parsed request.
/// It MUST NOT block — hand the work to a channel/pool and return; a
/// blocked handler stalls every connection.
pub type RequestHandler = Box<dyn Fn(Request, Instant, ResponseSink) + Send>;

struct CompletionQueue {
    queue: Mutex<Vec<(u64, Completion)>>,
    waker: Waker,
}

/// Per-connection state machine position.
enum State {
    /// Accumulating request bytes through the incremental parser.
    Reading,
    /// A request is with the worker pool; reads are paused (kernel
    /// buffers backpressure the client) until the response is written.
    Dispatched,
    /// Draining the serialized response to the socket.
    Writing {
        buf: Vec<u8>,
        off: usize,
        close_after: bool,
    },
}

struct Conn {
    stream: TcpStream,
    gen: u32,
    parser: RequestParser,
    state: State,
    /// Close after the in-flight response (client `Connection: close`).
    wants_close: bool,
    /// No-progress deadline for `Reading`/`Writing` states.
    idle_deadline: Instant,
}

enum StepAction {
    /// Parked on readiness (or a completion); nothing more to do now.
    Wait,
    /// A state transition happened; run another step.
    Continue,
    /// Close the connection.
    Close { timed_out: bool },
    /// A complete request came off the wire; hand it to the handler.
    Dispatch(Request),
}

/// A hashed timer wheel over the injectable clock. One entry per armed
/// connection; entries fire at their slot and the owner decides — close
/// or re-arm — so per-activity updates cost nothing (the connection just
/// moves its `idle_deadline` forward and the stale wheel entry re-arms
/// itself when it fires).
struct TimerWheel {
    slots: Vec<Vec<(u64, u64)>>, // (expiry_tick, token)
    tick: Duration,
    base: Instant,
    cursor: u64,
}

impl TimerWheel {
    const SLOTS: usize = 64;

    fn new(base: Instant, idle_timeout: Duration) -> Self {
        // Granularity scales with the timeout: fine enough that expiry
        // lands within ~1/16 of the configured window, coarse enough
        // that sweeps stay rare.
        let tick = (idle_timeout / 16).clamp(Duration::from_millis(1), Duration::from_secs(1));
        TimerWheel {
            slots: (0..Self::SLOTS).map(|_| Vec::new()).collect(),
            tick,
            base,
            cursor: 0,
        }
    }

    fn tick_of(&self, at: Instant) -> u64 {
        let elapsed = at.saturating_duration_since(self.base);
        // Ceiling: a deadline mid-tick fires at the following tick.
        (elapsed.as_micros() as u64).div_ceil(self.tick.as_micros().max(1) as u64)
    }

    fn insert(&mut self, token: u64, deadline: Instant) {
        let tick = self.tick_of(deadline).max(self.cursor + 1);
        self.slots[(tick % Self::SLOTS as u64) as usize].push((tick, token));
    }

    /// Advances to `now`, calling `expire` for every due entry. The
    /// callback returns `Some(deadline)` to re-arm the token, `None` to
    /// forget it.
    fn advance(&mut self, now: Instant, mut expire: impl FnMut(u64) -> Option<Instant>) {
        let now_tick = self.tick_of(now);
        if now_tick <= self.cursor {
            return;
        }
        // A jump beyond one full revolution (e.g. a ManualClock leap)
        // still only needs each slot visited once.
        let span = (now_tick - self.cursor).min(Self::SLOTS as u64);
        let mut due = Vec::new();
        for t in (self.cursor + 1)..=(self.cursor + span) {
            let slot = &mut self.slots[(t % Self::SLOTS as u64) as usize];
            let mut i = 0;
            while i < slot.len() {
                if slot[i].0 <= now_tick {
                    due.push(slot.swap_remove(i).1);
                } else {
                    i += 1;
                }
            }
        }
        self.cursor = now_tick;
        for token in due {
            if let Some(deadline) = expire(token) {
                self.insert(token, deadline);
            }
        }
    }
}

struct Slab {
    conns: Vec<Option<Conn>>,
    free: Vec<usize>,
    next_gen: u32,
}

impl Slab {
    fn new() -> Self {
        Slab {
            conns: Vec::new(),
            free: Vec::new(),
            next_gen: 0,
        }
    }

    /// Inserts a connection, returning its (index, token). Tokens carry
    /// a 31-bit generation so a completion addressed to a closed-and-
    /// reused slot is recognized as stale and dropped.
    fn insert(&mut self, mut conn: Conn) -> (usize, u64) {
        let gen = self.next_gen & 0x7fff_ffff;
        self.next_gen = self.next_gen.wrapping_add(1);
        conn.gen = gen;
        let idx = match self.free.pop() {
            Some(idx) => {
                self.conns[idx] = Some(conn);
                idx
            }
            None => {
                self.conns.push(Some(conn));
                self.conns.len() - 1
            }
        };
        (idx, token_for(idx, gen))
    }

    fn get_mut(&mut self, token: u64) -> Option<(usize, &mut Conn)> {
        let idx = (token & 0xffff_ffff) as usize;
        let gen = (token >> 32) as u32;
        let conn = self.conns.get_mut(idx)?.as_mut()?;
        (conn.gen == gen).then_some((idx, conn))
    }

    fn remove(&mut self, idx: usize) -> Option<Conn> {
        let conn = self.conns.get_mut(idx)?.take();
        if conn.is_some() {
            self.free.push(idx);
        }
        conn
    }
}

fn token_for(idx: usize, gen: u32) -> u64 {
    ((gen as u64) << 32) | idx as u64
}

/// Runs the reactor until the shutdown flag trips and every connection
/// has drained. Blocks the calling thread — spawn it.
///
/// `on_request` receives each parsed request together with the instant
/// its last byte was parsed (the deadline base: time spent in the
/// dispatch queue counts against the request budget) and the sink for
/// its response.
pub fn run_reactor(
    listener: TcpListener,
    config: ReactorConfig,
    clock: Arc<dyn Clock>,
    flag: ShutdownFlag,
    stats: Arc<ConnStats>,
    on_request: RequestHandler,
) -> io::Result<()> {
    listener.set_nonblocking(true)?;
    let mut poller = Poller::new()?;
    #[cfg(unix)]
    use std::os::unix::io::AsRawFd;
    #[cfg(unix)]
    poller.register(listener.as_raw_fd(), LISTEN_TOKEN, Interest::READ)?;
    let completions = Arc::new(CompletionQueue {
        queue: Mutex::new(Vec::new()),
        waker: poller.waker(),
    });
    let idle_timeout = config.idle_timeout.max(Duration::from_millis(1));
    let mut wheel = TimerWheel::new(clock.now(), idle_timeout);
    let mut slab = Slab::new();
    let mut active: usize = 0;
    let mut draining = false;
    let mut events: Vec<PollEvent> = Vec::new();
    let mut scratch = vec![0u8; 64 * 1024];
    let loop_tick = config.loop_tick.max(Duration::from_millis(1));

    loop {
        events.clear();
        poller.wait(&mut events, Some(loop_tick))?;

        // Finished responses first: they free worker capacity and turn
        // Dispatched connections into writes this same cycle.
        let done: Vec<(u64, Completion)> =
            std::mem::take(&mut *completions.queue.lock().unwrap());
        for (token, completion) in done {
            let now = clock.now();
            let Some((idx, conn)) = slab.get_mut(token) else {
                continue; // connection closed while the worker computed
            };
            if !matches!(conn.state, State::Dispatched) {
                continue; // stale or duplicate completion
            }
            let (response, abandoned) = match completion {
                Completion::Respond(response) => (response, false),
                Completion::Abandoned => (
                    Response::text(500, "internal error: request abandoned\n"),
                    true,
                ),
            };
            // The blocking path's close rule, verbatim: client asked, or
            // a shed/draining 503 forces a re-establish after backoff.
            // An abandoned request always closes: the worker's state for
            // this connection is unknown.
            let close = abandoned || conn.wants_close || response.status == 503;
            let mut buf = Vec::with_capacity(response.body.len() + 256);
            response
                .write_to(&mut buf, close)
                .expect("serializing to a Vec cannot fail");
            conn.state = State::Writing {
                buf,
                off: 0,
                // Draining mirrors the blocking handler: it notices the
                // tripped flag after the in-flight response and closes
                // even a keep-alive connection.
                close_after: close || flag.is_tripped(),
            };
            conn.idle_deadline = now + idle_timeout;
            progress(
                idx, &mut slab, &mut active, &clock, idle_timeout, &mut scratch, &completions,
                &on_request, &stats,
            );
        }

        for ev in &events {
            match ev.token {
                WAKE_TOKEN => {} // completions are drained every cycle
                LISTEN_TOKEN => {
                    let fresh = accept_all(
                        &listener, &config, &mut slab, &mut active, &poller, &clock,
                        idle_timeout, &mut wheel, &stats, draining,
                    );
                    // Bytes may have arrived before registration; the
                    // registration edge covers them, but progressing now
                    // saves a cycle.
                    for idx in fresh {
                        progress(
                            idx, &mut slab, &mut active, &clock, idle_timeout, &mut scratch,
                            &completions, &on_request, &stats,
                        );
                    }
                }
                token => {
                    let Some((idx, conn)) = slab.get_mut(token) else {
                        continue;
                    };
                    if ev.readable || ev.closed {
                        conn.idle_deadline = clock.now() + idle_timeout;
                    }
                    progress(
                        idx, &mut slab, &mut active, &clock, idle_timeout, &mut scratch,
                        &completions, &on_request, &stats,
                    );
                }
            }
        }

        // Idle / slow-loris sweep.
        let now = clock.now();
        let tick = wheel.tick;
        let mut expired: Vec<usize> = Vec::new();
        wheel.advance(now, |token| {
            let (idx, conn) = slab.get_mut(token)?;
            match conn.state {
                State::Reading | State::Writing { .. } if now >= conn.idle_deadline => {
                    expired.push(idx);
                    None
                }
                // Dispatched requests are deadline-bounded elsewhere;
                // check again a full window later.
                State::Dispatched => Some(now + idle_timeout),
                _ => Some(conn.idle_deadline.max(now + tick)),
            }
        });
        for idx in expired {
            stats.timed_out_total.fetch_add(1, Ordering::Relaxed);
            close_conn(idx, &mut slab, &mut active, &stats);
        }

        // Graceful drain: stop accepting, shed idle connections, let
        // in-flight requests finish, exit once the slab is empty.
        if flag.is_tripped() {
            if !draining {
                draining = true;
                #[cfg(unix)]
                let _ = poller.deregister(listener.as_raw_fd());
                let reading: Vec<usize> = slab
                    .conns
                    .iter()
                    .enumerate()
                    .filter_map(|(idx, c)| {
                        matches!(c.as_ref()?.state, State::Reading).then_some(idx)
                    })
                    .collect();
                for idx in reading {
                    close_conn(idx, &mut slab, &mut active, &stats);
                }
            }
            if active == 0 {
                return Ok(());
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn accept_all(
    listener: &TcpListener,
    config: &ReactorConfig,
    slab: &mut Slab,
    active: &mut usize,
    poller: &Poller,
    clock: &Arc<dyn Clock>,
    idle_timeout: Duration,
    wheel: &mut TimerWheel,
    stats: &ConnStats,
    draining: bool,
) -> Vec<usize> {
    let mut fresh = Vec::new();
    loop {
        let (stream, _peer) = match listener.accept() {
            Ok(pair) => pair,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return fresh,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return fresh,
        };
        if draining {
            continue; // late race: drop without counting
        }
        if *active >= config.max_connections {
            stats.rejected_total.fetch_add(1, Ordering::Relaxed);
            // Best-effort 503 so the client backs off instead of seeing
            // a bare RST; a full socket buffer just drops the hint.
            let mut wire = Vec::with_capacity(256);
            let _ = Response::text(503, "overloaded: connection limit reached\n")
                .with_header("retry-after", "1")
                .write_to(&mut wire, true);
            // The fresh socket is still blocking; flip it first so this
            // best-effort hint can never stall the reactor thread (a
            // partial or failed write just degrades to the bare close).
            let mut stream = stream;
            if stream.set_nonblocking(true).is_ok() {
                let _ = stream.write(&wire);
            }
            continue;
        }
        if stream.set_nonblocking(true).is_err() || stream.set_nodelay(true).is_err() {
            continue;
        }
        let now = clock.now();
        let conn = Conn {
            stream,
            gen: 0,
            parser: RequestParser::new(),
            state: State::Reading,
            wants_close: false,
            idle_deadline: now + idle_timeout,
        };
        let (idx, token) = slab.insert(conn);
        #[cfg(unix)]
        {
            use std::os::unix::io::AsRawFd;
            let fd = slab.conns[idx].as_ref().unwrap().stream.as_raw_fd();
            if poller.register(fd, token, Interest::BOTH).is_err() {
                slab.remove(idx);
                continue;
            }
        }
        #[cfg(not(unix))]
        let _ = (poller, token);
        *active += 1;
        stats.accepted_total.fetch_add(1, Ordering::Relaxed);
        stats.active.fetch_add(1, Ordering::Relaxed);
        wheel.insert(token, now + idle_timeout);
        fresh.push(idx);
    }
}

#[allow(clippy::too_many_arguments)]
fn progress(
    idx: usize,
    slab: &mut Slab,
    active: &mut usize,
    clock: &Arc<dyn Clock>,
    idle_timeout: Duration,
    scratch: &mut [u8],
    completions: &Arc<CompletionQueue>,
    on_request: &RequestHandler,
    stats: &ConnStats,
) {
    loop {
        let now = clock.now();
        let action = {
            let Some(conn) = slab.conns.get_mut(idx).and_then(Option::as_mut) else {
                return;
            };
            step(conn, now, idle_timeout, scratch)
        };
        match action {
            StepAction::Wait => return,
            StepAction::Continue => continue,
            StepAction::Close { timed_out } => {
                if timed_out {
                    stats.timed_out_total.fetch_add(1, Ordering::Relaxed);
                }
                close_conn(idx, slab, active, stats);
                return;
            }
            StepAction::Dispatch(request) => {
                let gen = slab.conns[idx].as_ref().unwrap().gen;
                let sink = ResponseSink {
                    token: token_for(idx, gen),
                    completions: Arc::clone(completions),
                    sent: false,
                };
                on_request(request, now, sink);
                return; // parked until the completion arrives
            }
        }
    }
}

/// One unit of connection work. Runs on buffered + readable bytes and
/// the write buffer; never blocks (all sockets are non-blocking).
fn step(conn: &mut Conn, now: Instant, idle_timeout: Duration, scratch: &mut [u8]) -> StepAction {
    match &mut conn.state {
        State::Dispatched => StepAction::Wait,
        State::Reading => {
            loop {
                // Parse before reading: pipelined leftovers from the
                // previous request must produce the next one without any
                // new bytes (an edge may never come).
                match conn.parser.poll() {
                    Parsed::Request(request) => {
                        conn.wants_close = request.wants_close();
                        conn.state = State::Dispatched;
                        return StepAction::Dispatch(request);
                    }
                    Parsed::Bad(status, msg) => {
                        // Same wire behavior as the blocking handler:
                        // answer the error, then close.
                        let mut buf = Vec::with_capacity(256);
                        Response::text(status, msg)
                            .write_to(&mut buf, true)
                            .expect("serializing to a Vec cannot fail");
                        conn.state = State::Writing {
                            buf,
                            off: 0,
                            close_after: true,
                        };
                        return StepAction::Continue;
                    }
                    Parsed::Incomplete => {}
                }
                match conn.stream.read(scratch) {
                    Ok(0) => {
                        // EOF. A fully-received request was dispatched by
                        // the parse above, so anything left is partial.
                        return StepAction::Close { timed_out: false };
                    }
                    Ok(n) => {
                        conn.parser.feed(&scratch[..n]);
                        conn.idle_deadline = now + idle_timeout;
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        return StepAction::Wait;
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => return StepAction::Close { timed_out: false },
                }
            }
        }
        State::Writing {
            buf,
            off,
            close_after,
        } => {
            while *off < buf.len() {
                match conn.stream.write(&buf[*off..]) {
                    Ok(0) => return StepAction::Close { timed_out: false },
                    Ok(n) => {
                        *off += n;
                        conn.idle_deadline = now + idle_timeout;
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        return StepAction::Wait; // EPOLLOUT re-arms us
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => return StepAction::Close { timed_out: false },
                }
            }
            if *close_after {
                StepAction::Close { timed_out: false }
            } else {
                conn.state = State::Reading;
                conn.idle_deadline = now + idle_timeout;
                StepAction::Continue // pipelined bytes may be waiting
            }
        }
    }
}

fn close_conn(idx: usize, slab: &mut Slab, active: &mut usize, stats: &ConnStats) {
    if slab.remove(idx).is_some() {
        // Dropping the TcpStream closes the fd, which also removes it
        // from the epoll/kqueue interest set.
        *active = active.saturating_sub(1);
        stats.active.fetch_sub(1, Ordering::Relaxed);
    }
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;
    use crate::clock::{ManualClock, SystemClock};
    use std::io::{BufRead, BufReader};
    use std::net::TcpStream;

    /// Boots a reactor whose handler uppercases POST bodies on a worker
    /// thread (echoing the non-blocking dispatch/completion round trip)
    /// and answers GETs with a fixed body.
    fn boot(
        config: ReactorConfig,
        clock: Arc<dyn Clock>,
    ) -> (
        std::net::SocketAddr,
        ShutdownFlag,
        Arc<ConnStats>,
        std::thread::JoinHandle<()>,
    ) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let flag = ShutdownFlag::new();
        let stats = Arc::new(ConnStats::default());
        let (tx, rx) = std::sync::mpsc::channel::<(Request, ResponseSink)>();
        std::thread::spawn(move || {
            while let Ok((request, sink)) = rx.recv() {
                let response = match request.method.as_str() {
                    "POST" => Response::json(request.body.to_ascii_uppercase()),
                    _ => Response::text(200, "ok\n"),
                };
                sink.send(response);
            }
        });
        let handler: RequestHandler = Box::new(move |request, _received, sink| {
            tx.send((request, sink)).unwrap();
        });
        let reactor_flag = flag.clone();
        let reactor_stats = Arc::clone(&stats);
        let handle = std::thread::spawn(move || {
            run_reactor(listener, config, clock, reactor_flag, reactor_stats, handler).unwrap();
        });
        (addr, flag, stats, handle)
    }

    fn quick_config() -> ReactorConfig {
        ReactorConfig {
            loop_tick: Duration::from_millis(5),
            ..ReactorConfig::default()
        }
    }

    fn read_response(stream: &mut impl BufRead) -> (u16, Vec<u8>) {
        let mut status_line = String::new();
        stream.read_line(&mut status_line).unwrap();
        let status: u16 = status_line.split_whitespace().nth(1).unwrap().parse().unwrap();
        let mut content_length = 0usize;
        loop {
            let mut line = String::new();
            stream.read_line(&mut line).unwrap();
            let line = line.trim_end();
            if line.is_empty() {
                break;
            }
            if let Some(v) = line.to_ascii_lowercase().strip_prefix("content-length:") {
                content_length = v.trim().parse().unwrap();
            }
        }
        let mut body = vec![0u8; content_length];
        stream.read_exact(&mut body).unwrap();
        (status, body)
    }

    #[test]
    fn keep_alive_round_trips_through_the_worker() {
        let (addr, flag, stats, handle) = boot(quick_config(), Arc::new(SystemClock));
        let stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        for i in 0..3 {
            let body = format!("hello-{i}");
            write!(
                writer,
                "POST /v1/impute HTTP/1.1\r\ncontent-length: {}\r\n\r\n{}",
                body.len(),
                body
            )
            .unwrap();
            let (status, got) = read_response(&mut reader);
            assert_eq!(status, 200);
            assert_eq!(got, body.to_uppercase().into_bytes());
        }
        assert_eq!(stats.active.load(Ordering::Relaxed), 1);
        assert_eq!(stats.accepted_total.load(Ordering::Relaxed), 1);
        drop(writer);
        flag.trip();
        handle.join().unwrap();
        assert_eq!(stats.active.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn pipelined_requests_are_answered_in_order() {
        let (addr, flag, _stats, handle) = boot(quick_config(), Arc::new(SystemClock));
        let stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        // Two requests in one write.
        writer
            .write_all(
                b"POST /a HTTP/1.1\r\ncontent-length: 3\r\n\r\nabc\
                  POST /b HTTP/1.1\r\ncontent-length: 3\r\n\r\nxyz",
            )
            .unwrap();
        let (s1, b1) = read_response(&mut reader);
        let (s2, b2) = read_response(&mut reader);
        assert_eq!((s1, b1.as_slice()), (200, b"ABC".as_slice()));
        assert_eq!((s2, b2.as_slice()), (200, b"XYZ".as_slice()));
        drop(writer);
        flag.trip();
        handle.join().unwrap();
    }

    #[test]
    fn malformed_requests_get_the_blocking_paths_status_then_close() {
        let (addr, flag, _stats, handle) = boot(quick_config(), Arc::new(SystemClock));
        let stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        writer.write_all(b"GET / HTTP/2.0\r\n\r\n").unwrap();
        let (status, _) = read_response(&mut reader);
        assert_eq!(status, 505);
        // Closed after the error.
        let mut rest = Vec::new();
        reader.read_to_end(&mut rest).unwrap();
        assert!(rest.is_empty());
        flag.trip();
        handle.join().unwrap();
    }

    #[test]
    fn idle_connections_are_closed_by_the_manual_clock_timer() {
        let clock = ManualClock::shared();
        let config = ReactorConfig {
            idle_timeout: Duration::from_secs(5),
            ..quick_config()
        };
        let (addr, flag, stats, handle) = boot(config, clock.clone());
        let stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        // Wait until accepted, then let it idle past the window.
        let accept_deadline = Instant::now() + Duration::from_secs(5);
        while stats.active.load(Ordering::Relaxed) == 0 {
            assert!(Instant::now() < accept_deadline, "never accepted");
            std::thread::sleep(Duration::from_millis(2));
        }
        clock.advance(Duration::from_secs(60));
        let mut reader = BufReader::new(stream);
        let mut buf = Vec::new();
        reader.read_to_end(&mut buf).unwrap(); // EOF = closed by server
        assert!(buf.is_empty());
        assert_eq!(stats.timed_out_total.load(Ordering::Relaxed), 1);
        assert_eq!(stats.active.load(Ordering::Relaxed), 0);
        flag.trip();
        handle.join().unwrap();
    }

    #[test]
    fn connections_beyond_the_cap_are_rejected_with_503() {
        let config = ReactorConfig {
            max_connections: 2,
            ..quick_config()
        };
        let (addr, flag, stats, handle) = boot(config, Arc::new(SystemClock));
        let _hold1 = TcpStream::connect(addr).unwrap();
        let _hold2 = TcpStream::connect(addr).unwrap();
        let wait = Instant::now() + Duration::from_secs(5);
        while stats.active.load(Ordering::Relaxed) < 2 {
            assert!(Instant::now() < wait, "holds never accepted");
            std::thread::sleep(Duration::from_millis(2));
        }
        let third = TcpStream::connect(addr).unwrap();
        third
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let mut reader = BufReader::new(third);
        let (status, _) = read_response(&mut reader);
        assert_eq!(status, 503);
        assert_eq!(stats.rejected_total.load(Ordering::Relaxed), 1);
        flag.trip();
        handle.join().unwrap();
    }

    #[test]
    fn drain_finishes_the_in_flight_request_then_closes() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let flag = ShutdownFlag::new();
        let stats = Arc::new(ConnStats::default());
        // A gated worker: the test controls when the response happens.
        let (req_tx, req_rx) = std::sync::mpsc::channel::<(Request, ResponseSink)>();
        let handler: RequestHandler = Box::new(move |request, _received, sink| {
            req_tx.send((request, sink)).unwrap();
        });
        let reactor_flag = flag.clone();
        let reactor_stats = Arc::clone(&stats);
        let config = quick_config();
        let handle = std::thread::spawn(move || {
            run_reactor(
                listener,
                config,
                Arc::new(SystemClock),
                reactor_flag,
                reactor_stats,
                handler,
            )
            .unwrap();
        });
        let stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        writer
            .write_all(b"POST / HTTP/1.1\r\ncontent-length: 2\r\n\r\nhi")
            .unwrap();
        let (request, sink) = req_rx.recv().unwrap(); // in flight
        // An extra idle connection, to be shed at drain.
        let idle = TcpStream::connect(addr).unwrap();
        let wait = Instant::now() + Duration::from_secs(5);
        while stats.accepted_total.load(Ordering::Relaxed) < 2 {
            assert!(Instant::now() < wait, "idle conn never accepted");
            std::thread::sleep(Duration::from_millis(2));
        }
        flag.trip();
        // The in-flight request still completes…
        sink.send(Response::json(request.body));
        let (status, body) = read_response(&mut reader);
        assert_eq!((status, body.as_slice()), (200, b"hi".as_slice()));
        // …then its connection closes (drain), as does the idle one.
        let mut rest = Vec::new();
        reader.read_to_end(&mut rest).unwrap();
        assert!(rest.is_empty());
        let mut idle_reader = BufReader::new(idle);
        let mut idle_rest = Vec::new();
        idle_reader.read_to_end(&mut idle_rest).unwrap();
        assert!(idle_rest.is_empty());
        handle.join().unwrap();
        assert_eq!(stats.active.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn dropped_sink_answers_500_closes_and_drains_clean() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let flag = ShutdownFlag::new();
        let stats = Arc::new(ConnStats::default());
        let (req_tx, req_rx) = std::sync::mpsc::channel::<(Request, ResponseSink)>();
        let handler: RequestHandler = Box::new(move |request, _received, sink| {
            req_tx.send((request, sink)).unwrap();
        });
        let reactor_flag = flag.clone();
        let reactor_stats = Arc::clone(&stats);
        let config = quick_config();
        let handle = std::thread::spawn(move || {
            run_reactor(
                listener,
                config,
                Arc::new(SystemClock),
                reactor_flag,
                reactor_stats,
                handler,
            )
            .unwrap();
        });
        let stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        writer
            .write_all(b"POST / HTTP/1.1\r\ncontent-length: 2\r\n\r\nhi")
            .unwrap();
        let (_request, sink) = req_rx.recv().unwrap();
        // The worker abandons the request (as a panic would): the
        // connection must get a 500 and close, not park in Dispatched.
        drop(sink);
        let (status, _) = read_response(&mut reader);
        assert_eq!(status, 500);
        let mut rest = Vec::new();
        reader.read_to_end(&mut rest).unwrap();
        assert!(rest.is_empty(), "connection must close after the 500");
        // Drain must reach active == 0 and return.
        flag.trip();
        handle.join().unwrap();
        assert_eq!(stats.active.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn conn_stats_render_prometheus_lines() {
        let stats = ConnStats::default();
        stats.active.store(3, Ordering::Relaxed);
        stats.accepted_total.store(10, Ordering::Relaxed);
        let page = stats.render();
        assert!(page.contains("kamel_connections_active 3\n"), "{page}");
        assert!(page.contains("kamel_connections_accepted_total 10\n"), "{page}");
        assert!(page.contains("kamel_connections_timed_out_total 0\n"), "{page}");
        assert!(page.contains("kamel_connections_rejected_total 0\n"), "{page}");
    }
}

//! Cross-cutting system behaviours: grid parity, detokenization quality,
//! speed-policy plumbing, and model-repository inspection — each through
//! the public API only.

use kamel::{GridKind, Kamel, KamelConfig, SpeedMode};
use kamel_geo::{GpsPoint, LocalProjection, Trajectory};
use kamel_roadsim::{Dataset, DatasetScale};

fn base_config() -> kamel::KamelConfigBuilder {
    KamelConfig::builder()
        .pyramid_height(3)
        .pyramid_maintained(3)
        .model_threshold_k(150)
}

#[test]
fn square_grid_works_end_to_end() {
    let dataset = Dataset::porto_like(DatasetScale::Small);
    let kamel = Kamel::new(base_config().grid(GridKind::Square).build());
    kamel.train(&dataset.train);
    let mut ok = 0usize;
    let mut gaps = 0usize;
    for gt in dataset.test.iter().take(10) {
        let out = kamel.impute(&gt.sparsify(1_000.0));
        gaps += out.gaps.len();
        ok += out.gaps.iter().filter(|g| !g.outcome.failed).count();
    }
    assert!(gaps > 0);
    assert!(
        ok * 2 > gaps,
        "square grid failed most gaps: {ok}/{gaps} succeeded"
    );
}

#[test]
fn detokenization_beats_raw_cell_centroids() {
    // The §7 claim, measured: cluster-centroid output tracks the road more
    // closely than naive hexagon centers would. We compare the imputed
    // points' deviation from the ground truth against the deviation of the
    // raw cell centroids of the same tokens.
    let dataset = Dataset::porto_like(DatasetScale::Small);
    let proj: LocalProjection = dataset.projection();
    let kamel = Kamel::new(base_config().build());
    kamel.train(&dataset.train);
    let tokenizer = kamel::Tokenizer::hex(dataset.origin, 75.0);
    let mut detok_dev = 0.0f64;
    let mut centroid_dev = 0.0f64;
    let mut n = 0usize;
    for gt in dataset.test.iter().take(12) {
        let sparse = gt.sparsify(1_000.0);
        let out = kamel.impute(&sparse);
        if out.gaps.iter().any(|g| g.outcome.failed) {
            continue;
        }
        let gt_line: Vec<kamel_geo::Xy> =
            gt.points.iter().map(|p| proj.to_xy(p.pos)).collect();
        for p in &out.trajectory.points {
            // Only imputed points (not original fixes).
            if sparse.points.contains(p) {
                continue;
            }
            let xy = proj.to_xy(p.pos);
            detok_dev += kamel_geo::point_to_polyline_distance(xy, &gt_line);
            let cell_center = tokenizer.centroid(tokenizer.cell_of_xy(xy));
            centroid_dev += kamel_geo::point_to_polyline_distance(cell_center, &gt_line);
            n += 1;
        }
    }
    assert!(n > 20, "not enough imputed points to compare ({n})");
    let (detok_mean, centroid_mean) = (detok_dev / n as f64, centroid_dev / n as f64);
    assert!(
        detok_mean < centroid_mean,
        "detokenized points ({detok_mean:.1} m) should beat raw cell centers \
         ({centroid_mean:.1} m)"
    );
}

#[test]
fn adaptive_speed_mode_runs_end_to_end() {
    let dataset = Dataset::porto_like(DatasetScale::Small);
    let kamel = Kamel::new(
        base_config()
            .speed_mode(SpeedMode::AdaptivePreceding { factor: 2.5 })
            .build(),
    );
    kamel.train(&dataset.train);
    let mut succeeded = 0usize;
    for gt in dataset.test.iter().take(10) {
        let out = kamel.impute(&gt.sparsify(1_000.0));
        succeeded += out.gaps.iter().filter(|g| !g.outcome.failed).count();
    }
    assert!(succeeded > 5, "adaptive speed mode broke imputation");
}

#[test]
fn model_summaries_expose_the_pyramid_layout() {
    let dataset = Dataset::porto_like(DatasetScale::Small);
    let kamel = Kamel::new(base_config().build());
    kamel.train(&dataset.train);
    let summaries = kamel.model_summaries();
    assert_eq!(summaries.len(), kamel.stats().unwrap().models);
    // Multiple levels and both model kinds appear on a whole city.
    let levels: std::collections::HashSet<_> =
        summaries.iter().filter_map(|s| s.level).collect();
    assert!(levels.len() >= 2, "expected a multi-level pyramid: {levels:?}");
    assert!(summaries.iter().any(|s| s.kind == "single"));
    assert!(summaries.iter().any(|s| s.kind.starts_with("pair-")));
    for s in &summaries {
        assert!(s.vocab > 0);
        assert!(s.trained_tokens > 0);
        assert!(s.updates >= 1);
    }
}

#[test]
fn gap_reports_carry_actionable_failure_reasons() {
    // An untrained-region gap must say *why* it failed.
    let kamel = Kamel::new(base_config().build());
    kamel.train(
        &(0..30)
            .map(|_| {
                Trajectory::new(
                    (0..20)
                        .map(|i| {
                            GpsPoint::from_parts(41.15, -8.61 + i as f64 * 0.001, i as f64 * 10.0)
                        })
                        .collect(),
                )
            })
            .collect::<Vec<_>>(),
    );
    // A gap perpendicular to all training data: the imputer has a model but
    // no route knowledge.
    let hostile = Trajectory::new(vec![
        GpsPoint::from_parts(41.154, -8.605, 0.0),
        GpsPoint::from_parts(41.146, -8.605, 120.0),
    ]);
    let out = kamel.impute(&hostile);
    assert_eq!(out.gaps.len(), 1);
    let gap = &out.gaps[0];
    if gap.outcome.failed {
        assert!(
            gap.outcome.failure_reason.is_some(),
            "failed gap without a reason: {gap:?}"
        );
    }
}

//! Geographic primitives for the KAMEL trajectory imputation system.
//!
//! This crate provides the low-level spatial math every other KAMEL crate
//! builds on: coordinates ([`LatLng`], projected [`Xy`] meters, timestamped
//! [`GpsPoint`]s), great-circle and fast planar distances, a local
//! equirectangular projection ([`LocalProjection`]), bearings and angle
//! arithmetic, axis-aligned [`BBox`]es, the speed-constraint [`Ellipse`] from
//! the paper's Spatial Constraints module (§5.1), and polyline utilities
//! (length, discretization, point-to-polyline distance) used by the
//! evaluation metrics (§8).
//!
//! Everything here is dependency-free numerical code; `f64` throughout.

#![warn(missing_docs)]

pub mod bbox;
pub mod bearing;
pub mod dist;
pub mod ellipse;
pub mod point;
pub mod polyline;
pub mod proj;
pub mod trajectory;

pub use bbox::BBox;
pub use bearing::{angle_between_deg, bearing_deg, normalize_deg};
pub use dist::{equirectangular_m, haversine_m, EARTH_RADIUS_M};
pub use ellipse::Ellipse;
pub use point::{GpsPoint, LatLng, Xy};
pub use polyline::{
    directed_hausdorff_m, discretize, hausdorff_m, mean_deviation_m,
    point_to_polyline_distance, polyline_length, resample_by_time, Polyline,
};
pub use proj::LocalProjection;
pub use trajectory::Trajectory;

//! Dense row-major `f32` matrices with the kernels a transformer needs.
//!
//! Deliberately minimal: 2-D only (sequences are processed one at a time, so
//! every activation is `[seq_len, features]`), no views, no broadcasting
//! beyond row-vector ops. The three matmul variants (`NN`, `TN`, `NT`) cover
//! every product in forward and backward passes without materializing
//! transposes.
//!
//! Each variant has a sequential kernel (`*_seq`) and a row-partitioned
//! multithreaded kernel (`*_par_with`) that splits the *output* rows into
//! disjoint contiguous chunks, one scoped thread per chunk. Both paths run
//! the same per-row block kernel, so every output element accumulates its
//! products in the same order — parallel results are **bit-identical** to
//! sequential ones (property-tested), which keeps seeded training
//! deterministic under any thread budget. The plain `matmul`/`matmul_tn`/
//! `matmul_nt` entry points auto-dispatch: big products fan out across the
//! process-wide [`crate::threads::thread_budget`], small ones stay on the
//! calling thread.
//!
//! The innermost loops (the NN/TN axpy stripes, the NT dot products, and
//! the broadcast/scale element-wise ops) run through [`crate::simd`],
//! which dispatches to explicit AVX2/NEON kernels at runtime. Those
//! kernels preserve the exact accumulation order of the scalar reference,
//! so the SIMD backend — like the thread budget — never changes results.

use crate::simd;
use crate::threads;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A dense row-major matrix of `f32`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from an explicit row-major buffer.
    ///
    /// # Panics
    /// Panics when the buffer length does not equal `rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length {} != {rows}x{cols}",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Creates a matrix by evaluating `f(row, col)` for every element.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Gaussian-initialized matrix with the given standard deviation
    /// (Box–Muller over the supplied RNG; deterministic under a seeded RNG).
    pub fn randn(rows: usize, cols: usize, std: f32, rng: &mut impl Rng) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        while data.len() < rows * cols {
            let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
            let u2: f32 = rng.gen_range(0.0..1.0);
            let mag = (-2.0 * u1.ln()).sqrt();
            let theta = 2.0 * std::f32::consts::PI * u2;
            data.push(mag * theta.cos() * std);
            if data.len() < rows * cols {
                data.push(mag * theta.sin() * std);
            }
        }
        Self { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Immutable view of the underlying row-major buffer.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying row-major buffer.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element mutator.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Immutable slice of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable slice of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// `self × other` (`[m,k] × [k,n] → [m,n]`), auto-dispatching between
    /// the sequential and row-partitioned parallel kernels. Results are
    /// bit-identical either way.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        let threads = auto_threads(self.rows, self.cols, other.cols);
        if threads > 1 {
            self.matmul_par_with(other, threads)
        } else {
            self.matmul_seq(other)
        }
    }

    /// Sequential `self × other`.
    pub fn matmul_seq(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul shape mismatch");
        let (m, k, n) = (self.rows, self.cols, other.cols);
        let mut out = Matrix::zeros(m, n);
        nn_block(&self.data, &other.data, &mut out.data, 0, k, n);
        out
    }

    /// Multithreaded `self × other` over `threads` scoped workers, each
    /// owning a disjoint chunk of output rows. Bit-identical to
    /// [`Matrix::matmul_seq`].
    pub fn matmul_par_with(&self, other: &Matrix, threads: usize) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul shape mismatch");
        let (m, k, n) = (self.rows, self.cols, other.cols);
        let mut out = Matrix::zeros(m, n);
        let (a, b) = (&self.data, &other.data);
        run_row_partitioned(&mut out.data, m, n, threads, |chunk, row0| {
            nn_block(a, b, chunk, row0, k, n)
        });
        out
    }

    /// `selfᵀ × other` (`[k,m]ᵀ × [k,n] → [m,n]`), without materializing the
    /// transpose. Used for weight gradients (`dW = xᵀ · dy`). Auto-dispatches
    /// like [`Matrix::matmul`].
    pub fn matmul_tn(&self, other: &Matrix) -> Matrix {
        let threads = auto_threads(self.cols, self.rows, other.cols);
        if threads > 1 {
            self.matmul_tn_par_with(other, threads)
        } else {
            self.matmul_tn_seq(other)
        }
    }

    /// Sequential `selfᵀ × other`.
    pub fn matmul_tn_seq(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "matmul_tn shape mismatch");
        let (k, m, n) = (self.rows, self.cols, other.cols);
        let mut out = Matrix::zeros(m, n);
        tn_block(&self.data, &other.data, &mut out.data, 0, m, n, k);
        out
    }

    /// Multithreaded `selfᵀ × other`; bit-identical to
    /// [`Matrix::matmul_tn_seq`].
    pub fn matmul_tn_par_with(&self, other: &Matrix, threads: usize) -> Matrix {
        assert_eq!(self.rows, other.rows, "matmul_tn shape mismatch");
        let (k, m, n) = (self.rows, self.cols, other.cols);
        let mut out = Matrix::zeros(m, n);
        let (a, b) = (&self.data, &other.data);
        run_row_partitioned(&mut out.data, m, n, threads, |chunk, row0| {
            tn_block(a, b, chunk, row0, m, n, k)
        });
        out
    }

    /// `self × otherᵀ` (`[m,k] × [n,k]ᵀ → [m,n]`), without materializing the
    /// transpose. Used for input gradients (`dx = dy · Wᵀ`) and attention
    /// scores (`Q · Kᵀ`). Auto-dispatches like [`Matrix::matmul`].
    pub fn matmul_nt(&self, other: &Matrix) -> Matrix {
        let threads = auto_threads(self.rows, self.cols, other.rows);
        if threads > 1 {
            self.matmul_nt_par_with(other, threads)
        } else {
            self.matmul_nt_seq(other)
        }
    }

    /// Sequential `self × otherᵀ`.
    pub fn matmul_nt_seq(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "matmul_nt shape mismatch");
        let (m, k, n) = (self.rows, self.cols, other.rows);
        let mut out = Matrix::zeros(m, n);
        nt_block(&self.data, &other.data, &mut out.data, 0, k, n);
        out
    }

    /// Multithreaded `self × otherᵀ`; bit-identical to
    /// [`Matrix::matmul_nt_seq`].
    pub fn matmul_nt_par_with(&self, other: &Matrix, threads: usize) -> Matrix {
        assert_eq!(self.cols, other.cols, "matmul_nt shape mismatch");
        let (m, k, n) = (self.rows, self.cols, other.rows);
        let mut out = Matrix::zeros(m, n);
        let (a, b) = (&self.data, &other.data);
        run_row_partitioned(&mut out.data, m, n, threads, |chunk, row0| {
            nt_block(a, b, chunk, row0, k, n)
        });
        out
    }

    /// Reshapes to `rows × cols` of zeros, reusing the existing allocation
    /// whenever the capacity suffices. The workhorse of the inference
    /// scratch arena: after warm-up no `reset_zeroed` call allocates.
    pub fn reset_zeroed(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
    }

    /// `out = self × other`, writing into a reusable buffer instead of
    /// allocating. Runs the same kernels with the same dispatch as
    /// [`Matrix::matmul`], so results are bit-identical to it.
    pub fn matmul_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(self.cols, other.rows, "matmul shape mismatch");
        let (m, k, n) = (self.rows, self.cols, other.cols);
        out.reset_zeroed(m, n);
        let threads = auto_threads(m, k, n);
        let (a, b) = (&self.data, &other.data);
        run_row_partitioned(&mut out.data, m, n, threads, |chunk, row0| {
            nn_block(a, b, chunk, row0, k, n)
        });
    }

    /// `out = selfᵀ × other` into a reusable buffer; bit-identical to
    /// [`Matrix::matmul_tn`].
    pub fn matmul_tn_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(self.rows, other.rows, "matmul_tn shape mismatch");
        let (k, m, n) = (self.rows, self.cols, other.cols);
        out.reset_zeroed(m, n);
        let threads = auto_threads(m, k, n);
        let (a, b) = (&self.data, &other.data);
        run_row_partitioned(&mut out.data, m, n, threads, |chunk, row0| {
            tn_block(a, b, chunk, row0, m, n, k)
        });
    }

    /// `out = self × otherᵀ` into a reusable buffer; bit-identical to
    /// [`Matrix::matmul_nt`].
    pub fn matmul_nt_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(self.cols, other.cols, "matmul_nt shape mismatch");
        let (m, k, n) = (self.rows, self.cols, other.rows);
        out.reset_zeroed(m, n);
        let threads = auto_threads(m, k, n);
        let (a, b) = (&self.data, &other.data);
        run_row_partitioned(&mut out.data, m, n, threads, |chunk, row0| {
            nt_block(a, b, chunk, row0, k, n)
        });
    }

    /// Writes row `row` of `self × other` into `out_row` (length
    /// `other.cols()`): a `[1, k] × [k, n]` matvec through the same
    /// column-blocked kernel, so the result is bit-identical to that row of
    /// the full product. The MLM head uses this to score only the masked
    /// position(s) instead of materializing `[seq_len × vocab]` logits.
    pub fn matmul_row_into(&self, row: usize, other: &Matrix, out_row: &mut [f32]) {
        assert_eq!(self.cols, other.rows, "matmul shape mismatch");
        assert!(row < self.rows, "row {row} out of range {}", self.rows);
        assert_eq!(out_row.len(), other.cols, "output row length mismatch");
        out_row.iter_mut().for_each(|v| *v = 0.0);
        nn_block(&self.data, &other.data, out_row, row, self.cols, other.cols);
    }

    /// Element-wise `self += other`.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        simd::add_assign(&mut self.data, &other.data);
    }

    /// Element-wise `self += scale * other`.
    pub fn add_scaled(&mut self, other: &Matrix, scale: f32) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        simd::axpy(&mut self.data, scale, &other.data);
    }

    /// Multiplies every element by `s`.
    pub fn scale(&mut self, s: f32) {
        simd::scale(&mut self.data, s);
    }

    /// Adds a row vector to every row (bias broadcast).
    pub fn add_row_broadcast(&mut self, bias: &[f32]) {
        assert_eq!(bias.len(), self.cols);
        for r in 0..self.rows {
            simd::add_assign(self.row_mut(r), bias);
        }
    }

    /// Sets every element to zero, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }

    /// Sum of element-wise products (Frobenius inner product).
    pub fn frobenius_dot(&self, other: &Matrix) -> f32 {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        dot(&self.data, &other.data)
    }

    /// Squared Frobenius norm.
    pub fn norm_sq(&self) -> f32 {
        dot(&self.data, &self.data)
    }
}


/// Minimum fused multiply-adds a product must offer *per worker* before
/// fanning out pays for thread spawn/join; below `2×` this, stay
/// sequential.
const PAR_MIN_OPS_PER_THREAD: usize = 1 << 16;

/// Worker count for an `m × k × n` product under the process-wide budget:
/// 1 (sequential) for small products, otherwise enough threads to give
/// each at least [`PAR_MIN_OPS_PER_THREAD`] fused multiply-adds, capped by
/// the budget and the row count.
fn auto_threads(m: usize, k: usize, n: usize) -> usize {
    let budget = threads::thread_budget();
    if budget <= 1 || m < 2 {
        return 1;
    }
    let ops = m.saturating_mul(k).saturating_mul(n);
    if ops < 2 * PAR_MIN_OPS_PER_THREAD {
        return 1;
    }
    budget.min(ops / PAR_MIN_OPS_PER_THREAD).min(m)
}

/// Splits `out` (row-major, `m × n`) into contiguous row chunks and runs
/// `work(chunk, first_row)` on each, one scoped thread per chunk. With
/// `threads <= 1` (or a degenerate shape) the single chunk runs on the
/// calling thread. Chunks are disjoint, so any `work` that only depends on
/// its own rows produces output identical to a single sequential pass.
fn run_row_partitioned<F>(out: &mut [f32], m: usize, n: usize, threads: usize, work: F)
where
    F: Fn(&mut [f32], usize) + Sync,
{
    if m == 0 || n == 0 {
        return;
    }
    let threads = threads.clamp(1, m);
    if threads == 1 {
        work(out, 0);
        return;
    }
    let rows_per = m.div_ceil(threads);
    std::thread::scope(|s| {
        for (ci, chunk) in out.chunks_mut(rows_per * n).enumerate() {
            let work = &work;
            s.spawn(move || work(chunk, ci * rows_per));
        }
    });
}

/// NN kernel over one output-row chunk: `out[row0..][..rows] = a[row0..] × b`
/// with `a: [m,k]`, `b: [k,n]`. Dispatches once into the active backend's
/// block kernel (fused register-blocked on AVX2, axpy stripes elsewhere);
/// per output element the `k` axis accumulates in ascending order on every
/// path, so chunked execution is bit-identical to one sequential pass.
fn nn_block(a: &[f32], b: &[f32], out: &mut [f32], row0: usize, k: usize, n: usize) {
    simd::nn_block(a, b, out, row0, k, n);
}

/// TN kernel over one output-row chunk: `out[row0..][..rows] = aᵀ[row0..] × b`
/// with `a: [k,m]`, `b: [k,n]`. Keeps the sequential kernel's kij order
/// (each `a`/`b` row pair is touched once per sweep) restricted to the
/// chunk's columns of `a`; per output element the `k` axis accumulates in
/// ascending order.
fn tn_block(a: &[f32], b: &[f32], out: &mut [f32], row0: usize, m: usize, n: usize, k: usize) {
    if n == 0 {
        return;
    }
    let rows = out.len() / n;
    for kk in 0..k {
        let a_row = &a[kk * m + row0..kk * m + row0 + rows];
        let b_row = &b[kk * n..(kk + 1) * n];
        // Dense-path assumption: no zero-skip (see `nn_block`).
        for (ri, &av) in a_row.iter().enumerate() {
            let out_row = &mut out[ri * n..(ri + 1) * n];
            simd::axpy(out_row, av, b_row);
        }
    }
}

/// NT kernel over one output-row chunk: `out[row0..][..rows] = a[row0..] × bᵀ`
/// with `a: [m,k]`, `b: [n,k]`. Dispatches once into the active backend's
/// block kernel (four concurrent dot chains on AVX2, per-dot elsewhere);
/// every output element reduces in the canonical [`dot`] order.
fn nt_block(a: &[f32], b: &[f32], out: &mut [f32], row0: usize, k: usize, n: usize) {
    simd::nt_block(a, b, out, row0, k, n);
}

/// Dense dot product of two equal-length slices.
///
/// Dispatches through [`crate::simd`]; every backend reproduces the
/// 8-lane chunked accumulation order of the scalar reference, so the
/// result is independent of the active instruction set.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    simd::dot(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn m(rows: usize, cols: usize, v: &[f32]) -> Matrix {
        Matrix::from_vec(rows, cols, v.to_vec())
    }

    #[test]
    fn matmul_small_known_values() {
        let a = m(2, 3, &[1., 2., 3., 4., 5., 6.]);
        let b = m(3, 2, &[7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_tn_equals_explicit_transpose() {
        let a = m(3, 2, &[1., 2., 3., 4., 5., 6.]); // aᵀ is 2x3
        let b = m(3, 2, &[1., 0., 0., 1., 1., 1.]);
        let tn = a.matmul_tn(&b);
        // aᵀ = [[1,3,5],[2,4,6]]; aᵀ·b = [[1+5, 3+5],[2+6, 4+6]]
        assert_eq!(tn.data(), &[6., 8., 8., 10.]);
    }

    #[test]
    fn matmul_nt_equals_explicit_transpose() {
        let a = m(2, 3, &[1., 2., 3., 4., 5., 6.]);
        let b = m(2, 3, &[1., 1., 1., 2., 0., 1.]); // bᵀ is 3x2
        let nt = a.matmul_nt(&b);
        assert_eq!(nt.data(), &[6., 5., 15., 14.]);
    }

    #[test]
    fn three_matmul_variants_agree_on_random_input() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let a = Matrix::randn(4, 5, 1.0, &mut rng);
        let b = Matrix::randn(5, 3, 1.0, &mut rng);
        let c = a.matmul(&b);
        // (aᵀ)ᵀ·b via matmul_tn with explicitly transposed a.
        let at = Matrix::from_fn(5, 4, |r, c2| a.get(c2, r));
        let c_tn = at.matmul_tn(&b);
        let bt = Matrix::from_fn(3, 5, |r, c2| b.get(c2, r));
        let c_nt = a.matmul_nt(&bt);
        for i in 0..c.data().len() {
            assert!((c.data()[i] - c_tn.data()[i]).abs() < 1e-4);
            assert!((c.data()[i] - c_nt.data()[i]).abs() < 1e-4);
        }
    }

    #[test]
    fn broadcast_and_scale() {
        let mut a = Matrix::zeros(2, 3);
        a.add_row_broadcast(&[1., 2., 3.]);
        assert_eq!(a.data(), &[1., 2., 3., 1., 2., 3.]);
        a.scale(2.0);
        assert_eq!(a.row(1), &[2., 4., 6.]);
    }

    #[test]
    fn randn_statistics_are_sane() {
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let m = Matrix::randn(100, 100, 0.5, &mut rng);
        let mean: f32 = m.data().iter().sum::<f32>() / 10_000.0;
        let var: f32 = m.data().iter().map(|v| (v - mean).powi(2)).sum::<f32>() / 10_000.0;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var.sqrt() - 0.5).abs() < 0.02, "std {}", var.sqrt());
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn matmul_rejects_bad_shapes() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn into_variants_match_allocating_kernels() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let a = Matrix::randn(7, 5, 1.0, &mut rng);
        let b = Matrix::randn(5, 6, 1.0, &mut rng);
        let mut out = Matrix::zeros(0, 0);
        a.matmul_into(&b, &mut out);
        assert_eq!(out, a.matmul(&b));
        let c = Matrix::randn(7, 6, 1.0, &mut rng);
        a.matmul_tn_into(&c, &mut out);
        assert_eq!(out, a.matmul_tn(&c));
        let d = Matrix::randn(9, 5, 1.0, &mut rng);
        a.matmul_nt_into(&d, &mut out);
        assert_eq!(out, a.matmul_nt(&d));
    }

    #[test]
    fn matmul_row_into_matches_full_product_row() {
        let mut rng = ChaCha8Rng::seed_from_u64(10);
        // n > NN_COL_BLOCK would need a huge matrix; block boundaries are
        // still exercised because the kernel path is shared.
        let a = Matrix::randn(4, 37, 1.0, &mut rng);
        let b = Matrix::randn(37, 53, 1.0, &mut rng);
        let full = a.matmul(&b);
        let mut row = vec![0.0f32; 53];
        for r in 0..4 {
            a.matmul_row_into(r, &b, &mut row);
            assert_eq!(&row[..], full.row(r), "row {r} diverged");
        }
    }

    #[test]
    fn reset_zeroed_reuses_capacity_and_zeroes() {
        let mut m = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let cap = {
            m.reset_zeroed(3, 2);
            assert_eq!((m.rows(), m.cols()), (3, 2));
            assert!(m.data().iter().all(|&v| v == 0.0));
            m.data.capacity()
        };
        m.reset_zeroed(1, 2);
        assert_eq!(m.data.capacity(), cap, "shrinking must not reallocate");
        assert_eq!(m.data(), &[0.0, 0.0]);
    }

    #[test]
    fn dot_handles_remainders() {
        let a: Vec<f32> = (0..19).map(|i| i as f32).collect();
        let b = vec![1.0f32; 19];
        assert_eq!(dot(&a, &b), (0..19).sum::<i32>() as f32);
    }
}

//! Dependency-free SVG line charts for the regenerated figures.
//!
//! Renders each [`crate::Figure`] as a paper-style plot (one line per
//! technique, recall/precision/failure panels) so the reproduction can be
//! eyeballed against the PDF without external tooling.

use crate::{Figure, SweepPoint};

/// Chart geometry.
const WIDTH: f64 = 480.0;
const HEIGHT: f64 = 320.0;
const MARGIN_LEFT: f64 = 56.0;
const MARGIN_RIGHT: f64 = 130.0;
const MARGIN_TOP: f64 = 34.0;
const MARGIN_BOTTOM: f64 = 48.0;

/// Line colors per series index (colorblind-safe-ish defaults).
const COLORS: [&str; 8] = [
    "#d62728", "#1f77b4", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b", "#17becf", "#7f7f7f",
];

/// One named series of (x, y) points.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub name: String,
    /// Data points in x order.
    pub points: Vec<(f64, f64)>,
}

/// Renders a generic line chart to an SVG string.
///
/// `y_range` fixes the y axis (metrics plots use `(0, 1)`); pass `None` to
/// fit the data.
pub fn line_chart(
    title: &str,
    x_label: &str,
    y_label: &str,
    series: &[Series],
    y_range: Option<(f64, f64)>,
) -> String {
    let xs: Vec<f64> = series
        .iter()
        .flat_map(|s| s.points.iter().map(|p| p.0))
        .collect();
    let ys: Vec<f64> = series
        .iter()
        .flat_map(|s| s.points.iter().map(|p| p.1))
        .collect();
    let (x_min, x_max) = bounds(&xs, None);
    let (y_min, y_max) = bounds(&ys, y_range);
    let plot_w = WIDTH - MARGIN_LEFT - MARGIN_RIGHT;
    let plot_h = HEIGHT - MARGIN_TOP - MARGIN_BOTTOM;
    let px = |x: f64| MARGIN_LEFT + (x - x_min) / (x_max - x_min).max(1e-12) * plot_w;
    let py = |y: f64| MARGIN_TOP + (1.0 - (y - y_min) / (y_max - y_min).max(1e-12)) * plot_h;

    let mut svg = String::with_capacity(4096);
    svg.push_str(&format!(
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{WIDTH}" height="{HEIGHT}" viewBox="0 0 {WIDTH} {HEIGHT}" font-family="sans-serif" font-size="11">"#
    ));
    svg.push_str(r#"<rect width="100%" height="100%" fill="white"/>"#);
    // Title.
    svg.push_str(&format!(
        r#"<text x="{:.1}" y="18" text-anchor="middle" font-size="13" font-weight="bold">{}</text>"#,
        MARGIN_LEFT + plot_w / 2.0,
        escape(title)
    ));
    // Axes frame + grid + ticks.
    svg.push_str(&format!(
        r##"<rect x="{MARGIN_LEFT}" y="{MARGIN_TOP}" width="{plot_w:.1}" height="{plot_h:.1}" fill="none" stroke="#333"/>"##
    ));
    for i in 0..=4 {
        let f = i as f64 / 4.0;
        let y_val = y_min + (y_max - y_min) * f;
        let y = py(y_val);
        svg.push_str(&format!(
            r##"<line x1="{MARGIN_LEFT}" y1="{y:.1}" x2="{:.1}" y2="{y:.1}" stroke="#ddd"/>"##,
            MARGIN_LEFT + plot_w
        ));
        svg.push_str(&format!(
            r#"<text x="{:.1}" y="{:.1}" text-anchor="end">{}</text>"#,
            MARGIN_LEFT - 6.0,
            y + 4.0,
            trim_num(y_val)
        ));
        let x_val = x_min + (x_max - x_min) * f;
        let x = px(x_val);
        svg.push_str(&format!(
            r#"<text x="{x:.1}" y="{:.1}" text-anchor="middle">{}</text>"#,
            MARGIN_TOP + plot_h + 16.0,
            trim_num(x_val)
        ));
    }
    // Axis labels.
    svg.push_str(&format!(
        r#"<text x="{:.1}" y="{:.1}" text-anchor="middle">{}</text>"#,
        MARGIN_LEFT + plot_w / 2.0,
        HEIGHT - 10.0,
        escape(x_label)
    ));
    svg.push_str(&format!(
        r#"<text x="16" y="{:.1}" text-anchor="middle" transform="rotate(-90 16 {:.1})">{}</text>"#,
        MARGIN_TOP + plot_h / 2.0,
        MARGIN_TOP + plot_h / 2.0,
        escape(y_label)
    ));
    // Series.
    for (i, s) in series.iter().enumerate() {
        let color = COLORS[i % COLORS.len()];
        let path: Vec<String> = s
            .points
            .iter()
            .map(|&(x, y)| format!("{:.1},{:.1}", px(x), py(y)))
            .collect();
        if path.len() >= 2 {
            svg.push_str(&format!(
                r#"<polyline points="{}" fill="none" stroke="{color}" stroke-width="2"/>"#,
                path.join(" ")
            ));
        }
        for &(x, y) in &s.points {
            svg.push_str(&format!(
                r#"<circle cx="{:.1}" cy="{:.1}" r="3" fill="{color}"/>"#,
                px(x),
                py(y)
            ));
        }
        // Legend entry.
        let ly = MARGIN_TOP + 14.0 * i as f64 + 6.0;
        let lx = MARGIN_LEFT + plot_w + 10.0;
        svg.push_str(&format!(
            r#"<line x1="{lx:.1}" y1="{ly:.1}" x2="{:.1}" y2="{ly:.1}" stroke="{color}" stroke-width="2"/>"#,
            lx + 18.0
        ));
        svg.push_str(&format!(
            r#"<text x="{:.1}" y="{:.1}">{}</text>"#,
            lx + 23.0,
            ly + 4.0,
            escape(&s.name)
        ));
    }
    svg.push_str("</svg>");
    svg
}

/// Extracts per-technique series for one metric from a figure's sweep.
pub fn figure_series(
    points: &[SweepPoint],
    metric: impl Fn(&kamel_eval::TechniqueResult) -> Option<f64>,
) -> Vec<Series> {
    let mut series: Vec<Series> = Vec::new();
    for point in points {
        for result in &point.results {
            let Some(value) = metric(result) else { continue };
            match series.iter_mut().find(|s| s.name == result.technique) {
                Some(s) => s.points.push((point.x, value)),
                None => series.push(Series {
                    name: result.technique.clone(),
                    points: vec![(point.x, value)],
                }),
            }
        }
    }
    series
}

/// Renders a figure's recall/precision/failure panels as SVG documents:
/// `(suffix, svg)` pairs, e.g. `("recall", "<svg …")`.
pub fn figure_to_svgs(fig: &Figure) -> Vec<(String, String)> {
    type Metric = Box<dyn Fn(&kamel_eval::TechniqueResult) -> Option<f64>>;
    let mut out = Vec::new();
    let panels: [(&str, Metric); 3] = [
        ("recall", Box::new(|r| Some(r.recall))),
        ("precision", Box::new(|r| Some(r.precision))),
        ("failure", Box::new(|r| r.failure_rate)),
    ];
    for (name, metric) in panels {
        let series = figure_series(&fig.points, metric);
        if series.iter().all(|s| s.points.is_empty()) {
            continue;
        }
        let svg = line_chart(
            &format!("{} — {name}", fig.id),
            &fig.x_label,
            name,
            &series,
            Some((0.0, 1.0)),
        );
        out.push((name.to_string(), svg));
    }
    out
}

fn bounds(values: &[f64], fixed: Option<(f64, f64)>) -> (f64, f64) {
    if let Some(range) = fixed {
        return range;
    }
    let min = values.iter().copied().fold(f64::INFINITY, f64::min);
    let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if !min.is_finite() || !max.is_finite() {
        return (0.0, 1.0);
    }
    if (max - min).abs() < 1e-12 {
        (min - 0.5, max + 0.5)
    } else {
        (min, max)
    }
}

fn trim_num(v: f64) -> String {
    if v.abs() >= 100.0 || (v - v.round()).abs() < 1e-9 {
        format!("{v:.0}")
    } else {
        format!("{v:.2}")
    }
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;
    use kamel_eval::TechniqueResult;

    fn result(name: &str, recall: f64) -> TechniqueResult {
        TechniqueResult {
            technique: name.into(),
            recall,
            precision: recall - 0.05,
            failure_rate: Some(1.0 - recall),
            mean_deviation_m: 10.0,
            worst_deviation_m: 100.0,
            impute_time_s: 0.1,
            trajectories: 10,
        }
    }

    fn sample_figure() -> Figure {
        Figure {
            id: "fig-test".into(),
            x_label: "sparseness_m".into(),
            points: vec![
                SweepPoint {
                    x: 500.0,
                    results: vec![result("KAMEL", 0.9), result("Linear", 0.8)],
                },
                SweepPoint {
                    x: 1000.0,
                    results: vec![result("KAMEL", 0.8), result("Linear", 0.6)],
                },
            ],
        }
    }

    #[test]
    fn series_extraction_groups_by_technique() {
        let fig = sample_figure();
        let series = figure_series(&fig.points, |r| Some(r.recall));
        assert_eq!(series.len(), 2);
        assert_eq!(series[0].name, "KAMEL");
        assert_eq!(series[0].points, vec![(500.0, 0.9), (1000.0, 0.8)]);
    }

    #[test]
    fn chart_is_valid_svg_with_all_parts() {
        let fig = sample_figure();
        let svgs = figure_to_svgs(&fig);
        assert_eq!(svgs.len(), 3); // recall, precision, failure
        for (name, svg) in &svgs {
            assert!(svg.starts_with("<svg"), "{name}");
            assert!(svg.ends_with("</svg>"), "{name}");
            assert!(svg.contains("polyline"), "{name}: no lines");
            assert!(svg.contains("KAMEL"), "{name}: missing legend");
            assert!(svg.contains(name.as_str()), "{name}: missing panel label");
            // Balanced: every element closed (cheap sanity).
            assert_eq!(svg.matches("<svg").count(), 1);
        }
    }

    #[test]
    fn escaping_prevents_markup_injection() {
        let chart = line_chart(
            "a<b & c>",
            "x",
            "y",
            &[Series {
                name: "s<1>".into(),
                points: vec![(0.0, 0.0), (1.0, 1.0)],
            }],
            None,
        );
        assert!(!chart.contains("a<b"));
        assert!(chart.contains("a&lt;b &amp; c&gt;"));
        assert!(chart.contains("s&lt;1&gt;"));
    }

    #[test]
    fn degenerate_inputs_do_not_panic() {
        // Single point, no range.
        let chart = line_chart(
            "t",
            "x",
            "y",
            &[Series {
                name: "one".into(),
                points: vec![(5.0, 0.5)],
            }],
            None,
        );
        assert!(chart.contains("circle"));
        // Empty series list.
        let empty = line_chart("t", "x", "y", &[], Some((0.0, 1.0)));
        assert!(empty.starts_with("<svg"));
    }
}

//! The BERT masked-language model over trajectory tokens.
//!
//! Faithful to Devlin et al. as the paper requires (§8 uses the original
//! architecture): learned token + position embeddings, an embedding
//! LayerNorm, a stack of encoder layers, and a vocab projection head. The
//! training objective is masked cross-entropy over the masked positions
//! only. The *scale* (hidden width, depth) is configurable; KAMEL's
//! pyramid trains one such model per spatial cell.

use crate::encoder::{EncoderCache, EncoderLayer};
use crate::layers::{
    dropout_backward, dropout_forward, softmax_rows, Embedding, LayerNorm, Linear, LnCache, Param,
};
use crate::matrix::Matrix;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Hyper-parameters of a BERT MLM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BertConfig {
    /// Vocabulary size including special tokens.
    pub vocab_size: usize,
    /// Hidden width (the paper's deployment uses 768; CPU-scale defaults are
    /// much smaller).
    pub hidden: usize,
    /// Number of encoder layers (paper: 12).
    pub n_layers: usize,
    /// Number of attention heads (paper: 12).
    pub n_heads: usize,
    /// Feed-forward width (paper: 4×hidden).
    pub ff_dim: usize,
    /// Maximum sequence length the position table supports.
    pub max_seq_len: usize,
}

impl BertConfig {
    /// A CPU-trainable configuration suitable for tests and the quickstart.
    pub fn tiny(vocab_size: usize) -> Self {
        Self {
            vocab_size,
            hidden: 32,
            n_layers: 2,
            n_heads: 2,
            ff_dim: 64,
            max_seq_len: 64,
        }
    }

    /// A mid-size configuration for the BERT-path benchmarks.
    pub fn small(vocab_size: usize) -> Self {
        Self {
            vocab_size,
            hidden: 64,
            n_layers: 4,
            n_heads: 4,
            ff_dim: 128,
            max_seq_len: 128,
        }
    }

    /// The paper's deployment configuration (768/12/12). Provided for
    /// completeness; training it is a TPU-scale job, not a test-scale one.
    pub fn paper(vocab_size: usize) -> Self {
        Self {
            vocab_size,
            hidden: 768,
            n_layers: 12,
            n_heads: 12,
            ff_dim: 3072,
            max_seq_len: 512,
        }
    }
}

/// The full masked-language model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BertMlmModel {
    /// Hyper-parameters.
    pub config: BertConfig,
    pub(crate) tok_emb: Embedding,
    pub(crate) pos_emb: Embedding,
    pub(crate) emb_ln: LayerNorm,
    pub(crate) layers: Vec<EncoderLayer>,
    /// Projection from hidden states to vocabulary logits.
    pub(crate) out: Linear,
}

/// Forward state needed for a training backward pass.
pub struct BertCache {
    ids: Vec<u32>,
    pos_ids: Vec<u32>,
    emb_ln: LnCache,
    /// Dropout mask over the embedding block (training only).
    emb_dropout: Option<Matrix>,
    /// Input to each encoder layer (index 0 = embeddings after LN).
    layer_inputs: Vec<Matrix>,
    layer_caches: Vec<EncoderCache>,
    /// Final hidden states (input of the output projection).
    hidden: Matrix,
}

impl BertMlmModel {
    /// Initializes a model with the given config, deterministically under a
    /// seeded RNG.
    pub fn new(config: BertConfig, rng: &mut impl Rng) -> Self {
        assert!(config.vocab_size > 0, "empty vocabulary");
        let mut layers = Vec::with_capacity(config.n_layers);
        for _ in 0..config.n_layers {
            layers.push(EncoderLayer::new(
                config.hidden,
                config.n_heads,
                config.ff_dim,
                rng,
            ));
        }
        Self {
            config,
            tok_emb: Embedding::new(config.vocab_size, config.hidden, rng),
            pos_emb: Embedding::new(config.max_seq_len, config.hidden, rng),
            emb_ln: LayerNorm::new(config.hidden),
            layers,
            out: Linear::new(config.hidden, config.vocab_size, rng),
        }
    }

    /// Number of trainable scalar parameters.
    pub fn param_count(&mut self) -> usize {
        self.params().iter().map(|p| p.count()).sum()
    }

    /// Runs the encoder and returns `[n, vocab]` logits plus the cache for a
    /// backward pass.
    ///
    /// Sequences longer than `max_seq_len` are rejected; KAMEL's Partitioning
    /// module never produces them (trajectory windows are bounded).
    pub fn forward(&self, ids: &[u32], valid: Option<&[bool]>) -> (Matrix, BertCache) {
        self.forward_impl(ids, valid, None)
    }

    /// Training forward pass with embedding dropout (the original BERT
    /// applies dropout after the embedding LayerNorm; inference skips it).
    pub fn forward_train(
        &self,
        ids: &[u32],
        valid: Option<&[bool]>,
        dropout_p: f32,
        rng: &mut impl Rng,
    ) -> (Matrix, BertCache) {
        if dropout_p <= 0.0 {
            return self.forward_impl(ids, valid, None);
        }
        self.forward_impl(ids, valid, Some((dropout_p, rng)))
    }

    fn forward_impl(
        &self,
        ids: &[u32],
        valid: Option<&[bool]>,
        dropout: Option<(f32, &mut dyn rand::RngCore)>,
    ) -> (Matrix, BertCache) {
        assert!(
            ids.len() <= self.config.max_seq_len,
            "sequence length {} exceeds max {}",
            ids.len(),
            self.config.max_seq_len
        );
        assert!(!ids.is_empty(), "empty sequence");
        let pos_ids: Vec<u32> = (0..ids.len() as u32).collect();
        let mut emb = self.tok_emb.forward(ids);
        emb.add_assign(&self.pos_emb.forward(&pos_ids));
        let (mut x0, emb_ln_cache) = self.emb_ln.forward(&emb);
        let emb_dropout = dropout.map(|(p, mut rng)| {
            let (dropped, mask) = dropout_forward(&x0, p, &mut rng);
            x0 = dropped;
            mask
        });
        let mut layer_inputs = Vec::with_capacity(self.layers.len());
        let mut layer_caches = Vec::with_capacity(self.layers.len());
        let mut x = x0;
        for layer in &self.layers {
            layer_inputs.push(x.clone());
            let (next, cache) = layer.forward(&x, valid);
            layer_caches.push(cache);
            x = next;
        }
        let logits = self.out.forward(&x);
        (
            logits,
            BertCache {
                ids: ids.to_vec(),
                pos_ids,
                emb_ln: emb_ln_cache,
                emb_dropout,
                layer_inputs,
                layer_caches,
                hidden: x,
            },
        )
    }

    /// Probability distribution over the vocabulary for position `pos`
    /// ("call BERT" on a sequence with a `[MASK]` at the gap).
    ///
    /// This is the *reference* implementation: it reuses the training
    /// forward, so it builds the full backward cache and a
    /// `[seq_len × vocab]` logits matrix just to read one row. The serving
    /// hot path uses the grad-free, allocation-free
    /// [`BertMlmModel::predict_with`] /
    /// [`BertMlmModel::predict_batch_with`] from [`crate::infer`], which
    /// are bit-identical to this method (property-tested).
    pub fn predict(&self, ids: &[u32], pos: usize) -> Vec<f32> {
        assert!(pos < ids.len(), "position {pos} out of range");
        let (logits, _) = self.forward(ids, None);
        let mut row = Matrix::from_vec(1, logits.cols(), logits.row(pos).to_vec());
        softmax_rows(&mut row);
        row.data().to_vec()
    }

    /// One training example: masked cross-entropy on `labels` (label =
    /// `None` at unmasked positions). Accumulates gradients; returns the
    /// mean loss over masked positions (0 when nothing is masked).
    pub fn train_example(&mut self, ids: &[u32], labels: &[Option<u32>]) -> f32 {
        self.train_example_inner(ids, labels, None)
    }

    /// [`BertMlmModel::train_example`] with embedding dropout.
    pub fn train_example_dropout(
        &mut self,
        ids: &[u32],
        labels: &[Option<u32>],
        dropout_p: f32,
        rng: &mut impl Rng,
    ) -> f32 {
        if dropout_p <= 0.0 {
            return self.train_example_inner(ids, labels, None);
        }
        self.train_example_inner(ids, labels, Some((dropout_p, rng)))
    }

    fn train_example_inner(
        &mut self,
        ids: &[u32],
        labels: &[Option<u32>],
        dropout: Option<(f32, &mut dyn rand::RngCore)>,
    ) -> f32 {
        assert_eq!(ids.len(), labels.len());
        let (logits, cache) = self.forward_impl(ids, None, dropout);
        let n_masked = labels.iter().flatten().count();
        if n_masked == 0 {
            return 0.0;
        }
        // Softmax + CE combined: dlogits = (softmax - onehot)/n at masked
        // rows, zero elsewhere.
        let mut probs = logits.clone();
        softmax_rows(&mut probs);
        let mut loss = 0.0f32;
        let mut dlogits = Matrix::zeros(logits.rows(), logits.cols());
        let inv = 1.0 / n_masked as f32;
        for (r, label) in labels.iter().enumerate() {
            if let Some(target) = label {
                let t = *target as usize;
                let p = probs.get(r, t).max(1e-12);
                loss -= p.ln();
                let drow = dlogits.row_mut(r);
                drow.copy_from_slice(probs.row(r));
                drow.iter_mut().for_each(|v| *v *= inv);
                drow[t] -= inv;
            }
        }
        self.backward(&cache, &dlogits);
        loss * inv
    }

    /// Backward pass from `dlogits` through the whole network.
    fn backward(&mut self, cache: &BertCache, dlogits: &Matrix) {
        let mut dx = self.out.backward(&cache.hidden, dlogits);
        for (layer, (input, lcache)) in self
            .layers
            .iter_mut()
            .zip(cache.layer_inputs.iter().zip(&cache.layer_caches))
            .rev()
        {
            let _ = input; // inputs are captured inside the layer caches
            dx = layer.backward(lcache, &dx);
        }
        let dx = match &cache.emb_dropout {
            Some(mask) => dropout_backward(mask, &dx),
            None => dx,
        };
        let demb = self.emb_ln.backward(&cache.emb_ln, &dx);
        self.tok_emb.backward(&cache.ids, &demb);
        self.pos_emb.backward(&cache.pos_ids, &demb);
    }

    /// All trainable parameters for the optimizer.
    pub fn params(&mut self) -> Vec<&mut Param> {
        let mut out: Vec<&mut Param> = vec![
            &mut self.tok_emb.table,
            &mut self.pos_emb.table,
            &mut self.emb_ln.gamma,
            &mut self.emb_ln.beta,
        ];
        for layer in &mut self.layers {
            out.extend(layer.params());
        }
        out.extend(self.out.params());
        out
    }

    /// Clears every gradient accumulator.
    pub fn zero_grads(&mut self) {
        for p in self.params() {
            p.zero_grad();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn forward_produces_finite_logits() {
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        let model = BertMlmModel::new(BertConfig::tiny(16), &mut rng);
        let (logits, _) = model.forward(&[1, 2, 3, 4], None);
        assert_eq!((logits.rows(), logits.cols()), (4, 16));
        assert!(logits.data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn predict_is_a_distribution() {
        let mut rng = ChaCha8Rng::seed_from_u64(22);
        let model = BertMlmModel::new(BertConfig::tiny(10), &mut rng);
        let p = model.predict(&[1, 2, 3], 1);
        assert_eq!(p.len(), 10);
        let s: f32 = p.iter().sum();
        assert!((s - 1.0).abs() < 1e-5);
        assert!(p.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn training_reduces_loss_on_a_deterministic_pattern() {
        // Corpus rule: token 3 is always between 2 and 4. The model must
        // learn to predict 3 for a mask in that context.
        let mut rng = ChaCha8Rng::seed_from_u64(23);
        let mut model = BertMlmModel::new(BertConfig::tiny(8), &mut rng);
        let mut opt = crate::optim::Adam::new(1e-2);
        let ids = [2u32, 7, 4]; // 7 plays the role of [MASK]
        let labels = [None, Some(3u32), None];
        let first = model.train_example(&ids, &labels);
        opt.step(&mut model.params());
        model.zero_grads();
        let mut last = first;
        for _ in 0..60 {
            last = model.train_example(&ids, &labels);
            opt.step(&mut model.params());
            model.zero_grads();
        }
        assert!(
            last < first * 0.2,
            "loss did not drop: first {first}, last {last}"
        );
        let p = model.predict(&ids, 1);
        let argmax = p
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(argmax, 3, "model failed to learn the pattern: {p:?}");
    }

    #[test]
    fn no_masked_positions_is_a_noop() {
        let mut rng = ChaCha8Rng::seed_from_u64(24);
        let mut model = BertMlmModel::new(BertConfig::tiny(8), &mut rng);
        let loss = model.train_example(&[1, 2, 3], &[None, None, None]);
        assert_eq!(loss, 0.0);
        assert!(model.params().iter().all(|p| p.g.norm_sq() == 0.0));
    }

    #[test]
    fn param_count_matches_formula() {
        let mut rng = ChaCha8Rng::seed_from_u64(25);
        let cfg = BertConfig::tiny(100);
        let mut model = BertMlmModel::new(cfg, &mut rng);
        let h = cfg.hidden;
        let expected =
            // token + position embeddings
            100 * h + cfg.max_seq_len * h
            // embedding LN
            + 2 * h
            // per layer: 4 attn linears + 2 ffn linears + 2 LN
            + cfg.n_layers * (4 * (h * h + h) + (h * cfg.ff_dim + cfg.ff_dim) + (cfg.ff_dim * h + h) + 4 * h)
            // output projection
            + h * 100 + 100;
        assert_eq!(model.param_count(), expected);
    }

    #[test]
    #[should_panic(expected = "exceeds max")]
    fn rejects_overlong_sequence() {
        let mut rng = ChaCha8Rng::seed_from_u64(26);
        let model = BertMlmModel::new(BertConfig::tiny(8), &mut rng);
        let ids = vec![1u32; 65];
        let _ = model.forward(&ids, None);
    }
}

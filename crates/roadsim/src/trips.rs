//! Trip generation: shortest-path routes driven with noisy speed and GPS
//! sampling.
//!
//! Each trip picks a far-apart origin/destination pair, routes over the
//! hidden network, then simulates a vehicle driving the route: speed follows
//! a mean-reverting random walk, fixes are emitted at a fixed GPS period,
//! and every fix gets isotropic Gaussian position noise — the ingredients
//! that make the trajectories "GPS-like" rather than polyline samples.

use crate::network::RoadNetwork;
use kamel_geo::{GpsPoint, LocalProjection, Trajectory, Xy};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Parameters of trip simulation.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TripConfig {
    /// Number of trajectories to generate.
    pub n_trips: usize,
    /// GPS sampling period in seconds (Porto-like ≈ 10–15 s, Jakarta-like
    /// ≈ 1 s).
    pub sample_period_s: f64,
    /// Mean driving speed in m/s.
    pub speed_mps: f64,
    /// Standard deviation of the per-sample speed perturbation (fraction of
    /// the mean speed).
    pub speed_jitter: f64,
    /// Standard deviation of GPS position noise in meters.
    pub gps_noise_m: f64,
    /// Minimum straight-line origin→destination distance in meters.
    pub min_trip_dist_m: f64,
    /// Number of origin/destination hotspots. 0 draws trips uniformly;
    /// otherwise each trip endpoint is sampled near one of this many
    /// randomly-placed attraction nodes (real fleets cluster around
    /// stations, malls, and business districts, which skews per-street
    /// coverage — the regime the paper's Jakarta analysis lives in).
    pub hotspots: usize,
    /// RNG seed; generation is deterministic.
    pub seed: u64,
}

impl Default for TripConfig {
    fn default() -> Self {
        Self {
            n_trips: 100,
            sample_period_s: 10.0,
            speed_mps: 10.0,
            speed_jitter: 0.25,
            gps_noise_m: 4.0,
            min_trip_dist_m: 1_500.0,
            hotspots: 0,
            seed: 0x7219,
        }
    }
}

/// Generates `cfg.n_trips` trajectories over `net`, projecting fixes to
/// geodetic coordinates with `proj`.
pub fn generate_trips(
    net: &RoadNetwork,
    cfg: &TripConfig,
    proj: &LocalProjection,
) -> Vec<Trajectory> {
    assert!(cfg.sample_period_s > 0.0 && cfg.speed_mps > 0.0);
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    let mut out = Vec::with_capacity(cfg.n_trips);
    let n_nodes = net.node_count();
    if n_nodes < 2 {
        return out;
    }
    // Hotspot endpoints: pick attraction nodes once, then sample trip
    // endpoints from a small neighborhood around a random hotspot.
    let hotspot_nodes: Vec<usize> = (0..cfg.hotspots).map(|_| rng.gen_range(0..n_nodes)).collect();
    let endpoint = |rng: &mut ChaCha8Rng| -> usize {
        if hotspot_nodes.is_empty() || rng.gen_bool(0.2) {
            // 20% background traffic keeps the rest of the city observed.
            return rng.gen_range(0..n_nodes);
        }
        let hub = hotspot_nodes[rng.gen_range(0..hotspot_nodes.len())];
        // A short random walk from the hub spreads endpoints over its
        // neighborhood.
        let mut node = hub;
        for _ in 0..rng.gen_range(0..4) {
            let neighbors = net.neighbors(node);
            if neighbors.is_empty() {
                break;
            }
            node = neighbors[rng.gen_range(0..neighbors.len())].to;
        }
        node
    };
    let mut attempts = 0usize;
    let max_attempts = cfg.n_trips * 50;
    while out.len() < cfg.n_trips && attempts < max_attempts {
        attempts += 1;
        let src = endpoint(&mut rng);
        let dst = endpoint(&mut rng);
        if net.node(src).dist(&net.node(dst)) < cfg.min_trip_dist_m {
            continue;
        }
        let Some(path) = net.shortest_path(src, dst) else {
            continue;
        };
        if path.len() < 2 {
            continue;
        }
        let polyline: Vec<Xy> = path.iter().map(|&i| net.node(i)).collect();
        let traj = drive(&polyline, cfg, proj, &mut rng);
        if traj.len() >= 3 {
            out.push(traj);
        }
    }
    out
}

/// Simulates driving one polyline, emitting noisy GPS fixes.
fn drive(
    polyline: &[Xy],
    cfg: &TripConfig,
    proj: &LocalProjection,
    rng: &mut impl Rng,
) -> Trajectory {
    let total_len = kamel_geo::polyline_length(polyline);
    let mut points = Vec::with_capacity((total_len / (cfg.speed_mps * cfg.sample_period_s)) as usize + 2);
    let mut travelled = 0.0f64;
    let mut t = 0.0f64;
    let mut speed = cfg.speed_mps;
    loop {
        let pos = point_at(polyline, travelled);
        let noisy = Xy::new(
            pos.x + gaussian(rng) * cfg.gps_noise_m,
            pos.y + gaussian(rng) * cfg.gps_noise_m,
        );
        points.push(GpsPoint::new(proj.to_latlng(noisy), t));
        if travelled >= total_len {
            break;
        }
        // Mean-reverting speed walk, clamped to a plausible band.
        let drift = 0.5 * (cfg.speed_mps - speed);
        speed = (speed + drift + gaussian(rng) * cfg.speed_jitter * cfg.speed_mps)
            .clamp(0.3 * cfg.speed_mps, 1.8 * cfg.speed_mps);
        travelled = (travelled + speed * cfg.sample_period_s).min(total_len);
        t += cfg.sample_period_s;
    }
    Trajectory::new(points)
}

/// Position at arc-length `d` along the polyline (clamped to the ends).
fn point_at(polyline: &[Xy], d: f64) -> Xy {
    if d <= 0.0 {
        return polyline[0];
    }
    let mut remaining = d;
    for w in polyline.windows(2) {
        let seg = w[0].dist(&w[1]);
        if remaining <= seg {
            if seg == 0.0 {
                return w[0];
            }
            return w[0].lerp(&w[1], remaining / seg);
        }
        remaining -= seg;
    }
    *polyline.last().expect("non-empty polyline")
}

/// Standard normal sample via Box–Muller.
fn gaussian(rng: &mut impl Rng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::citygen::{generate_city, CityConfig};
    use kamel_geo::LatLng;

    fn small_city() -> (RoadNetwork, LocalProjection) {
        let net = generate_city(&CityConfig {
            cols: 10,
            rows: 10,
            roundabouts: 2,
            ..CityConfig::default()
        });
        (net, LocalProjection::new(LatLng::new(41.15, -8.61)))
    }

    #[test]
    fn trips_are_generated_with_requested_count() {
        let (net, proj) = small_city();
        let cfg = TripConfig {
            n_trips: 20,
            min_trip_dist_m: 500.0,
            ..TripConfig::default()
        };
        let trips = generate_trips(&net, &cfg, &proj);
        assert_eq!(trips.len(), 20);
    }

    #[test]
    fn timestamps_are_monotone_and_evenly_spaced() {
        let (net, proj) = small_city();
        let cfg = TripConfig {
            n_trips: 5,
            sample_period_s: 10.0,
            min_trip_dist_m: 500.0,
            ..TripConfig::default()
        };
        for traj in generate_trips(&net, &cfg, &proj) {
            for w in traj.points.windows(2) {
                let dt = w[1].t - w[0].t;
                assert!((dt - 10.0).abs() < 1e-9, "dt {dt}");
            }
        }
    }

    #[test]
    fn trajectories_stay_near_the_network() {
        let (net, proj) = small_city();
        let cfg = TripConfig {
            n_trips: 10,
            gps_noise_m: 3.0,
            min_trip_dist_m: 500.0,
            ..TripConfig::default()
        };
        for traj in generate_trips(&net, &cfg, &proj) {
            for p in &traj.points {
                let xy = proj.to_xy(p.pos);
                let nearest = net.nearest_node(xy).unwrap();
                // Within a block of some node: fixes can sit mid-edge, so
                // allow roughly one block length.
                assert!(
                    net.node(nearest).dist(&xy) < 200.0,
                    "fix {xy:?} far from the network"
                );
            }
        }
    }

    #[test]
    fn speeds_are_plausible() {
        let (net, proj) = small_city();
        let cfg = TripConfig {
            n_trips: 10,
            speed_mps: 10.0,
            min_trip_dist_m: 800.0,
            ..TripConfig::default()
        };
        for traj in generate_trips(&net, &cfg, &proj) {
            let v = traj.mean_speed_mps().unwrap();
            assert!((3.0..20.0).contains(&v), "mean speed {v}");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let (net, proj) = small_city();
        let cfg = TripConfig {
            n_trips: 5,
            min_trip_dist_m: 500.0,
            ..TripConfig::default()
        };
        let a = generate_trips(&net, &cfg, &proj);
        let b = generate_trips(&net, &cfg, &proj);
        assert_eq!(a, b);
    }

    #[test]
    fn hotspots_concentrate_endpoints() {
        let (net, proj) = small_city();
        let uniform = generate_trips(
            &net,
            &TripConfig {
                n_trips: 60,
                min_trip_dist_m: 400.0,
                ..TripConfig::default()
            },
            &proj,
        );
        let clustered = generate_trips(
            &net,
            &TripConfig {
                n_trips: 60,
                min_trip_dist_m: 400.0,
                hotspots: 2,
                ..TripConfig::default()
            },
            &proj,
        );
        // Dispersion of trip origins: mean pairwise distance drops when
        // endpoints cluster around two hubs.
        let dispersion = |trips: &[kamel_geo::Trajectory]| {
            let origins: Vec<_> = trips
                .iter()
                .map(|t| proj.to_xy(t.points[0].pos))
                .collect();
            let mut sum = 0.0;
            let mut n = 0u32;
            for i in 0..origins.len() {
                for j in i + 1..origins.len() {
                    sum += origins[i].dist(&origins[j]);
                    n += 1;
                }
            }
            sum / n as f64
        };
        assert!(
            dispersion(&clustered) < dispersion(&uniform) * 0.95,
            "hotspots did not concentrate endpoints: {} vs {}",
            dispersion(&clustered),
            dispersion(&uniform)
        );
    }

    #[test]
    fn empty_network_yields_no_trips() {
        let proj = LocalProjection::new(LatLng::new(0.0, 0.0));
        let trips = generate_trips(&RoadNetwork::new(), &TripConfig::default(), &proj);
        assert!(trips.is_empty());
    }

    #[test]
    fn point_at_clamps_to_ends() {
        let line = [Xy::new(0.0, 0.0), Xy::new(10.0, 0.0)];
        assert_eq!(point_at(&line, -5.0), line[0]);
        assert_eq!(point_at(&line, 5.0), Xy::new(5.0, 0.0));
        assert_eq!(point_at(&line, 50.0), line[1]);
    }
}

//! Partitioning integration: the pyramid repository across districts,
//! boundary trajectories, incremental maintenance, and re-rooting.

use kamel::partition::{ModelSelection, Repository};
use kamel::{Kamel, KamelConfig, Tokenizer};
use kamel_geo::{BBox, GpsPoint, LatLng, Trajectory, Xy};
use kamel_lm::{EngineConfig, MaskedTokenModel};
use kamel_trajstore::TrajStore;

fn config() -> KamelConfig {
    KamelConfig::builder()
        .pyramid_height(3)
        .pyramid_maintained(3)
        .model_threshold_k(60)
        .build()
}

/// A straight east-west street at `lat`, starting at `lng0`, `n` fixes
/// ~84 m apart.
fn street(lat: f64, lng0: f64, n: usize) -> Trajectory {
    Trajectory::new(
        (0..n)
            .map(|i| GpsPoint::from_parts(lat, lng0 + i as f64 * 0.001, i as f64 * 10.0))
            .collect(),
    )
}

#[test]
fn distinct_districts_get_distinct_models() {
    let kamel = Kamel::new(config());
    // Two districts ~11 km apart, each with its own dense street corpus.
    let mut corpus = Vec::new();
    for _ in 0..30 {
        corpus.push(street(41.15, -8.61, 25)); // west district
        corpus.push(street(41.25, -8.61, 25)); // north district
    }
    kamel.train(&corpus);
    let stats = kamel.stats().expect("trained");
    assert!(
        stats.models >= 2,
        "expected per-district models, got {}",
        stats.models
    );
    // Each district imputes its own street.
    for lat in [41.15, 41.25] {
        let sparse = Trajectory::new(vec![
            GpsPoint::from_parts(lat, -8.608, 0.0),
            GpsPoint::from_parts(lat, -8.592, 160.0),
        ]);
        let out = kamel.impute(&sparse);
        assert_eq!(out.gaps.len(), 1);
        assert!(
            !out.gaps[0].outcome.failed,
            "district at lat {lat} failed: {:?}",
            out.gaps[0]
        );
    }
}

#[test]
fn incremental_training_extends_coverage() {
    let kamel = Kamel::new(config());
    let west: Vec<Trajectory> = (0..30).map(|_| street(41.15, -8.61, 25)).collect();
    kamel.train(&west);
    let sparse_east = Trajectory::new(vec![
        GpsPoint::from_parts(41.15, -8.55, 0.0),
        GpsPoint::from_parts(41.15, -8.534, 160.0),
    ]);
    // Before the east district is trained: straight-line fallback.
    let before = kamel.impute(&sparse_east);
    assert_eq!(before.failure_rate(), Some(1.0));
    // Feed the east district (inside the padded root, ~5 km away) as a new
    // batch; maintenance must add models there without retraining the west.
    let east: Vec<Trajectory> = (0..30).map(|_| street(41.15, -8.55, 25)).collect();
    kamel.train(&east);
    let after = kamel.impute(&sparse_east);
    assert!(
        after.failure_rate().unwrap() < 1.0,
        "east district still failing after training"
    );
}

#[test]
fn data_outside_the_root_triggers_rerooting() {
    let kamel = Kamel::new(config());
    kamel.train(&(0..30).map(|_| street(41.15, -8.61, 25)).collect::<Vec<_>>());
    let models_before = kamel.stats().unwrap().models;
    assert!(models_before >= 1);
    // A far-away second city (~55 km north): outside the padded root.
    kamel.train(&(0..30).map(|_| street(41.65, -8.61, 25)).collect::<Vec<_>>());
    // Both cities impute successfully after the rebuild.
    for lat in [41.15, 41.65] {
        let sparse = Trajectory::new(vec![
            GpsPoint::from_parts(lat, -8.608, 0.0),
            GpsPoint::from_parts(lat, -8.592, 160.0),
        ]);
        let out = kamel.impute(&sparse);
        assert!(
            out.failure_rate().unwrap() < 1.0,
            "city at lat {lat} unusable after re-rooting"
        );
    }
}

/// Direct repository-level checks of §4.1 retrieval order.
#[test]
fn repository_prefers_deepest_enclosing_model() {
    let cfg = config();
    let root = BBox::new(Xy::new(0.0, 0.0), Xy::new(1600.0, 1600.0));
    let mut repo = Repository::new(root, &cfg);
    let mut store = TrajStore::new(200.0);
    let tokenizer = Tokenizer::hex(LatLng::new(41.15, -8.61), 75.0);
    // Dense data in leaf cell (0,0) only: [0,400)^2.
    for i in 0..40 {
        let y = 40.0 + (i as f64 * 7.0) % 300.0;
        let xy: Vec<Xy> = (0..5).map(|j| Xy::new(40.0 + j as f64 * 70.0, y)).collect();
        let cells = xy.iter().map(|p| tokenizer.cell_of_xy(*p)).collect();
        let t = (0..5).map(|j| j as f64 * 10.0).collect();
        store.insert(kamel_trajstore::TokenTrajectory::new(cells, xy, t));
    }
    repo.maintain(&store, &root, &EngineConfig::default());
    let query = BBox::new(Xy::new(50.0, 50.0), Xy::new(350.0, 350.0));
    let (sel, model) = repo.find_model(&query).expect("model");
    match sel {
        ModelSelection::Single(key) => {
            assert_eq!(key.level, repo.leaf_level(), "not the deepest level")
        }
        other => panic!("expected a single-cell model, got {other:?}"),
    }
    assert!(model.vocab_len() > 0);
    // Metadata is reachable through the selection.
    let entry = repo.entry(sel).expect("entry");
    assert!(entry.meta.trained_tokens >= 60);
}

#[test]
fn global_ablation_uses_one_model_everywhere() {
    let kamel = Kamel::new(
        KamelConfig::builder()
            .pyramid_height(3)
            .pyramid_maintained(3)
            .model_threshold_k(60)
            .disable_partitioning(true)
            .build(),
    );
    let mut corpus = Vec::new();
    for _ in 0..30 {
        corpus.push(street(41.15, -8.61, 25));
        corpus.push(street(41.25, -8.61, 25));
    }
    kamel.train(&corpus);
    assert_eq!(kamel.stats().unwrap().models, 1);
    let sparse = Trajectory::new(vec![
        GpsPoint::from_parts(41.25, -8.608, 0.0),
        GpsPoint::from_parts(41.25, -8.592, 160.0),
    ]);
    assert!(kamel.impute(&sparse).failure_rate().unwrap() < 1.0);
}
